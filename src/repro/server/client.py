"""Protocol clients for :class:`~repro.server.frontend.MatchingServer`.

:class:`ServeClient` is the blocking client (one TCP connection, frames
matched to requests by id, so pipelined ``solve_many`` batches are safe
even when the server answers out of order -- priorities reorder);
:class:`AsyncServeClient` is its ``asyncio`` twin for event-loop
callers.

Outcome mapping:

* ``status="ok"`` -> the :class:`~repro.api.RunResult`, rebuilt against
  the submitted problem's own graph and digest-verified against the
  server's ``result_digest`` (transport corruption raises).
* ``status="rejected"`` -> :class:`RequestRejected` carrying the
  machine-readable shed ``reason``.
* ``status="error"`` -> :class:`ServerError` carrying the remote
  exception type and message.
"""

from __future__ import annotations

import asyncio
import contextlib
import itertools
import json
import socket
import time

from repro.api import Problem, RunResult
from repro.server.codec import (
    PRELUDE,
    encode_problem,
    decode_result,
    join_columns,
    pack_frame,
    result_digest,
    split_columns,
    unpack_prelude,
)

__all__ = ["ServeClient", "AsyncServeClient", "RequestRejected", "ServerError"]


class RequestRejected(RuntimeError):
    """The server shed this request (admission control or deadline).

    Attributes
    ----------
    reason:
        Machine-readable cause: ``queue_full``, ``deadline`` or
        ``shutting_down``.
    queue_depth:
        Server-side pending depth at rejection time (when reported).
    """

    def __init__(self, reason: str, queue_depth: int | None = None):
        super().__init__(f"request rejected: {reason}")
        self.reason = reason
        self.queue_depth = queue_depth


class ServerError(RuntimeError):
    """The server answered with an error (remote exception surfaced)."""

    def __init__(self, remote_type: str, message: str):
        super().__init__(f"{remote_type}: {message}")
        self.remote_type = remote_type


def _solve_header(
    rid: str,
    meta: dict,
    backend: str | None,
    deadline_ms: float | None,
    priority: int | None,
    trace: bool = False,
) -> dict:
    header = {"op": "solve", "id": rid, "problem": meta}
    if backend is not None:
        header["backend"] = backend
    if deadline_ms is not None:
        header["deadline_ms"] = float(deadline_ms)
    if priority is not None:
        header["priority"] = int(priority)
    if trace:
        header["trace"] = True
    return header


def _parse_solve(
    header: dict, payload: bytes, problem: Problem
) -> tuple[RunResult, dict]:
    status = header.get("status")
    if status == "rejected":
        raise RequestRejected(
            str(header.get("reason", "unknown")), header.get("queue_depth")
        )
    if status != "ok":
        error = header.get("error") or {}
        raise ServerError(
            str(error.get("type", "ServerError")),
            str(error.get("message", header)),
        )
    meta = header["result"]
    columns = split_columns(meta["columns"], memoryview(payload))
    result = decode_result(meta, columns, problem.graph)
    digest = header.get("digest")
    if digest is not None and result_digest(result) != digest:
        raise ServerError(
            "DigestMismatch",
            "reconstructed result does not match the server's digest",
        )
    info = {k: v for k, v in header.items() if k not in ("result", "op")}
    return result, info


class ServeClient:
    """Blocking client over one TCP connection.

    Not thread-safe: share nothing, or open one client per thread
    (connections are cheap; the server multiplexes).

    Usage::

        with ServeClient("127.0.0.1", 7071) as client:
            result = client.solve(problem, deadline_ms=2000, priority=2)
    """

    def __init__(
        self, host: str = "127.0.0.1", port: int = 0,
        timeout: float | None = None,
    ):
        self._sock = socket.create_connection((host, port), timeout)
        self._seq = itertools.count()
        self._stash: dict[str, tuple[dict, bytes]] = {}

    # -- framing ---------------------------------------------------------
    def _send(self, header: dict, payload: bytes = b"") -> None:
        self._sock.sendall(pack_frame(header, payload))

    def _recv_exact(self, n: int) -> bytes:
        buf = bytearray()
        while len(buf) < n:
            chunk = self._sock.recv(n - len(buf))
            if not chunk:
                raise ConnectionError("server closed the connection")
            buf.extend(chunk)
        return bytes(buf)

    def _recv_frame(self) -> tuple[dict, bytes]:
        header_len, payload_len = unpack_prelude(
            self._recv_exact(PRELUDE.size)
        )
        header = json.loads(self._recv_exact(header_len))
        payload = self._recv_exact(payload_len)
        return header, payload

    def _recv_for(self, rid: str) -> tuple[dict, bytes]:
        while True:
            if rid in self._stash:
                return self._stash.pop(rid)
            header, payload = self._recv_frame()
            got = header.get("id")
            if got == rid:
                return header, payload
            self._stash[str(got)] = (header, payload)

    def _next_id(self) -> str:
        return f"c{next(self._seq)}"

    # -- ops -------------------------------------------------------------
    def solve(
        self,
        problem: Problem,
        backend: str | None = None,
        *,
        deadline_ms: float | None = None,
        priority: int | None = None,
        trace: bool = False,
    ) -> RunResult:
        """Solve one problem remotely (raises on rejection/error)."""
        return self.solve_with_info(
            problem, backend, deadline_ms=deadline_ms, priority=priority,
            trace=trace,
        )[0]

    def solve_with_info(
        self,
        problem: Problem,
        backend: str | None = None,
        *,
        deadline_ms: float | None = None,
        priority: int | None = None,
        trace: bool = False,
    ) -> tuple[RunResult, dict]:
        """Like :meth:`solve`, also returning the response metadata
        (``deadline_missed``, ``server_ms``, ``queue_ms``,
        ``compute_ms``, ``digest``).  With ``trace=True`` the server
        records a span tree for this request and returns it as
        ``info["trace"]`` (:meth:`repro.obs.Span.from_dict` rebuilds
        it).
        """
        rid = self._next_id()
        meta, columns = encode_problem(problem)
        self._send(
            _solve_header(rid, meta, backend, deadline_ms, priority, trace),
            join_columns(columns),
        )
        header, payload = self._recv_for(rid)
        return _parse_solve(header, payload, problem)

    def solve_many(
        self,
        problems: list[Problem],
        backend: str | None = None,
        *,
        deadline_ms: float | None = None,
        priority: int | None = None,
        trace: bool = False,
        return_exceptions: bool = False,
        with_info: bool = False,
    ) -> list:
        """Pipeline a batch: send everything, then collect by id.

        With ``return_exceptions=True``, per-request failures
        (:class:`RequestRejected` / :class:`ServerError`) come back as
        list entries instead of raising -- the saturation-bench mode,
        where shed requests are an expected outcome, not an error.
        With ``with_info=True``, successful entries are
        ``(result, info)`` pairs carrying the response metadata
        (``server_ms``, ``deadline_missed``, ``digest``).
        """
        rids = []
        for problem in problems:
            rid = self._next_id()
            meta, columns = encode_problem(problem)
            self._send(
                _solve_header(rid, meta, backend, deadline_ms, priority,
                              trace),
                join_columns(columns),
            )
            rids.append(rid)
        outcomes: list = []
        for rid, problem in zip(rids, problems):
            header, payload = self._recv_for(rid)
            try:
                pair = _parse_solve(header, payload, problem)
                outcomes.append(pair if with_info else pair[0])
            except (RequestRejected, ServerError) as exc:
                if not return_exceptions:
                    raise
                outcomes.append(exc)
        return outcomes

    def ping(self) -> float:
        """Round-trip one empty frame; returns seconds."""
        rid = self._next_id()
        t0 = time.perf_counter()
        self._send({"op": "ping", "id": rid})
        self._recv_for(rid)
        return time.perf_counter() - t0

    def stats(self) -> dict:
        """Service + server stats snapshot (JSON dict)."""
        rid = self._next_id()
        self._send({"op": "stats", "id": rid})
        header, _ = self._recv_for(rid)
        return {"service": header.get("service"), "server": header.get("server")}

    def metrics_text(self) -> str:
        """Prometheus text exposition, over the binary protocol."""
        rid = self._next_id()
        self._send({"op": "metrics", "id": rid})
        _, payload = self._recv_for(rid)
        return payload.decode()

    def close(self) -> None:
        with contextlib.suppress(OSError):
            self._sock.close()

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class AsyncServeClient:
    """``asyncio`` client; safe for concurrent tasks on one connection.

    Usage::

        client = await AsyncServeClient.connect("127.0.0.1", 7071)
        result = await client.solve(problem, priority=2)
        await client.close()
    """

    def __init__(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ):
        self._reader = reader
        self._writer = writer
        self._seq = itertools.count()
        self._stash: dict[str, tuple[dict, bytes]] = {}
        self._write_lock = asyncio.Lock()
        self._read_lock = asyncio.Lock()

    @classmethod
    async def connect(
        cls, host: str = "127.0.0.1", port: int = 0
    ) -> "AsyncServeClient":
        reader, writer = await asyncio.open_connection(host, port)
        return cls(reader, writer)

    async def _send(self, header: dict, payload: bytes = b"") -> None:
        frame = pack_frame(header, payload)
        async with self._write_lock:
            self._writer.write(frame)
            await self._writer.drain()

    async def _recv_frame(self) -> tuple[dict, bytes]:
        raw = await self._reader.readexactly(PRELUDE.size)
        header_len, payload_len = unpack_prelude(raw)
        header = json.loads(await self._reader.readexactly(header_len))
        payload = await self._reader.readexactly(payload_len)
        return header, payload

    async def _recv_for(self, rid: str) -> tuple[dict, bytes]:
        # concurrent waiters interleave under the read lock; a frame
        # read for someone else is stashed and found on their next pass
        while True:
            if rid in self._stash:
                return self._stash.pop(rid)
            async with self._read_lock:
                if rid in self._stash:
                    return self._stash.pop(rid)
                header, payload = await self._recv_frame()
            got = header.get("id")
            if got == rid:
                return header, payload
            self._stash[str(got)] = (header, payload)

    def _next_id(self) -> str:
        return f"a{next(self._seq)}"

    async def solve(
        self,
        problem: Problem,
        backend: str | None = None,
        *,
        deadline_ms: float | None = None,
        priority: int | None = None,
        trace: bool = False,
    ) -> RunResult:
        """Solve one problem remotely (raises on rejection/error)."""
        result, _ = await self.solve_with_info(
            problem, backend, deadline_ms=deadline_ms, priority=priority,
            trace=trace,
        )
        return result

    async def solve_with_info(
        self,
        problem: Problem,
        backend: str | None = None,
        *,
        deadline_ms: float | None = None,
        priority: int | None = None,
        trace: bool = False,
    ) -> tuple[RunResult, dict]:
        rid = self._next_id()
        meta, columns = encode_problem(problem)
        await self._send(
            _solve_header(rid, meta, backend, deadline_ms, priority, trace),
            join_columns(columns),
        )
        header, payload = await self._recv_for(rid)
        return _parse_solve(header, payload, problem)

    async def ping(self) -> float:
        rid = self._next_id()
        t0 = time.perf_counter()
        await self._send({"op": "ping", "id": rid})
        await self._recv_for(rid)
        return time.perf_counter() - t0

    async def stats(self) -> dict:
        rid = self._next_id()
        await self._send({"op": "stats", "id": rid})
        header, _ = await self._recv_for(rid)
        return {"service": header.get("service"), "server": header.get("server")}

    async def metrics_text(self) -> str:
        rid = self._next_id()
        await self._send({"op": "metrics", "id": rid})
        _, payload = await self._recv_for(rid)
        return payload.decode()

    async def close(self) -> None:
        self._writer.close()
        with contextlib.suppress(ConnectionError, OSError):
            await self._writer.wait_closed()
