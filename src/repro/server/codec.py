"""Problem/result codec: one encoding for shared memory and the wire.

Everything :mod:`repro.server` moves between address spaces -- problems
shipped to worker processes over ``multiprocessing.shared_memory``,
requests and responses framed onto a TCP socket -- uses one codec:

* a **JSON-safe header** (``meta``) carrying the small structured part
  (task, config, budgets, options, ledger fields, certificate scalars,
  per-round history) plus a *column manifest* describing the binary
  part;
* **flat numpy columns** carrying the bulk (edge endpoints and weights
  on the way in -- the ``.edges`` structure-of-arrays layout from
  :mod:`repro.ingest`, ``uint32``/``uint32``/``float64`` -- matching
  edge ids, certificate vectors and forests on the way out).

The two halves are reunited by :func:`decode_problem` /
:func:`decode_result`, which rebuild real :class:`~repro.api.Problem` /
:class:`~repro.api.RunResult` objects.  Problems travel with their
content address (:meth:`~repro.api.Problem.fingerprint`); the decoder
recomputes and verifies it, so a corrupted or mis-framed transfer can
never be solved as the wrong instance.

:func:`result_digest` is the canonical content hash of a result's
semantic payload (matching, certificate, forest, ledger, history --
*not* in-process conveniences like ``extras``).  The process-pool and
network transports are pinned digest-identical to the in-process
service by the parity batteries in ``tests/test_server_procpool.py``
and CI's server smoke job.

Framing (both directions of the TCP protocol, ``docs/service.md``)::

    offset 0   magic        4 bytes   b"RSV1"
    offset 4   header_len   uint32 BE
    offset 8   payload_len  uint64 BE
    offset 16  header       header_len bytes of UTF-8 JSON
    16 + h     payload      payload_len bytes of concatenated columns

Columns are concatenated in manifest order; offsets are implied by the
per-column ``dtype``/``len``.
"""

from __future__ import annotations

import hashlib
import json
import struct
from dataclasses import asdict
from typing import Any

import numpy as np

from repro.api import (
    ModelBudgets,
    Problem,
    RunLedger,
    RunResult,
)
from repro.core.certificates import Certificate, MatchingResult
from repro.core.matching_solver import SolverConfig
from repro.matching.structures import BMatching
from repro.util.graph import Graph

__all__ = [
    "MAGIC",
    "PRELUDE",
    "CodecError",
    "encode_problem",
    "encode_problem_group",
    "decode_problem",
    "encode_result",
    "decode_result",
    "result_digest",
    "columns_nbytes",
    "split_columns",
    "join_columns",
    "pack_frame",
    "unpack_prelude",
    "encode_trace",
    "decode_trace",
]

MAGIC = b"RSV1"
#: Fixed-size frame prelude: magic, header length, payload length.
PRELUDE = struct.Struct("!4sIQ")

#: Hard cap on a single frame's header/payload, to bound a malicious or
#: corrupted peer's allocation (1 GiB of columns ~ 64M edges).
MAX_HEADER_BYTES = 16 * 1024 * 1024
MAX_PAYLOAD_BYTES = 1 << 30


class CodecError(ValueError):
    """Malformed header, manifest/payload mismatch, or bad fingerprint."""


# ======================================================================
# Column manifests
# ======================================================================
def _column(name: str, array: np.ndarray) -> dict:
    return {"name": name, "dtype": str(array.dtype), "len": int(array.size)}


def columns_nbytes(manifest: list[dict]) -> int:
    """Total payload bytes the manifest describes."""
    return sum(np.dtype(c["dtype"]).itemsize * c["len"] for c in manifest)


def split_columns(manifest: list[dict], buf) -> dict[str, np.ndarray]:
    """Cut one contiguous buffer back into named columns (copies).

    Copies are deliberate: the buffer may be shared memory about to be
    unlinked, or a read-only network payload that a solver must be free
    to treat as ordinary writable arrays.
    """
    need = columns_nbytes(manifest)
    view = memoryview(buf)
    if len(view) < need:
        raise CodecError(
            f"payload holds {len(view)} bytes; manifest needs {need}"
        )
    out: dict[str, np.ndarray] = {}
    offset = 0
    for c in manifest:
        dt = np.dtype(c["dtype"])
        nbytes = dt.itemsize * c["len"]
        out[c["name"]] = np.frombuffer(
            view[offset : offset + nbytes], dtype=dt
        ).copy()
        offset += nbytes
    return out


def join_columns(arrays: list[np.ndarray]) -> bytes:
    """Concatenate columns into one contiguous payload."""
    return b"".join(np.ascontiguousarray(a).tobytes() for a in arrays)


# ======================================================================
# Frames
# ======================================================================
def pack_frame(header: dict, payload: bytes = b"") -> bytes:
    """Serialize one protocol frame (header JSON + binary payload)."""
    blob = json.dumps(header, sort_keys=True, separators=(",", ":")).encode()
    return PRELUDE.pack(MAGIC, len(blob), len(payload)) + blob + payload


def unpack_prelude(raw: bytes) -> tuple[int, int]:
    """Validate a frame prelude; returns ``(header_len, payload_len)``."""
    magic, header_len, payload_len = PRELUDE.unpack(raw)
    if magic != MAGIC:
        raise CodecError(f"bad frame magic {magic!r} (expected {MAGIC!r})")
    if header_len > MAX_HEADER_BYTES:
        raise CodecError(f"frame header of {header_len} bytes exceeds cap")
    if payload_len > MAX_PAYLOAD_BYTES:
        raise CodecError(f"frame payload of {payload_len} bytes exceeds cap")
    return header_len, payload_len


# ======================================================================
# JSON sanitation
# ======================================================================
def _jsonable(value: Any, where: str) -> Any:
    """Recursively convert numpy scalars to plain Python values."""
    if isinstance(value, (np.integer, np.floating, np.bool_)):
        return value.item()
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, (list, tuple)):
        return [_jsonable(v, where) for v in value]
    if isinstance(value, dict):
        return {str(k): _jsonable(v, where) for k, v in value.items()}
    raise CodecError(f"{where}: {type(value).__name__} is not encodable")


# ======================================================================
# Trace context (repro.obs spans over the pipe / the wire)
# ======================================================================
def encode_trace(span) -> dict:
    """A :class:`~repro.obs.Span` subtree as JSON-safe meta.

    This is how trace context crosses address spaces: a worker process
    serializes its span tree into the control-pipe reply, and the front
    end returns the finished request tree in the response header of a
    ``trace: true`` request.  Trace meta rides *next to* results, never
    inside them -- :func:`encode_result` / :func:`result_digest` are
    untouched, so tracing can never perturb digest parity.
    """
    return _jsonable(span.as_dict(), "Span")


def decode_trace(blob: dict):
    """Rebuild a :class:`~repro.obs.Span` tree from :func:`encode_trace`
    output (graftable into a local trace via :meth:`Span.graft`)."""
    from repro.obs import Span

    if not isinstance(blob, dict) or "name" not in blob:
        raise CodecError("trace meta must be a span-tree object")
    return Span.from_dict(blob)


# ======================================================================
# Problems
# ======================================================================
def encode_problem(problem: Problem) -> tuple[dict, list[np.ndarray]]:
    """Flatten a :class:`Problem` into ``(meta, columns)``.

    Columns reuse the ``.edges`` layout (``src``/``dst`` as ``uint32``
    where ``n`` fits, ``weight`` as ``float64``); a ``b`` column is
    added only for genuine b-matching instances.  ``meta`` carries the
    canonical JSON parts plus the problem fingerprint, so the receiving
    side can verify the transfer bit for bit.

    Raises
    ------
    CodecError
        For problems that are not content-addressable (options without
        a canonical JSON form cannot cross an address space and keep
        their meaning -- external ledgers, pre-built engines/streams).
    """
    g = problem.graph
    try:
        fingerprint = problem.fingerprint()
    except TypeError as exc:
        raise CodecError(
            f"problem is not serializable for transport: {exc}"
        ) from None
    endpoint_dtype = np.uint32 if g.n <= 0xFFFFFFFF else np.int64
    src = np.asarray(g.src, dtype=endpoint_dtype)
    dst = np.asarray(g.dst, dtype=endpoint_dtype)
    weight = np.asarray(g.weight, dtype=np.float64)
    columns = [src, dst, weight]
    manifest = [
        _column("src", src),
        _column("dst", dst),
        _column("weight", weight),
    ]
    if np.any(g.b != 1):
        b = np.asarray(g.b, dtype=np.int64)
        columns.append(b)
        manifest.append(_column("b", b))
    meta = {
        "kind": "problem",
        "n": int(g.n),
        "m": int(g.m),
        "task": problem.task,
        "config": _jsonable(asdict(problem.config), "Problem.config"),
        "budgets": _jsonable(asdict(problem.budgets), "Problem.budgets"),
        "options": _jsonable(problem.options, "Problem.options"),
        "fingerprint": fingerprint,
        "columns": manifest,
    }
    return meta, columns


def encode_problem_group(problems: list[Problem]):
    """Flatten a whole dispatch group for one shared-memory block.

    Returns ``(metas, total_nbytes, write_into)``: the per-problem
    :func:`encode_problem` headers stamped with their ``shm_base`` byte
    offsets, the total payload size, and a writer
    ``write_into(buf) -> None`` that copies every column *directly*
    into the writable buffer -- one copy per column, with no
    intermediate ``tobytes`` staging of the group's payload.  The byte
    layout is identical to encoding and writing the problems one at a
    time (columns in manifest order at their stamped offsets), so
    transport digests are unchanged.
    """
    metas: list[dict] = []
    column_sets: list[list[np.ndarray]] = []
    total = 0
    for problem in problems:
        meta, columns = encode_problem(problem)
        meta["shm_base"] = total
        total += columns_nbytes(meta["columns"])
        metas.append(meta)
        column_sets.append(columns)

    def write_into(buf) -> None:
        view = memoryview(buf)
        for meta, columns in zip(metas, column_sets):
            offset = meta["shm_base"]
            for arr in columns:
                arr = np.ascontiguousarray(arr)
                dest = np.frombuffer(
                    view, dtype=arr.dtype, count=arr.size, offset=offset
                )
                dest[:] = arr
                offset += arr.nbytes

    return metas, total, write_into


def decode_problem(
    meta: dict, columns: dict[str, np.ndarray], verify: bool = True
) -> Problem:
    """Rebuild a :class:`Problem` from ``(meta, named columns)``.

    ``verify=True`` (the default, and what every transport uses)
    recomputes the content address and compares it with the one the
    sender stamped -- the graph fingerprint is cached on the rebuilt
    :class:`Graph`, so the service layer's own fingerprinting reuses
    the work instead of repeating it.
    """
    if meta.get("kind") != "problem":
        raise CodecError(f"header kind {meta.get('kind')!r} is not 'problem'")
    n, m = int(meta["n"]), int(meta["m"])
    for name in ("src", "dst", "weight"):
        if name not in columns:
            raise CodecError(f"problem payload is missing column {name!r}")
        if columns[name].size != m:
            raise CodecError(
                f"column {name!r} has {columns[name].size} entries; "
                f"header says m={m}"
            )
    b = columns.get("b")
    if b is not None and b.size != n:
        raise CodecError(f"column 'b' has {b.size} entries; header says n={n}")
    graph = Graph(
        n=n,
        src=columns["src"].astype(np.int64),
        dst=columns["dst"].astype(np.int64),
        weight=columns["weight"],
        b=None if b is None else b.astype(np.int64),
    )
    problem = Problem(
        graph=graph,
        config=SolverConfig(**meta["config"]),
        task=meta["task"],
        budgets=ModelBudgets(**meta["budgets"]),
        options=dict(meta["options"]),
    )
    if verify:
        want = meta.get("fingerprint")
        have = problem.fingerprint()
        if want is not None and have != want:
            raise CodecError(
                f"problem fingerprint mismatch after transport: "
                f"sender {want[:16]}..., receiver {have[:16]}..."
            )
    return problem


# ======================================================================
# Results
# ======================================================================
def _encode_z(z: dict | None) -> dict | None:
    """Odd-set dual values: tuple keys become sorted key lists."""
    if z is None:
        return None
    items = sorted(
        ([int(v) for v in key], float(val)) for key, val in z.items()
    )
    return {"keys": [k for k, _ in items], "values": [v for _, v in items]}


def _decode_z(blob: dict | None) -> dict | None:
    if blob is None:
        return None
    return {
        tuple(int(v) for v in key): float(val)
        for key, val in zip(blob["keys"], blob["values"])
    }


def encode_result(result: RunResult) -> tuple[dict, list[np.ndarray]]:
    """Flatten a :class:`RunResult` into ``(meta, columns)``.

    Everything semantic crosses: matching (edge ids + multiplicities),
    certificate (scalars, ``x``/``dual_x`` vectors, odd-set duals),
    forest, normalized ledger, and -- when ``raw`` is a solver
    :class:`MatchingResult` -- its per-round history and resource
    snapshot, so the rebuilt ``raw`` compares equal to the original.
    In-process conveniences (``extras`` like a live MapReduce engine or
    clique simulator) do not cross; their keys are recorded in
    ``extras_dropped``.
    """
    columns: list[np.ndarray] = []
    manifest: list[dict] = []

    def add(name: str, array: np.ndarray) -> None:
        arr = np.ascontiguousarray(array)
        columns.append(arr)
        manifest.append(_column(name, arr))

    meta: dict[str, Any] = {
        "kind": "result",
        "backend": result.backend,
        "task": result.task,
        "ledger": _jsonable(asdict(result.ledger), "RunLedger"),
        "extras_dropped": sorted(result.extras),
    }
    if result.matching is not None:
        meta["matching"] = True
        add("matching.edge_ids", result.matching.edge_ids)
        add("matching.multiplicity", result.matching.multiplicity)
    cert = result.certificate
    if cert is not None:
        meta["certificate"] = {
            "upper_bound": float(cert.upper_bound),
            "lambda_min": float(cert.lambda_min),
            "dual_objective_rescaled": float(cert.dual_objective_rescaled),
            "scale_factor": float(cert.scale_factor),
            "z": _encode_z(cert.z),
            "dual_z": _encode_z(cert.dual_z),
            "has_dual_x": cert.dual_x is not None,
        }
        add("certificate.x", cert.x)
        if cert.dual_x is not None:
            add("certificate.dual_x", cert.dual_x)
    if result.forest is not None:
        forest = np.asarray(
            result.forest if result.forest else np.empty((0, 2)),
            dtype=np.int64,
        ).reshape(-1, 2)
        meta["forest"] = True
        add("forest.edges", forest.reshape(-1))
    raw = result.raw
    if isinstance(raw, MatchingResult):
        meta["solver_result"] = {
            "rounds": int(raw.rounds),
            "lambda_min": float(raw.lambda_min),
            "beta_final": float(raw.beta_final),
            "history": _jsonable(raw.history, "MatchingResult.history"),
            "resources": _jsonable(raw.resources, "MatchingResult.resources"),
        }
    meta["columns"] = manifest
    return meta, columns


def decode_result(
    meta: dict, columns: dict[str, np.ndarray], graph: Graph
) -> RunResult:
    """Rebuild a :class:`RunResult` against the caller's ``graph``.

    The graph is the one the caller submitted (both sides of a
    transport hold the same instance by fingerprint), so the rebuilt
    matching indexes the caller's own edge arrays -- mirroring the
    in-process service, where results reference the submitted graph
    object itself.
    """
    if meta.get("kind") != "result":
        raise CodecError(f"header kind {meta.get('kind')!r} is not 'result'")
    ledger = RunLedger(**meta["ledger"])
    matching = None
    if meta.get("matching"):
        matching = BMatching(
            graph,
            columns["matching.edge_ids"].astype(np.int64),
            columns["matching.multiplicity"].astype(np.int64),
        )
    certificate = None
    cmeta = meta.get("certificate")
    if cmeta is not None:
        certificate = Certificate(
            upper_bound=cmeta["upper_bound"],
            lambda_min=cmeta["lambda_min"],
            dual_objective_rescaled=cmeta["dual_objective_rescaled"],
            scale_factor=cmeta["scale_factor"],
            x=columns["certificate.x"],
            z=_decode_z(cmeta["z"]),
            dual_x=columns["certificate.dual_x"] if cmeta["has_dual_x"] else None,
            dual_z=_decode_z(cmeta["dual_z"]),
        )
    forest = None
    if meta.get("forest"):
        pairs = columns["forest.edges"].reshape(-1, 2)
        forest = [(int(i), int(j)) for i, j in pairs]
    raw: Any = None
    smeta = meta.get("solver_result")
    if smeta is not None:
        raw = MatchingResult(
            matching=matching,
            certificate=certificate,
            rounds=smeta["rounds"],
            lambda_min=smeta["lambda_min"],
            beta_final=smeta["beta_final"],
            history=smeta["history"],
            resources=smeta["resources"],
        )
    elif forest is not None:
        raw = forest
    elif matching is not None:
        raw = matching
    return RunResult(
        backend=meta["backend"],
        task=meta["task"],
        ledger=ledger,
        matching=matching,
        certificate=certificate,
        forest=forest,
        raw=raw,
    )


def result_digest(result: RunResult) -> str:
    """Canonical content hash of a result's semantic payload.

    Covers the encoded header (task, ledger, certificate scalars and
    odd-set duals, solver history/resources) and every binary column
    bit for bit; excludes in-process conveniences (``extras``).  Two
    results -- computed in process, in a worker process, or across the
    wire -- are interchangeable iff their digests match; this is the
    quantity the transport parity gates pin.
    """
    meta, columns = encode_result(result)
    meta = dict(meta)
    # transport bookkeeping, not content: a result that crossed a hop
    # (extras already stripped) must digest equal to the original
    meta.pop("extras_dropped", None)
    meta["column_sha256"] = [
        hashlib.sha256(np.ascontiguousarray(c).tobytes()).hexdigest()
        for c in columns
    ]
    blob = json.dumps(meta, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(b"repro-result-v1" + blob.encode()).hexdigest()
