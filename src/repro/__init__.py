"""repro: dual-primal algorithms for maximum matching under resource constraints.

A full reproduction of Ahn & Guha (SPAA 2015): a (1-eps)-approximation
scheme for weighted nonbipartite b-matching using O(p/eps) rounds of
adaptive sketching and O(n^{1+1/p}) central space, together with every
substrate it stands on -- linear sketches, deferred cut-sparsifiers, a
simulated MapReduce/semi-streaming execution layer, penalty LP
relaxations, and the baselines it is compared against.

Public entry points
-------------------
``run(Problem(graph, config=SolverConfig(...)), backend=...)``
    The unified facade: one call dispatches any model of computation --
    ``"offline"``, ``"semi_streaming"``, ``"mapreduce"``,
    ``"congested_clique"`` -- or any baseline (``"baseline:auction"``,
    ``"baseline:mcgregor"``, ``"baseline:lattanzi"``,
    ``"baseline:one_pass"``) and returns a unified ``RunResult``.
``run_many(problems, backend=...)``
    Batched facade; homogeneous offline batches ride the lockstep batch
    engine (identical results, several-fold per-instance throughput).
``compare(problem, backends=[...])``
    One problem across many backends; ranked
    weight/certified-ratio/resources table.
``MatchingService`` (``repro.service``)
    In-process serving layer: concurrent submissions coalesced into
    lockstep batches, content-addressed result caching, sharded
    workers, latency/occupancy/cache metrics (docs/service.md).
``DynamicGraphSession`` (``repro.dynamic``)
    Dynamic turnstile workload: interleave edge inserts/deletes with
    matching/forest queries at any time -- linear sketch state is
    maintained incrementally and solves can be warm-started from the
    previous query's verified duals (docs/dynamic.md).  The ``dynamic``
    backend runs update-log problems through the facade.
``DualPrimalMatchingSolver`` / ``SolverConfig``
    The configurable solver (rounds/space/offline-oracle knobs).
``Graph``
    The numpy edge-array graph type everything operates on.
``Problem.from_edge_file`` / ``FileBackedGraph`` (``repro.ingest``)
    Out-of-core ingestion: graphs live on disk in the binary
    ``.edges`` format and the semi-streaming forest pipeline runs
    against them in O(chunk + sketch-block) memory, bit-identical to
    the in-RAM path (docs/ingest.md).

``solve_matching`` / ``solve_many`` remain importable as deprecation
shims pinned bit-identical to the facade (migration table in
docs/api.md).

See README.md for a guided tour and docs/architecture.md for the map
from paper sections to modules.
"""

from repro.core import (
    DualPrimalMatchingSolver,
    MatchingResult,
    SolverConfig,
    solve_many,
    solve_matching,
)
from repro.matching import BMatching
from repro.util import Graph
from repro.api import (
    Backend,
    BackendNotFound,
    ModelBudgets,
    Problem,
    ProblemMismatch,
    RunLedger,
    RunResult,
    backend_names,
    compare,
    config_fingerprint,
    get_backend,
    register_backend,
    run,
    run_many,
)
from repro.dynamic import DynamicGraphSession
from repro.ingest import FileBackedGraph
from repro.service import MatchingService, ServiceStats

__version__ = "1.4.0"

__all__ = [
    "Graph",
    "BMatching",
    "Problem",
    "ModelBudgets",
    "RunLedger",
    "RunResult",
    "Backend",
    "BackendNotFound",
    "ProblemMismatch",
    "run",
    "run_many",
    "compare",
    "config_fingerprint",
    "register_backend",
    "backend_names",
    "get_backend",
    "MatchingService",
    "ServiceStats",
    "DynamicGraphSession",
    "FileBackedGraph",
    "solve_matching",
    "solve_many",
    "DualPrimalMatchingSolver",
    "SolverConfig",
    "MatchingResult",
    "__version__",
]
