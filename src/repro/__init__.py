"""repro: dual-primal algorithms for maximum matching under resource constraints.

A full reproduction of Ahn & Guha (SPAA 2015): a (1-eps)-approximation
scheme for weighted nonbipartite b-matching using O(p/eps) rounds of
adaptive sketching and O(n^{1+1/p}) central space, together with every
substrate it stands on -- linear sketches, deferred cut-sparsifiers, a
simulated MapReduce/semi-streaming execution layer, penalty LP
relaxations, and the baselines it is compared against.

Public entry points
-------------------
``solve_matching(graph, eps=...)``
    One-call (1-eps)-approximate weighted b-matching with a verified
    dual certificate.
``solve_many(graphs, eps=...)``
    The same solver over a batch of instances in lockstep -- identical
    results, several-fold per-instance throughput at batch >= 32.
``DualPrimalMatchingSolver`` / ``SolverConfig``
    The configurable solver (rounds/space/offline-oracle knobs).
``Graph``
    The numpy edge-array graph type everything operates on.

See README.md for a guided tour and docs/architecture.md for the map
from paper sections to modules.
"""

from repro.core import (
    DualPrimalMatchingSolver,
    MatchingResult,
    SolverConfig,
    solve_many,
    solve_matching,
)
from repro.matching import BMatching
from repro.util import Graph

__version__ = "1.0.0"

__all__ = [
    "Graph",
    "BMatching",
    "solve_matching",
    "solve_many",
    "DualPrimalMatchingSolver",
    "SolverConfig",
    "MatchingResult",
    "__version__",
]
