"""ctypes wrappers around the compiled C kernels.

Each public function here mirrors the signature and semantics of its
counterpart in :mod:`repro.kernels.numpy_impl` exactly -- same argument
conventions, same scalar/array behavior, same error behavior -- so the
dispatch layer can swap the two freely.  Parity is enforced by
``tests/test_kernels.py``.

Importing this module compiles (or loads from cache) the shared
library; any failure surfaces as :class:`~repro.kernels.build.
NativeBuildError`, which ``repro.kernels`` turns into a numpy fallback
under ``REPRO_KERNELS=auto``.
"""

from __future__ import annotations

import ctypes
import weakref
from ctypes import c_double, c_int64, c_void_p

import numpy as np

from repro.kernels.build import load_library
from repro.kernels.common import OracleEvalResult, OracleScratch

_lib = load_library()

_F64 = np.float64
_I64 = np.int64
_U64 = np.uint64


def _sig(name: str, restype, *argtypes) -> None:
    fn = getattr(_lib, name)
    fn.restype = restype
    fn.argtypes = list(argtypes)


# pointers are passed as raw addresses (c_void_p): every wrapper owns
# the contiguity/dtype normalization, so no per-call ctypes inspection
_sig("rk_mod_mersenne", None, c_void_p, c_void_p, c_int64)
_sig("rk_mulmod", None, c_void_p, c_void_p, c_void_p, c_int64)
_sig("rk_powmod", None, c_void_p, c_void_p, c_void_p, c_int64)
_sig("rk_pow_from_table", None, c_void_p, c_int64, c_void_p, c_void_p, c_int64)
_sig("rk_sum_mod_p_axis0", None, c_void_p, c_int64, c_int64, c_void_p)
_sig(
    "rk_sketch_ingest", None,
    c_void_p, c_void_p, c_void_p,
    c_int64, c_int64, c_int64, c_int64,
    c_void_p, c_int64, c_void_p, c_int64,
    c_void_p, c_int64,
    c_void_p, c_void_p, c_void_p, c_void_p, c_int64,
)
_sig(
    "rk_decode_planes", None,
    c_void_p, c_void_p, c_void_p, c_void_p,
    c_int64, c_int64, c_int64, c_int64, c_void_p, c_void_p,
)
_sig("rk_gather_add2", None, c_void_p, c_void_p, c_void_p, c_void_p, c_int64)
_sig("rk_seg_sum", None, c_void_p, c_void_p, c_void_p, c_int64, c_void_p)
_sig("rk_seg_minmax", None, c_void_p, c_void_p, c_void_p, c_int64, c_int64, c_void_p)
_sig(
    "rk_seg_ratio_minmax", None,
    c_void_p, c_void_p, c_void_p, c_void_p, c_int64, c_int64, c_void_p,
)
_sig("rk_dual_scatter", None, c_void_p, c_void_p, c_void_p, c_void_p, c_int64)
_sig("rk_index_scatter", None, c_void_p, c_void_p, c_void_p, c_int64)
_sig("rk_blend", None, c_void_p, c_void_p, c_void_p, c_void_p, c_int64)
_sig("rk_tick_stored_shift", None, c_void_p, c_void_p, c_void_p, c_int64, c_void_p, c_void_p)
_sig(
    "rk_tick_stored_post", None,
    c_void_p, c_void_p, c_void_p, c_void_p, c_int64, c_void_p, c_void_p, c_void_p,
)
_sig(
    "rk_tick_pack_arg", None,
    c_void_p, c_void_p, c_int64, c_void_p, c_void_p, c_void_p, c_void_p, c_int64,
    c_void_p, c_void_p,
)
_sig(
    "rk_tick_pack_post", None,
    c_void_p, c_void_p, c_void_p, c_void_p, c_int64, c_void_p, c_int64,
    c_void_p, c_void_p, c_void_p,
)
_sig(
    "rk_oracle_eval", c_int64,
    c_int64, c_void_p, c_void_p, c_void_p, c_void_p, c_void_p,
    c_void_p, c_void_p, c_void_p, c_void_p,
    c_void_p, c_void_p, c_void_p,
    c_void_p, c_void_p, c_void_p,
    c_void_p, c_void_p, c_void_p, c_double,
    c_void_p, c_void_p, c_void_p, c_void_p, c_void_p,
    c_void_p,
    c_void_p, c_void_p, c_void_p, c_void_p,
    c_void_p, c_void_p, c_void_p,
)


def _p(a: np.ndarray) -> int:
    """Raw data pointer of a (known C-contiguous, right-dtype) array."""
    return a.ctypes.data


# Pointer memo for the solver-hot wrappers: each inner tick passes the
# same long-lived layout/scratch arrays dozens of times, and
# ``ndarray.ctypes.data`` costs ~2us per access (it builds a ctypes
# helper object every time).  Entries are keyed by ``id`` and validated
# by a weakref identity check, so id reuse after an array is freed can
# never serve a stale pointer.  (An ndarray's buffer address is fixed
# for its lifetime; nothing in this repo calls ``ndarray.resize``.)
_ptr_memo: dict[int, tuple] = {}


def _pm(a: np.ndarray) -> int:
    ent = _ptr_memo.get(id(a))
    if ent is not None and ent[0]() is a:
        return ent[1]
    ptr = a.ctypes.data
    if len(_ptr_memo) > 8192:
        for k in [k for k, e in _ptr_memo.items() if e[0]() is None]:
            del _ptr_memo[k]
    _ptr_memo[id(a)] = (weakref.ref(a), ptr)
    return ptr


def _c(a, dtype) -> np.ndarray:
    """Normalize to a C-contiguous array of the given dtype."""
    return np.ascontiguousarray(a, dtype=dtype)


# ----------------------------------------------------------------------
# Mersenne-prime arithmetic
# ----------------------------------------------------------------------
def mod_mersenne(x) -> np.ndarray:
    a = np.asarray(x, dtype=_U64)
    ac = _c(a, _U64)  # note: promotes 0-d to 1-d, hence the reshape
    out = np.empty(a.shape, dtype=_U64)
    _lib.rk_mod_mersenne(_p(ac), _p(out), a.size)
    return out


def mulmod(a, b) -> np.ndarray:
    aa, bb = np.broadcast_arrays(np.asarray(a, dtype=_U64), np.asarray(b, dtype=_U64))
    shape = aa.shape
    aa, bb = _c(aa, _U64), _c(bb, _U64)
    out = np.empty(shape, dtype=_U64)
    _lib.rk_mulmod(_p(aa), _p(bb), _p(out), aa.size)
    return out


def powmod(base, exp):
    scalar = np.isscalar(base) and np.isscalar(exp)
    b = np.atleast_1d(np.asarray(base, dtype=_U64))
    e = np.atleast_1d(np.asarray(exp, dtype=_U64))
    b, e = np.broadcast_arrays(b, e)
    b, e = _c(b, _U64), _c(e, _U64)
    out = np.empty(b.shape, dtype=_U64)
    _lib.rk_powmod(_p(b), _p(e), _p(out), b.size)
    return int(out.flat[0]) if scalar else out


def pow_from_table(table, exps) -> np.ndarray:
    t = _c(table, _U64)
    e = np.asarray(exps, dtype=_U64)
    ec = _c(e, _U64)
    if e.size and int(e.max()).bit_length() > t.size:
        # the numpy reference indexes past the table and raises
        raise IndexError(
            f"exponent needs {int(e.max()).bit_length()} squarings, table has {t.size}"
        )
    out = np.empty(e.shape, dtype=_U64)
    _lib.rk_pow_from_table(_p(t), t.size, _p(ec), _p(out), e.size)
    return out


def sum_mod_p(values, axis: int = 0) -> np.ndarray:
    v = np.asarray(values, dtype=_U64)
    v0 = _c(np.moveaxis(v, axis, 0), _U64)
    k = v0.shape[0] if v0.ndim else 1
    rest_shape = v0.shape[1:]
    rest = int(np.prod(rest_shape)) if rest_shape else 1
    out = np.empty(rest, dtype=_U64)
    _lib.rk_sum_mod_p_axis0(_p(v0), k, rest, _p(out))
    return out.reshape(rest_shape)


# ----------------------------------------------------------------------
# Fused sketch ingestion / decode
# ----------------------------------------------------------------------
def sketch_ingest(s0, s1, fp, coeffs, ztab, rowsel, slot_arr, indices, deltas, dmod) -> None:
    slots, rows, reps, levels = s0.shape
    rs = _c(rowsel, _I64)
    sa = _c(slot_arr, _I64)
    ix = _c(indices, _I64)
    dl = _c(deltas, _I64)
    dm = _c(dmod, _U64)
    _lib.rk_sketch_ingest(
        _p(s0), _p(s1), _p(fp),
        slots, rows, reps, levels,
        _p(coeffs), coeffs.shape[-1], _p(ztab), ztab.shape[-1],
        _p(rs), rs.size,
        _p(sa), _p(ix), _p(dl), _p(dm), ix.size,
    )


def decode_planes(s0, s1, fp, z, universe: int) -> list[tuple[int, int] | None]:
    groups, reps, levels = s0.shape
    s0c, s1c = _c(s0, _I64), _c(s1, _I64)
    fpc, zc = _c(fp, _U64), _c(z, _U64)
    out_idx = np.empty(groups, dtype=_I64)
    out_val = np.empty(groups, dtype=_I64)
    _lib.rk_decode_planes(
        _p(s0c), _p(s1c), _p(fpc), _p(zc),
        groups, reps, levels, universe, _p(out_idx), _p(out_val),
    )
    return [
        (int(q), int(v)) if q >= 0 else None
        for q, v in zip(out_idx.tolist(), out_val.tolist())
    ]


# ----------------------------------------------------------------------
# Segment / scatter / gather primitives
# ----------------------------------------------------------------------
def _idx_arr(off, idx) -> np.ndarray:
    if idx is None:
        return np.arange(len(off) - 1, dtype=_I64)
    return _c(idx, _I64)


def seg_sum(values, off, idx=None) -> np.ndarray:
    ids = _idx_arr(off, idx)
    out = np.empty(len(ids), dtype=_F64)
    _lib.rk_seg_sum(_pm(values), _pm(off), _pm(ids), len(ids), _p(out))
    return out


def seg_min(values, off, idx=None) -> np.ndarray:
    ids = _idx_arr(off, idx)
    out = np.empty(len(ids), dtype=_F64)
    _lib.rk_seg_minmax(_pm(values), _pm(off), _pm(ids), len(ids), 0, _p(out))
    return out


def seg_max(values, off, idx=None) -> np.ndarray:
    ids = _idx_arr(off, idx)
    out = np.empty(len(ids), dtype=_F64)
    _lib.rk_seg_minmax(_pm(values), _pm(off), _pm(ids), len(ids), 1, _p(out))
    return out


def gather_add2(buf, idx_a, idx_b) -> np.ndarray:
    out = np.empty(len(idx_a), dtype=_F64)
    _lib.rk_gather_add2(_pm(buf), _pm(idx_a), _pm(idx_b), _p(out), len(idx_a))
    return out


def seg_ratio_min(cov, wk, off, idx) -> np.ndarray:
    ids = _c(idx, _I64)
    out = np.empty(len(ids), dtype=_F64)
    _lib.rk_seg_ratio_minmax(_pm(cov), _pm(wk), _pm(off), _pm(ids), len(ids), 0, _p(out))
    return out


def seg_ratio_max(cov, wk, off, idx) -> np.ndarray:
    ids = _c(idx, _I64)
    out = np.empty(len(ids), dtype=_F64)
    _lib.rk_seg_ratio_minmax(_pm(cov), _pm(wk), _pm(off), _pm(ids), len(ids), 1, _p(out))
    return out


def dual_scatter(src, dst, vals, size: int, out=None) -> np.ndarray:
    sc, dc, vc = _c(src, _I64), _c(dst, _I64), _c(vals, _F64)
    if out is not None and out.size == size and out.dtype == _F64 and out.flags.c_contiguous:
        out.fill(0.0)
    else:
        out = np.zeros(size, dtype=_F64)
    _lib.rk_dual_scatter(_pm(out), _pm(sc), _pm(dc), _pm(vc), len(vc))
    return out


def index_scatter(idx, vals, size: int) -> np.ndarray:
    ic, vc = _c(idx, _I64), _c(vals, _F64)
    out = np.zeros(size, dtype=_F64)
    _lib.rk_index_scatter(_p(out), _pm(ic), _pm(vc), len(vc))
    return out


def blend(x, other, sigmas, vl_off, vl_count) -> None:
    del vl_count
    _lib.rk_blend(_pm(x), _pm(other), _pm(sigmas), _pm(vl_off), len(sigmas))


# ----------------------------------------------------------------------
# Inner-tick fused stages
# ----------------------------------------------------------------------
def tick_stored_shift(cov, wk, off, off_list, counts, alphas) -> np.ndarray:
    del off_list
    shifted = np.empty(len(cov), dtype=_F64)
    _lib.rk_tick_stored_shift(_pm(cov), _pm(wk), _pm(off), len(counts), _pm(alphas), _p(shifted))
    return shifted


def tick_stored_post(e, wk, probs, off, off_list):
    B = len(off_list) - 1
    support_vals = np.empty(len(e), dtype=_F64)
    scratch = np.empty(len(e), dtype=_F64)
    usc = np.zeros(B, dtype=_F64)
    _lib.rk_tick_stored_post(
        _pm(e), _pm(wk), _pm(probs), _pm(off), B, _p(support_vals), _p(scratch), _p(usc)
    )
    return support_vals, usc


def tick_pack_arg(x, zload, hik_idx, po3_hik, alpha_p_hik, off, off_list, counts, active):
    del off_list
    arg = np.empty(len(hik_idx), dtype=_F64)
    any_z = 0 if zload is None else 1
    z = x if zload is None else zload  # dummy pointer when unused
    _lib.rk_tick_pack_arg(
        _pm(x), _pm(z), any_z, _pm(hik_idx), _pm(po3_hik), _pm(alpha_p_hik),
        _pm(off), len(counts), _pm(active), _p(arg),
    )
    return arg


def tick_pack_post(e, po3_hik, hik_idx, off, off_list, zeta):
    B = len(off_list) - 1
    zmul = np.empty(len(e), dtype=_F64)
    scratch = np.empty(len(e), dtype=_F64)
    qo = np.zeros(B, dtype=_F64)
    _lib.rk_tick_pack_post(
        _pm(e), _pm(po3_hik), _pm(hik_idx), _pm(off), B, _pm(zeta), zeta.size,
        _p(zmul), _p(scratch), _p(qo),
    )
    return zmul, qo


# ----------------------------------------------------------------------
# Fused Algorithm 5
# ----------------------------------------------------------------------
def oracle_eval(batch, s, us_mass, zsum, hik_idx, hik_off, hik_counts, zmul,
                sub, rho_b, beta_b, eps: float,
                scratch: OracleScratch) -> OracleEvalResult:
    del hik_counts
    b = batch
    active = scratch.active
    active.fill(0)
    for i in sub:
        active[i] = 1
    # the layout and scratch buffers are allocated once and reused for
    # thousands of evaluations; cache their raw pointers on the objects
    # so each call only resolves the per-tick arrays (s, zsum, hik, ...)
    try:
        bp = b._nat_ptrs
    except AttributeError:
        bp = b._nat_ptrs = (
            b.size, _p(b.l_off), _p(b.vl_off), _p(b.v_off), _p(b.row_off),
            _p(b.row_len), _p(b.wk_l), _p(b.wk_vl), _p(b.b_vl), _p(b.col_vl),
        )
    try:
        sp = scratch._nat_ptrs
    except AttributeError:
        sp = scratch._nat_ptrs = (
            (_p(active),),
            (
                _p(scratch.prefix), _p(scratch.cs), _p(scratch.tmp_l),
                _p(scratch.gath), _p(scratch.pobuf), _p(scratch.goflag),
                _p(scratch.gamma), _p(scratch.gamma_v), _p(scratch.k_star_row),
                _p(scratch.net), _p(scratch.route), _p(scratch.step_x),
                _p(scratch.po),
            ),
        )
    flags = _lib.rk_oracle_eval(
        *bp,
        _pm(us_mass), _pm(zsum), _pm(s),
        _pm(hik_idx), _pm(hik_off), _pm(zmul),
        *sp[0], _pm(rho_b), _pm(beta_b), eps,
        *sp[1],
    )
    return OracleEvalResult(
        any_go=bool(flags & 1),
        gamma=scratch.gamma,
        gamma_v=scratch.gamma_v,
        route=scratch.route,
        k_star_row=scratch.k_star_row,
        pos_net=scratch.net,
        step_x=scratch.step_x if flags & 2 else None,
        po=scratch.po,
    )
