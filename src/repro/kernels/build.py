"""Compile-on-demand loader for the native kernel library.

The native backend is plain C (``kernels.c``) compiled with whatever
system toolchain is available (``cc``/``gcc``/``clang``) and loaded via
:mod:`ctypes` -- no third-party build machinery, no wheels, no install
step.  Compilation happens at most once per source version: the shared
object is cached under a content-hash name, so rebuilds trigger only
when the C source changes.

Flags matter for parity: ``-ffp-contract=off`` forbids fused
multiply-add contraction (gcc enables contraction by default at ``-O2``,
which would change float results), and ``-ffast-math`` is never used.
Every failure mode (no compiler, sandboxed cc, unwritable cache) raises
:class:`NativeBuildError`; the dispatch layer in ``__init__`` turns that
into a clean numpy fallback under ``REPRO_KERNELS=auto``.
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import shutil
import subprocess
import tempfile
from pathlib import Path

__all__ = ["NativeBuildError", "load_library", "cache_dir"]

_SOURCE = Path(__file__).resolve().parent / "kernels.c"
_CFLAGS = ["-O2", "-ffp-contract=off", "-fPIC", "-shared"]


class NativeBuildError(RuntimeError):
    """The native kernel library could not be built or loaded."""


def cache_dir() -> Path:
    """Directory holding compiled kernel libraries (override via env)."""
    env = os.environ.get("REPRO_KERNELS_CACHE")
    if env:
        return Path(env)
    base = os.environ.get("XDG_CACHE_HOME") or os.path.join(
        os.path.expanduser("~"), ".cache"
    )
    return Path(base) / "repro-kernels"


def _find_compiler() -> str:
    for cand in ("cc", "gcc", "clang"):
        path = shutil.which(cand)
        if path:
            return path
    raise NativeBuildError("no C compiler (cc/gcc/clang) on PATH")


def _compile(source: Path, out: Path) -> None:
    compiler = _find_compiler()
    out.parent.mkdir(parents=True, exist_ok=True)
    # build into a temp name, then atomically rename: concurrent
    # processes race benignly (last writer wins, all results identical)
    fd, tmp = tempfile.mkstemp(suffix=".so", dir=str(out.parent))
    os.close(fd)
    cmd = [compiler, *_CFLAGS, "-o", tmp, str(source), "-lm"]
    try:
        proc = subprocess.run(cmd, capture_output=True, text=True, timeout=120)
    except (OSError, subprocess.SubprocessError) as exc:
        os.unlink(tmp)
        raise NativeBuildError(f"compiler invocation failed: {exc}") from exc
    if proc.returncode != 0:
        os.unlink(tmp)
        raise NativeBuildError(
            f"compilation failed ({' '.join(cmd)}):\n{proc.stderr.strip()}"
        )
    os.replace(tmp, out)


def load_library() -> ctypes.CDLL:
    """Compile (if needed) and load the native kernel library."""
    if not _SOURCE.exists():
        raise NativeBuildError(f"kernel source missing: {_SOURCE}")
    text = _SOURCE.read_bytes()
    digest = hashlib.sha256(text).hexdigest()[:16]
    lib_path = cache_dir() / f"librepro-kernels-{digest}.so"
    if not lib_path.exists():
        try:
            _compile(_SOURCE, lib_path)
        except NativeBuildError:
            raise
        except OSError as exc:
            raise NativeBuildError(f"cannot write kernel cache: {exc}") from exc
    try:
        return ctypes.CDLL(str(lib_path))
    except OSError as exc:
        raise NativeBuildError(f"cannot load {lib_path}: {exc}") from exc
