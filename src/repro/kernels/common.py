"""Backend-neutral types shared by both kernel implementations.

The fused solver kernels write into preallocated scratch buffers
(:class:`OracleScratch`) owned by the caller -- one allocation per
:class:`~repro.core.micro_oracle.BatchMicroContext`, reused across every
Lagrangian evaluation -- and return an :class:`OracleEvalResult` of
views into them.  Callers must copy anything they keep (the engine
already does: dual planes are ``.copy()``-ed into ``LayeredDual``).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["MERSENNE_P", "OracleScratch", "OracleEvalResult"]

# canonical definition lives in repro.sketch.hashing; repeated here so
# the kernel layer has no repro-internal imports (hashing imports us)
MERSENNE_P = (1 << 61) - 1


class OracleScratch:
    """Reusable buffers for the fused Algorithm 5 kernel.

    Sized once from the batch layout; every array is overwritten
    wholesale by each evaluation (stale segments of instances outside
    the evaluated subset are never read -- the same contract as the
    pre-kernel reference code).
    """

    def __init__(self, nvl: int, nv: int, nl: int, B: int, max_L: int,
                 max_rows: int, max_hik: int):
        self.net = np.empty(nvl)
        self.prefix = np.empty(nvl)
        self.cs = np.empty(nvl)
        self.row_tot = np.zeros(nv)
        self.step_x = np.empty(nvl)
        self.k_star_row = np.empty(nv, dtype=np.int64)
        self.gamma = np.zeros(B)
        self.gamma_v = np.zeros(B)
        self.po = np.zeros(B)
        self.rho = np.zeros(B)
        self.beta = np.ones(B)
        self.route = np.zeros(B, dtype=np.uint8)
        self.active = np.zeros(B, dtype=np.uint8)
        self.goflag = np.zeros(B, dtype=np.uint8)
        self.tmp_l = np.empty(max(1, max_L))
        self.gath = np.empty(max(1, max_rows))
        self.pobuf = np.empty(max(1, max_hik))

    @classmethod
    def for_batch(cls, batch, hik_off: np.ndarray) -> "OracleScratch":
        B = batch.size
        return cls(
            nvl=int(batch.vl_off[-1]),
            nv=int(batch.v_off[-1]),
            nl=int(batch.l_off[-1]),
            B=B,
            max_L=int(batch.L.max()) if B else 0,
            max_rows=int(batch.n.max()) if B else 0,
            max_hik=int(np.diff(hik_off).max()) if B else 0,
        )


@dataclass
class OracleEvalResult:
    """Outputs of one fused Algorithm 5 evaluation (views into scratch).

    ``route[i]`` for evaluated instances: 0 = zero route, 1 = vertex
    route, 2 = needs the odd-set/witness tail (steps 9-21, run by the
    caller in Python).  ``step_x``/``po`` are populated only when some
    instance took the vertex route (``step_x is None`` otherwise);
    ``k_star_row``/``pos_net`` follow the reference's full-buffer
    semantics and are valid whenever ``any_go`` is True.
    """

    any_go: bool
    gamma: np.ndarray
    gamma_v: np.ndarray
    route: np.ndarray
    k_star_row: np.ndarray
    pos_net: np.ndarray
    step_x: np.ndarray | None
    po: np.ndarray
