"""Kernel registry: name -> (numpy impl, native impl, parity contract).

The registry is the single source of truth for what a "kernel" is.  The
dispatch layer (``repro.kernels.__init__``) binds one module-level
symbol per entry; the parity batteries iterate the registry so a new
kernel cannot be added without being pulled into the exhaustive
native-vs-numpy comparison.

The ``contract`` string states the exact equality promise the native
implementation makes against the numpy reference -- it is documentation
enforced by ``tests/test_kernels.py``, not executable itself.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable

from repro.kernels import numpy_impl

__all__ = ["KernelSpec", "KERNEL_CONTRACTS", "KERNEL_NAMES", "build_registry"]

_EXACT_U64 = "exact uint64 equality on all inputs (integer arithmetic mod 2^61-1)"
_EXACT_F64 = "bitwise float64 equality (same IEEE op order as the numpy reference)"
_EXACT_F64_PW = (
    "bitwise float64 equality; reductions replicate numpy pairwise summation"
)

# name -> parity contract; insertion order is the canonical kernel list
KERNEL_CONTRACTS: dict[str, str] = {
    # Mersenne-prime arithmetic
    "mod_mersenne": _EXACT_U64,
    "mulmod": _EXACT_U64 + "; operands < 2^61",
    "powmod": _EXACT_U64 + "; scalar in -> python int out, like the reference",
    "pow_from_table": _EXACT_U64 + "; raises IndexError when an exponent "
    "exceeds the table (reference walks off the table)",
    "sum_mod_p": _EXACT_U64 + "; values < p, axis length < 2^32",
    # fused sketch kernels
    "sketch_ingest": "exact int64/uint64 equality of the s0/s1/fingerprint "
    "cell tensors (wrap-exact scatter + suffix-sum; levels via the hash)",
    "decode_planes": "identical decode results (same cell scan order, "
    "python floor-division semantics, same fingerprint check)",
    # segment / scatter / gather primitives
    "seg_sum": _EXACT_F64_PW,
    "seg_min": _EXACT_F64,
    "seg_max": _EXACT_F64,
    "gather_add2": _EXACT_F64,
    "seg_ratio_min": _EXACT_F64,
    "seg_ratio_max": _EXACT_F64,
    "dual_scatter": _EXACT_F64 + "; sequential accumulation in np.bincount order",
    "index_scatter": _EXACT_F64 + "; sequential accumulation in index order",
    "blend": _EXACT_F64 + "; in-place on x",
    # inner-tick fused stages (exp happens in numpy between halves)
    "tick_stored_shift": _EXACT_F64,
    "tick_stored_post": _EXACT_F64_PW,
    "tick_pack_arg": _EXACT_F64,
    "tick_pack_post": _EXACT_F64_PW,
    # fused Algorithm 5 steps 1-8
    "oracle_eval": _EXACT_F64_PW + "; route/k* integer-identical, scans "
    "sequential per row like np.cumsum",
}

KERNEL_NAMES: list[str] = list(KERNEL_CONTRACTS)


@dataclass(frozen=True)
class KernelSpec:
    """One dispatchable kernel and its parity promise."""

    name: str
    numpy_impl: Callable[..., Any]
    native_impl: Callable[..., Any] | None
    contract: str


def build_registry(native_mod=None) -> dict[str, KernelSpec]:
    """Assemble the registry, with native entries when the backend loaded."""
    out: dict[str, KernelSpec] = {}
    for name, contract in KERNEL_CONTRACTS.items():
        out[name] = KernelSpec(
            name=name,
            numpy_impl=getattr(numpy_impl, name),
            native_impl=getattr(native_mod, name) if native_mod is not None else None,
            contract=contract,
        )
    return out
