"""Pure-numpy reference implementations of every kernel.

This module is the *parity anchor*: each function here is the exact
pre-kernel code path of the subsystem it serves (moved, not rewritten),
so selecting ``REPRO_KERNELS=numpy`` reproduces the historical behavior
bit for bit.  The native implementations in :mod:`repro.kernels.native`
are validated against these functions by the parity batteries in
``tests/test_kernels.py`` -- exact uint64 equality for the modular
kernels, exact float64 equality for the solver kernels.

No repro-internal imports: the sketch layer imports this package, so
everything needed (Mersenne arithmetic, the geometric-level hash) is
self-contained here.
"""

from __future__ import annotations

import numpy as np

from repro.kernels.common import MERSENNE_P, OracleEvalResult, OracleScratch

_MASK32 = np.uint64((1 << 32) - 1)
_SHIFT32 = np.uint64(32)


# ----------------------------------------------------------------------
# Mersenne-prime arithmetic (the historical repro.sketch.hashing kernels)
# ----------------------------------------------------------------------
def mod_mersenne(x: np.ndarray) -> np.ndarray:
    """Reduce values ``< 2^64`` mod ``2^61 - 1`` without division."""
    x = np.asarray(x, dtype=np.uint64)
    x = (x & np.uint64(MERSENNE_P)) + (x >> np.uint64(61))
    # subtract p only where needed; never wraps, so 0-d inputs stay quiet
    return x - np.where(x >= MERSENNE_P, np.uint64(MERSENNE_P), np.uint64(0))


def mulmod(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Exact ``(a*b) mod 2^61-1`` for ``a, b < 2^61`` in pure uint64 ops.

    Splits both operands into 32-bit halves; the cross term that could
    overflow (``a_lo * b_lo`` with both near ``2^32``) is split once more
    into 16-bit pieces so every partial product stays below ``2^64``.
    Identity used: ``2^64 ≡ 2^3`` and ``2^61 ≡ 1 (mod 2^61-1)``.
    """
    a = np.asarray(a, dtype=np.uint64)
    b = np.asarray(b, dtype=np.uint64)
    MASK32 = np.uint64((1 << 32) - 1)
    a_hi = a >> np.uint64(32)  # < 2^29
    a_lo = a & MASK32  # < 2^32
    b_hi = b >> np.uint64(32)  # < 2^29
    b_lo = b & MASK32  # < 2^32
    t_hh = mod_mersenne((a_hi * b_hi) << np.uint64(3))  # (a_hi b_hi 2^64) mod p
    mid = mod_mersenne(a_hi * b_lo + a_lo * b_hi)  # each term < 2^61, sum < 2^62
    # mid * 2^32 mod p: 2^32 * 2^29 = 2^61 ≡ 1, so shift the top 29 bits down.
    mid_hi = mid >> np.uint64(29)
    mid_lo = (mid & np.uint64((1 << 29) - 1)) << np.uint64(32)
    t_mid = mod_mersenne(mid_hi + mid_lo)
    b_ll = b_lo & np.uint64(0xFFFF)
    b_lh = b_lo >> np.uint64(16)
    low = mod_mersenne(a_lo * b_ll)  # < 2^48
    low_hi = mod_mersenne(mod_mersenne(a_lo * b_lh) << np.uint64(16))
    t_ll = mod_mersenne(low + low_hi)
    return mod_mersenne(t_hh + t_mid + t_ll)


def powmod(base: np.ndarray | int, exp: np.ndarray | int) -> np.ndarray | int:
    """Vectorized ``base**exp mod 2^61-1`` by binary exponentiation."""
    scalar = np.isscalar(base) and np.isscalar(exp)
    b = mod_mersenne(np.atleast_1d(np.asarray(base, dtype=np.uint64)))
    e = np.atleast_1d(np.asarray(exp, dtype=np.uint64))
    b, e = np.broadcast_arrays(b, e)
    e = e.copy()
    b = b.copy()
    result = np.ones(e.shape, dtype=np.uint64)
    while e.any():
        odd = (e & np.uint64(1)).astype(bool)
        result = np.where(odd, mulmod(result, b), result)
        e >>= np.uint64(1)
        if e.any():
            b = mulmod(b, b)
    return int(result[0]) if scalar else result


def pow_from_table(table: np.ndarray, exps: np.ndarray) -> np.ndarray:
    """Evaluate ``z^e mod p`` from a repeated-squares table row.

    ``table`` is the 1-D table of a single base ``z``; exponents must
    satisfy ``e < 2^len(table)``.
    """
    e = np.asarray(exps, dtype=np.uint64).copy()
    result = np.ones(e.shape, dtype=np.uint64)
    j = 0
    while e.any():
        odd = (e & np.uint64(1)).astype(bool)
        if odd.any():
            result = np.where(odd, mulmod(result, table[j]), result)
        e >>= np.uint64(1)
        j += 1
    return result


def sum_mod_p(values: np.ndarray, axis: int = 0) -> np.ndarray:
    """Exact ``sum(values) mod 2^61-1`` along ``axis`` for values ``< p``."""
    v = np.asarray(values, dtype=np.uint64)
    mask32 = np.uint64((1 << 32) - 1)
    lo = (v & mask32).sum(axis=axis, dtype=np.uint64)
    hi = (v >> np.uint64(32)).sum(axis=axis, dtype=np.uint64)
    # hi * 2^32 + lo mod p, with both partial sums first reduced below p
    return mod_mersenne(
        mulmod(mod_mersenne(hi), np.uint64(1) << np.uint64(32)) + mod_mersenne(lo)
    )


# ----------------------------------------------------------------------
# Fused sketch ingestion (the historical SketchTensor.update_many body)
# ----------------------------------------------------------------------
def _poly_hash_level(coeffs: np.ndarray, xs_mod: np.ndarray, max_level: int) -> np.ndarray:
    """Geometric subsampling level of ``PolyHash.level``, coefficient form.

    Replicates ``PolyHash.__call__`` (Horner over reduced keys) followed
    by ``uniform`` and the ``floor(-log2(.))`` level map, op for op.
    """
    acc = np.full(xs_mod.shape, coeffs[0], dtype=np.uint64)
    for c in coeffs[1:]:
        acc = mod_mersenne(mulmod(acc, xs_mod) + c)
    u = np.asarray(acc, dtype=np.float64) / float(MERSENNE_P)
    with np.errstate(divide="ignore"):
        lv = np.floor(-np.log2(np.maximum(u, 2.0 ** -(max_level + 2)))).astype(np.int64)
    return np.clip(lv, 0, max_level)


def sketch_ingest(
    s0: np.ndarray,
    s1: np.ndarray,
    fp: np.ndarray,
    coeffs: np.ndarray,
    ztab: np.ndarray,
    rowsel: np.ndarray,
    slot_arr: np.ndarray,
    indices: np.ndarray,
    deltas: np.ndarray,
    dmod: np.ndarray,
) -> None:
    """Fused "hash batch -> level -> s0/s1/fingerprint update" kernel.

    In-place over the ``(slots, rows, repetitions, levels)`` cell
    tensors for the selected rows.  This is the scatter/cumsum path of
    ``SketchTensor.update_many`` + ``_update_fingerprints``.
    """
    slots, rows, reps, levels = s0.shape
    weighted = deltas * indices
    xs_mod = mod_mersenne(np.asarray(indices, dtype=np.uint64))
    for ri in (int(r) for r in rowsel):
        for rep in range(reps):
            lv = _poly_hash_level(coeffs[ri, rep], xs_mod, levels - 1)
            # s0/s1: scatter at the exact level, then suffix-sum so an
            # index at level lv contributes to every cell 0..lv
            ex0 = np.zeros((slots, levels), dtype=np.int64)
            ex1 = np.zeros((slots, levels), dtype=np.int64)
            np.add.at(ex0, (slot_arr, lv), deltas)
            np.add.at(ex1, (slot_arr, lv), weighted)
            s0[:, ri, rep, :] += np.cumsum(ex0[:, ::-1], axis=1)[:, ::-1]
            s1[:, ri, rep, :] += np.cumsum(ex1[:, ::-1], axis=1)[:, ::-1]
            # fingerprints: per-level batches shrink geometrically; the
            # 32-bit split scatter cannot wrap before recombination
            mask = np.ones(len(indices), dtype=bool)
            for l in range(levels):
                if l > 0:
                    mask = lv >= l
                    if not mask.any():
                        break
                sl = slot_arr[mask]
                exps = (indices[mask] + 1).astype(np.uint64)
                zp = pow_from_table(ztab[ri, rep, l], exps)
                contrib = mulmod(dmod[mask], zp)
                lo = np.zeros(slots, dtype=np.uint64)
                hi = np.zeros(slots, dtype=np.uint64)
                np.add.at(lo, sl, contrib & _MASK32)
                np.add.at(hi, sl, contrib >> _SHIFT32)
                total = mod_mersenne(
                    mulmod(mod_mersenne(hi), np.uint64(1) << _SHIFT32)
                    + mod_mersenne(lo)
                )
                fp[:, ri, rep, l] = mod_mersenne(fp[:, ri, rep, l] + total)


def decode_planes(
    s0: np.ndarray,
    s1: np.ndarray,
    fp: np.ndarray,
    z: np.ndarray,
    universe: int,
) -> list[tuple[int, int] | None]:
    """Vectorized grid decode over a leading group axis.

    ``s0``/``s1``/``fp`` have shape ``(groups, repetitions, levels)``;
    ``z`` has shape ``(repetitions, levels)`` and is shared by every
    group.  Returns the first provably-1-sparse cell per group in the
    reference scan order (repetitions ascending, levels descending).
    """
    groups, reps, levels = s0.shape
    out: list[tuple[int, int] | None] = [None] * groups
    nz = s0 != 0
    if not nz.any():
        return out
    # candidate = exact division yields an in-universe index
    safe = np.where(nz, s0, 1)
    quot, rem = np.divmod(s1, safe)
    cand = nz & (rem == 0) & (quot >= 0) & (quot < universe)
    if not cand.any():
        return out
    g, r, l = np.nonzero(cand)
    qv = quot[g, r, l]
    s0v = s0[g, r, l]
    # fingerprint check: F == s0 * z^(index+1) mod p
    zz = np.broadcast_to(z, (groups, reps, levels))[g, r, l]
    expect = mulmod(
        (s0v % MERSENNE_P).astype(np.uint64),
        powmod(zz, (qv + 1).astype(np.uint64)),
    )
    ok = expect == fp[g, r, l]
    if not ok.any():
        return out
    g, r, l, qv, s0v = g[ok], r[ok], l[ok], qv[ok], s0v[ok]
    # reference scan order: repetition-major, level-descending
    priority = r * levels + (levels - 1 - l)
    order = np.lexsort((priority, g))
    gs = g[order]
    first = np.unique(gs, return_index=True)[1]
    for w in order[first].tolist():
        out[int(g[w])] = (int(qv[w]), int(s0v[w]))
    return out


# ----------------------------------------------------------------------
# Segment / scatter / gather primitives (batched solver)
# ----------------------------------------------------------------------
def seg_sum(values: np.ndarray, off: np.ndarray, idx=None) -> np.ndarray:
    """Per-segment sums with reference-exact (pairwise) rounding."""
    ids = range(len(off) - 1) if idx is None else idx
    return np.array([values[off[i] : off[i + 1]].sum() for i in ids])


def seg_min(values: np.ndarray, off: np.ndarray, idx=None) -> np.ndarray:
    """Per-segment minima (order-independent, safe to take per slice)."""
    ids = range(len(off) - 1) if idx is None else idx
    return np.array([values[off[i] : off[i + 1]].min() for i in ids])


def seg_max(values: np.ndarray, off: np.ndarray, idx=None) -> np.ndarray:
    """Per-segment maxima (order-independent)."""
    ids = range(len(off) - 1) if idx is None else idx
    return np.array([values[off[i] : off[i + 1]].max() for i in ids])


def gather_add2(buf: np.ndarray, idx_a: np.ndarray, idx_b: np.ndarray) -> np.ndarray:
    """``buf[idx_a] + buf[idx_b]`` (edge coverage gather)."""
    return buf[idx_a] + buf[idx_b]


def seg_ratio_min(cov: np.ndarray, wk: np.ndarray, off: np.ndarray, idx) -> np.ndarray:
    """Per-segment minima of ``cov / wk`` (the lambda_min reduction)."""
    ratios = cov / wk
    return np.array([ratios[off[i] : off[i + 1]].min() for i in idx])


def seg_ratio_max(cov: np.ndarray, wk: np.ndarray, off: np.ndarray, idx) -> np.ndarray:
    """Per-segment maxima of ``cov / wk`` (the effective-width bound)."""
    ratios = cov / wk
    return np.array([ratios[off[i] : off[i + 1]].max() for i in idx])


def dual_scatter(src: np.ndarray, dst: np.ndarray, vals: np.ndarray, size: int,
                 out: np.ndarray | None = None) -> np.ndarray:
    """Scatter-add ``vals`` at ``src`` then at ``dst`` into a fresh buffer.

    All src contributions accumulate first, then all dst, sequentially
    in element order -- the accumulation order of both ``np.add.at`` in
    ``_vertex_level_mass`` and ``np.bincount`` over the concatenation.

    ``out`` is an optional reusable scratch buffer of ``size`` float64
    entries; backends *may* write the result there instead of
    allocating (the native backend does -- zeroing a warm buffer beats
    faulting in a fresh one every inner tick).  The result is always
    the returned array; callers must not rely on ``out`` aliasing it.
    """
    del out  # the numpy reference keeps its allocation behavior
    return np.bincount(
        np.concatenate([src, dst]),
        weights=np.concatenate([vals, vals]),
        minlength=size,
    )


def index_scatter(idx: np.ndarray, vals: np.ndarray, size: int) -> np.ndarray:
    """Sequential scatter-add into a fresh buffer of ``size`` entries."""
    return np.bincount(idx, weights=vals, minlength=size)


def blend(x: np.ndarray, other: np.ndarray, sigmas: np.ndarray,
          vl_off: np.ndarray, vl_count: np.ndarray) -> None:
    """In-place covering blend ``x = (1 - sigma_i) x + sigma_i * other``."""
    del vl_off  # the numpy path broadcasts; the native path segments
    sig_vl = np.repeat(sigmas, vl_count)
    x *= 1.0 - sig_vl
    x += sig_vl * other


# ----------------------------------------------------------------------
# Inner-tick fused stages (exp stays a shared numpy call between halves)
# ----------------------------------------------------------------------
def tick_stored_shift(cov: np.ndarray, wk: np.ndarray, off: np.ndarray,
                      off_list: list[int], counts: np.ndarray,
                      alphas: np.ndarray) -> np.ndarray:
    """Corollary 6 pre-exp chain over the stored-edge layout.

    ``clip(alpha_i * (cov/wk - min_i(cov/wk)), 0, 60)`` with the
    per-instance minimum over each (non-empty) segment.
    """
    del off
    B = len(counts)
    ratios = cov / wk
    rmin = np.zeros(B)
    for s in range(B):
        lo, hi = off_list[s], off_list[s + 1]
        if hi > lo:
            rmin[s] = ratios[lo:hi].min()
    shifted = np.repeat(alphas, counts) * (ratios - np.repeat(rmin, counts))
    np.clip(shifted, 0.0, 60.0, out=shifted)
    return shifted


def tick_stored_post(e: np.ndarray, wk: np.ndarray, probs: np.ndarray,
                     off: np.ndarray, off_list: list[int]) -> tuple[np.ndarray, np.ndarray]:
    """Post-exp half: support values and per-instance support mass."""
    del off
    B = len(off_list) - 1
    u_stored = e / wk
    support_vals = u_stored / probs
    usc_all = support_vals * wk
    usc = np.zeros(B)
    for s in range(B):
        lo, hi = off_list[s], off_list[s + 1]
        if hi > lo:
            usc[s] = usc_all[lo:hi].sum()
    return support_vals, usc


def tick_pack_arg(x: np.ndarray, zload: np.ndarray | None, hik_idx: np.ndarray,
                  po3_hik: np.ndarray, alpha_p_hik: np.ndarray,
                  off: np.ndarray, off_list: list[int], counts: np.ndarray,
                  active: np.ndarray) -> np.ndarray:
    """Packing-multiplier pre-exp chain over the has_ik gather tables.

    ``alpha_p * (flat - fmax_i)`` with ``flat = (2 x (+ zload)) / po3``;
    ``fmax`` is taken only over instances flagged ``active`` (the numpy
    reference leaves 0.0 elsewhere).
    """
    del off
    B = len(counts)
    flat = 2.0 * x[hik_idx]
    if zload is not None:
        flat += zload[hik_idx]
    flat /= po3_hik
    fmax = np.zeros(B)
    for s in range(B):
        lo, hi = off_list[s], off_list[s + 1]
        if active[s] and hi > lo:
            fmax[s] = flat[lo:hi].max()
    return alpha_p_hik * (flat - np.repeat(fmax, counts))


def tick_pack_post(e: np.ndarray, po3_hik: np.ndarray, hik_idx: np.ndarray,
                   off: np.ndarray, off_list: list[int],
                   zeta: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Post-exp half: zeta scatter plus per-instance packing budget."""
    del off
    B = len(off_list) - 1
    zmul = e / po3_hik
    zeta.fill(0.0)
    zeta[hik_idx] = zmul
    qo_all = zmul * po3_hik
    qo = np.zeros(B)
    for s in range(B):
        lo, hi = off_list[s], off_list[s + 1]
        if hi > lo:
            qo[s] = qo_all[lo:hi].sum()
    return zmul, qo


# ----------------------------------------------------------------------
# Fused Algorithm 5 (steps 1-8) over the ragged batch layout
# ----------------------------------------------------------------------
def oracle_eval(batch, s: np.ndarray, us_mass: np.ndarray, zsum: np.ndarray,
                hik_idx: np.ndarray, hik_off: np.ndarray, hik_counts: np.ndarray,
                zmul: np.ndarray, sub: list[int], rho_b: np.ndarray,
                beta_b: np.ndarray, eps: float,
                scratch: OracleScratch) -> OracleEvalResult:
    """Steps 1-8 of Algorithm 5 for the instances in ``sub``.

    The historical body of ``BatchMicroContext.evaluate`` up to the
    vertex route, op for op (see that class for the parity rules); the
    caller handles the zero/vertex result assembly and the rare
    odd-set/witness tail from the returned buffers.
    """
    b = batch
    B = b.size
    gamma, gamma_v, route = scratch.gamma, scratch.gamma_v, scratch.route

    # Step 1: gamma per instance
    rho3_l = np.repeat(3.0 * rho_b, b.L)
    prod_l = b.wk_l * (us_mass - rho3_l * zsum)
    loff = b.l_off_list
    go: list[int] = []
    for i in sub:
        gamma[i] = prod_l[loff[i] : loff[i + 1]].sum()
        if gamma[i] <= 0.0:
            route[i] = 0
            # reference: (zeta[has_ik] * (2*0 + 0)[has_ik]).sum() == 0.0
            scratch.po[i] = 0.0
        else:
            go.append(i)
    if not go:
        return OracleEvalResult(
            False, gamma, gamma_v, route, scratch.k_star_row, scratch.net,
            None, scratch.po,
        )

    # Step 2: net, Pos, Delta(i, l).  Row scans and row sums run per
    # *run* of consecutive same-L instances (identical per-row rounding,
    # far fewer numpy calls than per-instance views).  ``zeta`` is zero
    # outside the has_ik cells and ``s - 2 rho * 0`` is bitwise ``s``,
    # so the dense subtraction reduces to a copy plus a scatter.
    net = scratch.net
    prefix, cs = scratch.prefix, scratch.cs
    rho2_hik = np.repeat(2.0 * rho_b, hik_counts)
    np.multiply(rho2_hik, zmul, out=rho2_hik)
    np.copyto(net, s)
    net[hik_idx] = s[hik_idx] - rho2_hik
    pos_net = np.maximum(net, 0.0, out=net)  # net is not reused below
    np.multiply(b.wk_vl, pos_net, out=prefix)
    row_tot = scratch.row_tot
    for lo, hi, rlo, rhi, L in b.vl_runs:
        wv = prefix[lo:hi].reshape(-1, L)
        np.cumsum(wv, axis=1, out=wv)  # in-place scan == out-of-place
        pv = pos_net[lo:hi].reshape(-1, L)
        pv.sum(axis=1, out=row_tot[rlo:rhi])
        np.cumsum(pv, axis=1, out=cs[lo:hi].reshape(-1, L))
    # suffix and delta reuse the cs buffer: suffix = tot - cs,
    # delta = prefix + wk * suffix
    delta = cs
    np.subtract(np.repeat(row_tot, b.row_len), cs, out=delta)
    np.multiply(b.wk_vl, delta, out=delta)
    np.add(prefix, delta, out=delta)

    # Step 3: k*_i as the last level exceeding the threshold
    gb = np.zeros(B, dtype=np.float64)
    for i in go:
        gb[i] = gamma[i] / beta_b[i]
    thresh = np.repeat(gb, b.vl_count)
    np.multiply(thresh, b.b_vl, out=thresh)
    np.multiply(thresh, b.wk_vl, out=thresh)
    exceeds = delta > thresh
    e_idx = np.where(exceeds, b.col_vl, np.int32(-1))
    scratch.k_star_row[:] = np.maximum.reduceat(e_idx, b.row_off[:-1])
    k_star_row = scratch.k_star_row

    # Step 4: Viol(V), Gamma(V) -- one global scan, split per instance
    viol_rows = np.flatnonzero(k_star_row >= 0)
    bounds = np.searchsorted(viol_rows, b.v_off)
    gathered = delta[b.row_off[viol_rows] + k_star_row[viol_rows]]
    vertex_set: list[int] = []
    for i in go:
        lo, hi = int(bounds[i]), int(bounds[i + 1])
        gv = float(gathered[lo:hi].sum()) if hi > lo else 0.0
        gamma_v[i] = gv
        if gv >= eps * float(gamma[i]) / 24.0:
            route[i] = 1
            vertex_set.append(i)
        else:
            route[i] = 2

    # Steps 5-8: vertex route (batched over the choosing instances)
    step_x = None
    if vertex_set:
        pos_mask = pos_net > 0.0
        ks_vl = np.repeat(k_star_row, b.row_len)
        viol_vl = ks_vl >= 0
        ks_clip = np.maximum(k_star_row, 0)
        wk_ks_row = b.wk_l[b.l_off[b.row_inst] + ks_clip]
        wk_ks_vl = np.repeat(wk_ks_row, b.row_len)
        gamma_arr = np.zeros(B, dtype=np.float64)
        gv_arr = np.ones(B, dtype=np.float64)
        for i in vertex_set:
            gamma_arr[i] = gamma[i]
            gv_arr[i] = gamma_v[i]
        wk_eff = np.where(b.col_vl <= ks_vl, b.wk_vl, wk_ks_vl)
        val = np.repeat(gamma_arr, b.vl_count)
        np.multiply(val, wk_eff, out=val)
        with np.errstate(divide="ignore", invalid="ignore"):
            np.divide(val, np.repeat(gv_arr, b.vl_count), out=val)
        mask = pos_mask & viol_vl
        # step values: val where masked, else 0 -- val is finite and
        # nonnegative, so the boolean multiply equals np.where
        np.multiply(val, mask, out=val)
        step_x = val
        # packing load of the z-free steps, one batched gather:
        # reference po_of computes (zeta[has_ik] * (2 x̃)[has_ik]).sum()
        po_flat = step_x[hik_idx]
        np.multiply(po_flat, 2.0, out=po_flat)
        np.multiply(po_flat, zmul, out=po_flat)
        for i in vertex_set:
            scratch.po[i] = po_flat[int(hik_off[i]) : int(hik_off[i + 1])].sum()

    return OracleEvalResult(
        True, gamma, gamma_v, route, k_star_row, pos_net, step_x, scratch.po
    )
