"""Compiled kernel layer for the sketch and solver hot loops.

Two interchangeable backends implement the same kernel set:

- ``numpy`` -- :mod:`repro.kernels.numpy_impl`, the historical code
  paths moved here verbatim; always available, bit-parity reference.
- ``native`` -- :mod:`repro.kernels.native`, C kernels compiled on
  demand with the system toolchain and loaded via ctypes.

The backend is selected once, at import time, from ``REPRO_KERNELS``:

- ``auto`` (default / unset): native if it builds and loads, else a
  clean numpy fallback (``backend_info()["fallback_reason"]`` says why).
- ``numpy``: force the reference backend.
- ``native``: require the compiled backend; raise with the build error
  if it cannot load (no silent fallback).

Consumers import the dispatched symbols from this package (one symbol
per call site: ``from repro.kernels import mulmod``); the registry in
:mod:`repro.kernels.registry` keeps both implementations addressable
for the parity batteries regardless of the selected backend.
"""

from __future__ import annotations

import os

from repro.kernels import numpy_impl as _numpy_impl
from repro.kernels.common import MERSENNE_P, OracleEvalResult, OracleScratch
from repro.kernels.registry import KERNEL_NAMES, KernelSpec, build_registry

__all__ = [
    "MERSENNE_P",
    "OracleEvalResult",
    "OracleScratch",
    "KernelSpec",
    "REGISTRY",
    "backend",
    "backend_info",
    "native_available",
    *KERNEL_NAMES,
]

_requested = (os.environ.get("REPRO_KERNELS") or "auto").strip().lower() or "auto"
if _requested not in ("auto", "numpy", "native"):
    raise ValueError(
        f"REPRO_KERNELS={_requested!r}: expected 'auto', 'numpy' or 'native'"
    )

_native_mod = None
_fallback_reason: str | None = None
if _requested in ("auto", "native"):
    try:
        from repro.kernels import native as _native_mod  # type: ignore[no-redef]
    except Exception as exc:
        if _requested == "native":
            raise RuntimeError(
                "REPRO_KERNELS=native requested but the compiled backend "
                f"failed to load: {exc}"
            ) from exc
        _native_mod = None
        _fallback_reason = f"{type(exc).__name__}: {exc}"

_impl = _native_mod if _native_mod is not None else _numpy_impl

REGISTRY: dict[str, KernelSpec] = build_registry(_native_mod)

# dispatched symbols -- one per registry entry, bound once at import
mod_mersenne = _impl.mod_mersenne
mulmod = _impl.mulmod
powmod = _impl.powmod
pow_from_table = _impl.pow_from_table
sum_mod_p = _impl.sum_mod_p
sketch_ingest = _impl.sketch_ingest
decode_planes = _impl.decode_planes
seg_sum = _impl.seg_sum
seg_min = _impl.seg_min
seg_max = _impl.seg_max
gather_add2 = _impl.gather_add2
seg_ratio_min = _impl.seg_ratio_min
seg_ratio_max = _impl.seg_ratio_max
dual_scatter = _impl.dual_scatter
index_scatter = _impl.index_scatter
blend = _impl.blend
tick_stored_shift = _impl.tick_stored_shift
tick_stored_post = _impl.tick_stored_post
tick_pack_arg = _impl.tick_pack_arg
tick_pack_post = _impl.tick_pack_post
oracle_eval = _impl.oracle_eval


def backend() -> str:
    """Name of the selected backend: ``"numpy"`` or ``"native"``."""
    return "native" if _native_mod is not None else "numpy"


def native_available() -> bool:
    """Whether the compiled backend loaded in this process."""
    return _native_mod is not None


def backend_info() -> dict:
    """Selection details: requested mode, chosen backend, fallback reason."""
    return {
        "requested": _requested,
        "backend": backend(),
        "fallback_reason": _fallback_reason,
    }
