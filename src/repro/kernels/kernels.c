/* Native kernels for the sketch and solver hot loops.
 *
 * Compiled on demand by repro/kernels/build.py with the system C
 * toolchain (`cc -O2 -ffp-contract=off -shared -fPIC`) and loaded via
 * ctypes; repro/kernels/numpy_impl.py holds the bit-parity reference
 * for every function here.
 *
 * Parity rules (see docs/kernels.md):
 *
 * - uint64 Mersenne arithmetic is exact, so any correct mod-p formula
 *   matches the numpy reference bit for bit; we use the 128-bit
 *   multiply + Mersenne fold.
 * - float kernels replicate numpy's exact evaluation order: elementwise
 *   chains keep the same op order, scans are sequential (numpy cumsum),
 *   and every reduction uses numpy's pairwise summation tree
 *   (`pw_sum`, blocksize 8/128), which is bitwise-identical to
 *   `ndarray.sum` on contiguous data.
 * - `exp` is NOT computed here: libm exp differs from numpy's SIMD exp
 *   in the last ulp on ~5% of inputs, so callers evaluate np.exp on the
 *   shared buffer between the `*_pre`/`*_post` halves of fused kernels.
 */

#include <math.h>
#include <stdint.h>
#include <string.h>

#define RKP ((uint64_t)0x1FFFFFFFFFFFFFFFULL) /* 2^61 - 1 */
#define RKPD ((double)RKP)

/* ------------------------------------------------------------------ */
/* Mersenne-prime arithmetic (exact)                                   */
/* ------------------------------------------------------------------ */

static inline uint64_t rk_modm(uint64_t x) {
    uint64_t r = (x & RKP) + (x >> 61);
    return (r >= RKP) ? r - RKP : r;
}

/* (a * b) mod p for a, b < 2^61: 128-bit product, Mersenne fold. */
static inline uint64_t rk_mulmod1(uint64_t a, uint64_t b) {
    unsigned __int128 x = (unsigned __int128)a * (unsigned __int128)b;
    uint64_t r = ((uint64_t)x & RKP) + (uint64_t)(x >> 61);
    return (r >= RKP) ? r - RKP : r;
}

static inline uint64_t rk_powmod1(uint64_t base, uint64_t e) {
    uint64_t b = rk_modm(base);
    uint64_t r = 1;
    while (e) {
        if (e & 1) r = rk_mulmod1(r, b);
        e >>= 1;
        if (e) b = rk_mulmod1(b, b);
    }
    return r;
}

void rk_mod_mersenne(const uint64_t *x, uint64_t *out, int64_t n) {
    for (int64_t i = 0; i < n; i++) out[i] = rk_modm(x[i]);
}

void rk_mulmod(const uint64_t *a, const uint64_t *b, uint64_t *out, int64_t n) {
    for (int64_t i = 0; i < n; i++) out[i] = rk_mulmod1(a[i], b[i]);
}

void rk_powmod(const uint64_t *base, const uint64_t *e, uint64_t *out, int64_t n) {
    for (int64_t i = 0; i < n; i++) out[i] = rk_powmod1(base[i], e[i]);
}

void rk_pow_from_table(const uint64_t *table, int64_t bits, const uint64_t *exps,
                       uint64_t *out, int64_t n) {
    for (int64_t i = 0; i < n; i++) {
        uint64_t e = exps[i], r = 1;
        int64_t j = 0;
        while (e && j < bits) {
            if (e & 1) r = rk_mulmod1(r, table[j]);
            e >>= 1;
            j++;
        }
        out[i] = r;
    }
}

/* sum mod p along axis 0 of a C-contiguous (k, rest) view; values < p,
 * k < 2^32 so the 32-bit split sums cannot wrap. */
void rk_sum_mod_p_axis0(const uint64_t *v, int64_t k, int64_t rest, uint64_t *out) {
    for (int64_t j = 0; j < rest; j++) {
        uint64_t lo = 0, hi = 0;
        for (int64_t i = 0; i < k; i++) {
            uint64_t x = v[i * rest + j];
            lo += x & 0xFFFFFFFFULL;
            hi += x >> 32;
        }
        out[j] = rk_modm(rk_mulmod1(rk_modm(hi), 1ULL << 32) + rk_modm(lo));
    }
}

/* ------------------------------------------------------------------ */
/* Fused sketch ingestion                                              */
/* ------------------------------------------------------------------ */

/* Geometric subsampling level: floor(-log2(max(u, 2^-(ml+2)))) clipped
 * to [0, ml], computed exactly via frexp (u = m * 2^e, m in [0.5, 1)).
 * Bit-identical to the numpy -log2 path (pinned by the parity tests,
 * including the adversarial hash values straddling level boundaries). */
static inline int64_t rk_level(double u, int64_t max_level) {
    double lo = ldexp(1.0, (int)(-(max_level + 2)));
    if (u < lo) u = lo;
    int e;
    double m = frexp(u, &e);
    int64_t lv = (m == 0.5) ? (int64_t)(1 - e) : (int64_t)(-e);
    if (lv < 0) lv = 0;
    if (lv > max_level) lv = max_level;
    return lv;
}

void rk_sketch_ingest(int64_t *s0, int64_t *s1, uint64_t *fp,
                      int64_t slots, int64_t rows, int64_t reps, int64_t levels,
                      const uint64_t *coeffs, int64_t kdeg,
                      const uint64_t *ztab, int64_t zbits,
                      const int64_t *rowsel, int64_t nrows,
                      const int64_t *slot_arr, const int64_t *indices,
                      const int64_t *deltas, const uint64_t *dmod, int64_t nupd) {
    (void)slots;
    for (int64_t rr = 0; rr < nrows; rr++) {
        int64_t ri = rowsel[rr];
        for (int64_t rep = 0; rep < reps; rep++) {
            const uint64_t *cf = coeffs + (ri * reps + rep) * kdeg;
            const uint64_t *zt = ztab + (ri * reps + rep) * levels * zbits;
            for (int64_t u = 0; u < nupd; u++) {
                uint64_t x = rk_modm((uint64_t)indices[u]);
                uint64_t h = cf[0];
                for (int64_t t = 1; t < kdeg; t++)
                    h = rk_modm(rk_mulmod1(h, x) + cf[t]);
                int64_t lv = rk_level((double)h / RKPD, levels - 1);
                uint64_t d = (uint64_t)deltas[u];
                uint64_t w = d * (uint64_t)indices[u]; /* int64 wrap semantics */
                uint64_t e0 = (uint64_t)(indices[u] + 1);
                int64_t base = ((slot_arr[u] * rows + ri) * reps + rep) * levels;
                for (int64_t l = 0; l <= lv; l++) {
                    int64_t c = base + l;
                    s0[c] = (int64_t)((uint64_t)s0[c] + d);
                    s1[c] = (int64_t)((uint64_t)s1[c] + w);
                    const uint64_t *ztl = zt + l * zbits;
                    uint64_t zp = 1, e = e0;
                    int64_t j = 0;
                    while (e && j < zbits) {
                        if (e & 1) zp = rk_mulmod1(zp, ztl[j]);
                        e >>= 1;
                        j++;
                    }
                    fp[c] = rk_modm(fp[c] + rk_mulmod1(dmod[u], zp));
                }
            }
        }
    }
}

/* ------------------------------------------------------------------ */
/* Fused sampler decode                                                */
/* ------------------------------------------------------------------ */

void rk_decode_planes(const int64_t *s0, const int64_t *s1, const uint64_t *fp,
                      const uint64_t *z, int64_t groups, int64_t reps,
                      int64_t levels, int64_t universe,
                      int64_t *out_idx, int64_t *out_val) {
    for (int64_t g = 0; g < groups; g++) {
        out_idx[g] = -1;
        out_val[g] = 0;
        /* reference scan order: repetition-major, level-descending */
        for (int64_t r = 0; r < reps && out_idx[g] < 0; r++) {
            for (int64_t l = levels - 1; l >= 0; l--) {
                int64_t c = (g * reps + r) * levels + l;
                int64_t s0v = s0[c];
                if (s0v == 0) continue;
                /* python floor division semantics (np.divmod) */
                int64_t q = s1[c] / s0v, rem = s1[c] % s0v;
                if (rem != 0 && ((rem < 0) != (s0v < 0))) { q -= 1; rem += s0v; }
                if (rem != 0 || q < 0 || q >= universe) continue;
                int64_t sm = s0v % (int64_t)RKP;
                if (sm < 0) sm += (int64_t)RKP;
                uint64_t expect =
                    rk_mulmod1((uint64_t)sm, rk_powmod1(z[r * levels + l], (uint64_t)(q + 1)));
                if (expect == fp[c]) {
                    out_idx[g] = q;
                    out_val[g] = s0v;
                    break;
                }
            }
        }
    }
}

/* ------------------------------------------------------------------ */
/* numpy-compatible pairwise summation (bitwise ndarray.sum)           */
/* ------------------------------------------------------------------ */

static double pw_sum(const double *a, int64_t n) {
    if (n < 8) {
        double res = 0.0;
        for (int64_t i = 0; i < n; i++) res += a[i];
        return res;
    }
    if (n <= 128) {
        double r0 = a[0], r1 = a[1], r2 = a[2], r3 = a[3];
        double r4 = a[4], r5 = a[5], r6 = a[6], r7 = a[7];
        int64_t i;
        for (i = 8; i < n - (n % 8); i += 8) {
            r0 += a[i + 0];
            r1 += a[i + 1];
            r2 += a[i + 2];
            r3 += a[i + 3];
            r4 += a[i + 4];
            r5 += a[i + 5];
            r6 += a[i + 6];
            r7 += a[i + 7];
        }
        double res = ((r0 + r1) + (r2 + r3)) + ((r4 + r5) + (r6 + r7));
        for (; i < n; i++) res += a[i];
        return res;
    }
    int64_t n2 = n / 2;
    n2 -= n2 % 8;
    return pw_sum(a, n2) + pw_sum(a + n2, n - n2);
}

void rk_pairwise_sum(const double *a, const int64_t *off, int64_t nseg, double *out) {
    for (int64_t s = 0; s < nseg; s++) out[s] = pw_sum(a + off[s], off[s + 1] - off[s]);
}

/* ------------------------------------------------------------------ */
/* Segment / scatter / gather primitives                               */
/* ------------------------------------------------------------------ */

void rk_gather_add2(const double *buf, const int64_t *ia, const int64_t *ib,
                    double *out, int64_t n) {
    for (int64_t i = 0; i < n; i++) out[i] = buf[ia[i]] + buf[ib[i]];
}

void rk_seg_sum(const double *v, const int64_t *off, const int64_t *idx,
                int64_t nidx, double *out) {
    for (int64_t t = 0; t < nidx; t++) {
        int64_t s = idx[t];
        out[t] = pw_sum(v + off[s], off[s + 1] - off[s]);
    }
}

void rk_seg_minmax(const double *v, const int64_t *off, const int64_t *idx,
                   int64_t nidx, int64_t ismax, double *out) {
    for (int64_t t = 0; t < nidx; t++) {
        int64_t s = idx[t];
        double m = v[off[s]];
        for (int64_t j = off[s] + 1; j < off[s + 1]; j++) {
            double x = v[j];
            if (ismax ? (x > m) : (x < m)) m = x;
        }
        out[t] = m;
    }
}

/* per-segment min/max of cov/wk; each element's ratio is the exact
 * IEEE quotient, so dividing only the consulted segments matches the
 * full-buffer numpy division element for element. */
void rk_seg_ratio_minmax(const double *cov, const double *wk, const int64_t *off,
                         const int64_t *idx, int64_t nidx, int64_t ismax,
                         double *out) {
    for (int64_t t = 0; t < nidx; t++) {
        int64_t s = idx[t];
        double m = cov[off[s]] / wk[off[s]];
        for (int64_t j = off[s] + 1; j < off[s + 1]; j++) {
            double x = cov[j] / wk[j];
            if (ismax ? (x > m) : (x < m)) m = x;
        }
        out[t] = m;
    }
}

/* out[src[t]] += w[t] for all t, then the same over dst: the exact
 * accumulation order of np.bincount on the concatenated index array. */
void rk_dual_scatter(double *out, const int64_t *src, const int64_t *dst,
                     const double *w, int64_t n) {
    for (int64_t t = 0; t < n; t++) out[src[t]] += w[t];
    for (int64_t t = 0; t < n; t++) out[dst[t]] += w[t];
}

void rk_index_scatter(double *out, const int64_t *idx, const double *w, int64_t n) {
    for (int64_t t = 0; t < n; t++) out[idx[t]] += w[t];
}

/* x = x * (1 - sigma_i) + sigma_i * other, per instance segment. */
void rk_blend(double *x, const double *other, const double *sig,
              const int64_t *vl_off, int64_t B) {
    for (int64_t i = 0; i < B; i++) {
        double s = sig[i], t = 1.0 - s;
        for (int64_t j = vl_off[i]; j < vl_off[i + 1]; j++)
            x[j] = x[j] * t + s * other[j];
    }
}

/* ------------------------------------------------------------------ */
/* Inner-tick fused stages (exp stays in numpy between pre and post)   */
/* ------------------------------------------------------------------ */

/* shifted = clip(alpha_i * (cov/wk - min_i(cov/wk)), 0, 60) */
void rk_tick_stored_shift(const double *cov, const double *wk, const int64_t *off,
                          int64_t B, const double *alphas, double *shifted) {
    for (int64_t i = 0; i < B; i++) {
        int64_t lo = off[i], hi = off[i + 1];
        if (hi <= lo) continue;
        double rmin = cov[lo] / wk[lo];
        for (int64_t j = lo; j < hi; j++) {
            double r = cov[j] / wk[j];
            shifted[j] = r;
            if (r < rmin) rmin = r;
        }
        double a = alphas[i];
        for (int64_t j = lo; j < hi; j++) {
            double t = a * (shifted[j] - rmin);
            if (t < 0.0) t = 0.0;
            if (t > 60.0) t = 60.0;
            shifted[j] = t;
        }
    }
}

/* support_vals = (e/wk)/probs; usc_i = pairwise-sum(support_vals*wk) */
void rk_tick_stored_post(const double *e, const double *wk, const double *probs,
                         const int64_t *off, int64_t B, double *support_vals,
                         double *scratch, double *usc) {
    for (int64_t i = 0; i < B; i++) {
        int64_t lo = off[i], hi = off[i + 1];
        for (int64_t j = lo; j < hi; j++) {
            double u = e[j] / wk[j];
            double sv = u / probs[j];
            support_vals[j] = sv;
            scratch[j] = sv * wk[j];
        }
        usc[i] = pw_sum(scratch + lo, hi - lo);
    }
}

/* arg = alpha_p * ((2x[g] (+ zload[g])) / po3 - max_i(...)), max only
 * for flagged instances (numpy leaves fmax = 0 elsewhere). */
void rk_tick_pack_arg(const double *x, const double *zload, int64_t any_z,
                      const int64_t *hik_idx, const double *po3,
                      const double *alpha_p, const int64_t *off, int64_t B,
                      const uint8_t *active, double *arg) {
    for (int64_t i = 0; i < B; i++) {
        int64_t lo = off[i], hi = off[i + 1];
        if (hi <= lo) continue;
        double fmax = 0.0;
        for (int64_t t = lo; t < hi; t++) {
            double f = 2.0 * x[hik_idx[t]];
            if (any_z) f += zload[hik_idx[t]];
            f /= po3[t];
            arg[t] = f;
            if (active[i] && (t == lo || f > fmax)) fmax = f;
        }
        for (int64_t t = lo; t < hi; t++) arg[t] = alpha_p[t] * (arg[t] - fmax);
    }
}

/* zmul = e/po3; zeta.fill(0); zeta[hik] = zmul; qo_i = pw(zmul*po3) */
void rk_tick_pack_post(const double *e, const double *po3, const int64_t *hik_idx,
                       const int64_t *off, int64_t B, double *zeta, int64_t nvl,
                       double *zmul, double *scratch, double *qo) {
    memset(zeta, 0, (size_t)nvl * sizeof(double));
    for (int64_t i = 0; i < B; i++) {
        int64_t lo = off[i], hi = off[i + 1];
        for (int64_t t = lo; t < hi; t++) {
            double zm = e[t] / po3[t];
            zmul[t] = zm;
            zeta[hik_idx[t]] = zm;
            scratch[t] = zm * po3[t];
        }
        qo[i] = pw_sum(scratch + lo, hi - lo);
    }
}

/* ------------------------------------------------------------------ */
/* Fused Algorithm 5 (steps 1-8) over the ragged batch layout          */
/* ------------------------------------------------------------------ */

/* Returns flags: bit 0 = some instance passed the gamma > 0 gate,
 * bit 1 = some instance took the vertex route.  Outputs follow the
 * full-buffer semantics of the numpy reference: steps 2-3 buffers
 * (pos_net, delta->k_star) are written for every instance (inactive
 * ones see rho = 0), step 5-8 buffers only when a vertex route fires.
 */
int64_t rk_oracle_eval(
    int64_t B, const int64_t *l_off, const int64_t *vl_off, const int64_t *v_off,
    const int64_t *row_off, const int64_t *row_len,
    const double *wk_l, const double *wk_vl, const double *b_vl,
    const int32_t *col_vl,
    const double *us_mass, const double *zsum, const double *s,
    const int64_t *hik_idx, const int64_t *hik_off, const double *zmul,
    const uint8_t *active, const double *rho, const double *beta, double eps,
    double *prefix, double *cs, double *tmp_l, double *gath, double *pobuf,
    uint8_t *goflag,
    double *gamma, double *gamma_v, int64_t *k_star_row, double *pos_net,
    uint8_t *route, double *step_x, double *po) {
    int64_t any_go = 0, any_vertex = 0;

    /* Step 1: gamma_i = pw(wk_l * (us_mass - 3 rho zsum)) */
    for (int64_t i = 0; i < B; i++) {
        goflag[i] = 0;
        if (!active[i]) continue;
        double r3 = 3.0 * rho[i];
        int64_t lo = l_off[i], hi = l_off[i + 1];
        for (int64_t j = lo; j < hi; j++) {
            double t = r3 * zsum[j];
            t = us_mass[j] - t;
            tmp_l[j - lo] = wk_l[j] * t;
        }
        gamma[i] = pw_sum(tmp_l, hi - lo);
        if (gamma[i] <= 0.0) {
            route[i] = 0;
            po[i] = 0.0;
        } else {
            goflag[i] = 1;
            any_go = 1;
        }
    }
    if (!any_go) return 0;

    /* Steps 2-3 for every instance (full-buffer numpy semantics). */
    for (int64_t i = 0; i < B; i++) {
        double r2 = 2.0 * rho[i];
        int64_t vlo = vl_off[i], vhi = vl_off[i + 1];
        for (int64_t j = vlo; j < vhi; j++) pos_net[j] = s[j];
        for (int64_t t = hik_off[i]; t < hik_off[i + 1]; t++) {
            int64_t j = hik_idx[t];
            pos_net[j] = s[j] - r2 * zmul[t];
        }
        for (int64_t j = vlo; j < vhi; j++) {
            double v = pos_net[j];
            v = (v > 0.0) ? v : 0.0;
            pos_net[j] = v;
            prefix[j] = wk_vl[j] * v;
        }
        double gb = goflag[i] ? gamma[i] / beta[i] : 0.0;
        for (int64_t r = v_off[i]; r < v_off[i + 1]; r++) {
            int64_t base = row_off[r], L = row_len[r];
            /* sequential scans == np.cumsum */
            double acc = prefix[base];
            for (int64_t q = 1; q < L; q++) {
                acc += prefix[base + q];
                prefix[base + q] = acc;
            }
            double row_tot = pw_sum(pos_net + base, L);
            acc = pos_net[base];
            cs[base] = acc;
            for (int64_t q = 1; q < L; q++) {
                acc += pos_net[base + q];
                cs[base + q] = acc;
            }
            int64_t ks = -1;
            for (int64_t q = 0; q < L; q++) {
                int64_t j = base + q;
                double d = row_tot - cs[j];
                d = wk_vl[j] * d;
                d = prefix[j] + d; /* delta(i, l) */
                cs[j] = d;
                double th = gb * b_vl[j];
                th *= wk_vl[j];
                if (d > th) ks = (int64_t)col_vl[j];
            }
            k_star_row[r] = ks;
        }
    }

    /* Step 4 + route classification for the go instances. */
    for (int64_t i = 0; i < B; i++) {
        if (!goflag[i]) continue;
        int64_t cnt = 0;
        for (int64_t r = v_off[i]; r < v_off[i + 1]; r++)
            if (k_star_row[r] >= 0) gath[cnt++] = cs[row_off[r] + k_star_row[r]];
        double gv = (cnt > 0) ? pw_sum(gath, cnt) : 0.0;
        gamma_v[i] = gv;
        double thr = eps * gamma[i];
        thr /= 24.0;
        if (gv >= thr) {
            route[i] = 1;
            any_vertex = 1;
        } else {
            route[i] = 2;
        }
    }
    if (!any_vertex) return 1;

    /* Steps 5-8: vertex route; non-vertex segments zero (numpy writes
     * +0.0 there via the masked multiply). */
    for (int64_t i = 0; i < B; i++) {
        if (!(goflag[i] && route[i] == 1)) {
            for (int64_t j = vl_off[i]; j < vl_off[i + 1]; j++) step_x[j] = 0.0;
            continue;
        }
        double g = gamma[i], gv = gamma_v[i];
        for (int64_t r = v_off[i]; r < v_off[i + 1]; r++) {
            int64_t base = row_off[r], L = row_len[r];
            int64_t ks = k_star_row[r];
            double wk_ks = wk_l[l_off[i] + ((ks > 0) ? ks : 0)];
            for (int64_t q = 0; q < L; q++) {
                int64_t j = base + q;
                if (ks >= 0 && pos_net[j] > 0.0) {
                    double wke = ((int64_t)col_vl[j] <= ks) ? wk_vl[j] : wk_ks;
                    double v = g * wke;
                    v /= gv;
                    step_x[j] = v;
                } else {
                    step_x[j] = 0.0;
                }
            }
        }
        int64_t cnt = 0;
        for (int64_t t = hik_off[i]; t < hik_off[i + 1]; t++) {
            double pf = step_x[hik_idx[t]];
            pf *= 2.0;
            pf *= zmul[t];
            pobuf[cnt++] = pf;
        }
        po[i] = pw_sum(pobuf, cnt);
    }
    return 3;
}
