"""Connectivity indices for importance sampling (Nagamochi-Ibaraki).

Cut sparsification samples each edge with probability inversely
proportional to a *connectivity estimate* for that edge (Benczur-Karger
[8]; general framework Fung et al. [18]).  The estimate we use is the
Nagamochi-Ibaraki (NI) *forest index*: scan the edges, maintaining
disjoint forests ``F_1, F_2, ...``; each edge is placed in the first
forest in which its endpoints are not yet connected.  An edge whose
index is ``j`` crosses a cut of value ``>= j`` within the scanned prefix,
so ``1/j`` is a valid (up to constants) sampling rate.

The same primitive implements the inner loop of the paper's streaming
Algorithm 6, which runs one forest decomposition per geometric
subsampling level.
"""

from __future__ import annotations

import numpy as np

from repro.sparsify.union_find import UnionFind

__all__ = ["ni_forest_index", "NIForestDecomposition"]


class NIForestDecomposition:
    """Incremental Nagamochi-Ibaraki forest decomposition.

    Maintains up to ``k`` union-find structures.  :meth:`place` returns
    the 1-based forest index of an edge, or ``k + 1`` if its endpoints
    are already connected in all ``k`` forests (the edge is "k-heavy" and
    a sparsifier need not store it).
    """

    def __init__(self, n: int, k: int):
        if k < 1:
            raise ValueError("need at least one forest")
        self.n = int(n)
        self.k = int(k)
        self.forests = [UnionFind(n) for _ in range(k)]

    def place(self, u: int, v: int) -> int:
        """Insert edge ``(u, v)``; return its forest index (1-based)."""
        for j, uf in enumerate(self.forests):
            if not uf.connected(u, v):
                uf.union(u, v)
                return j + 1
        return self.k + 1

    def separated_in_last(self, u: int, v: int) -> bool:
        """True iff the k-th forest still separates u and v.

        Used by Algorithm 6's final extraction step ("smallest i such
        that UF^i_k.find(u) != UF^i_k.find(v)").
        """
        return not self.forests[-1].connected(u, v)


def ni_forest_index(
    n: int, src: np.ndarray, dst: np.ndarray, k: int | None = None
) -> np.ndarray:
    """NI forest index for every edge, scanned in the given order.

    Parameters
    ----------
    k:
        Cap on the number of forests; edges beyond it get index ``k+1``.
        ``None`` means effectively unbounded (``n`` forests -- every edge
        gets its true index).

    Returns
    -------
    ``int64`` array of 1-based forest indices, one per edge.
    """
    src = np.asarray(src, dtype=np.int64)
    dst = np.asarray(dst, dtype=np.int64)
    if k is None:
        k = n  # an NI index can never exceed n-1
    decomp = NIForestDecomposition(n, k)
    out = np.empty(len(src), dtype=np.int64)
    for e in range(len(src)):
        out[e] = decomp.place(int(src[e]), int(dst[e]))
    return out
