"""Connectivity indices for importance sampling (Nagamochi-Ibaraki).

Cut sparsification samples each edge with probability inversely
proportional to a *connectivity estimate* for that edge (Benczur-Karger
[8]; general framework Fung et al. [18]).  The estimate we use is the
Nagamochi-Ibaraki (NI) *forest index*: scan the edges, maintaining
disjoint forests ``F_1, F_2, ...``; each edge is placed in the first
forest in which its endpoints are not yet connected.  An edge whose
index is ``j`` crosses a cut of value ``>= j`` within the scanned prefix,
so ``1/j`` is a valid (up to constants) sampling rate.

The same primitive implements the inner loop of the paper's streaming
Algorithm 6, which runs one forest decomposition per geometric
subsampling level.
"""

from __future__ import annotations

import numpy as np

__all__ = ["ni_forest_index", "NIForestDecomposition"]


class NIForestDecomposition:
    """Incremental Nagamochi-Ibaraki forest decomposition.

    Maintains up to ``k`` disjoint-set forests.  :meth:`place` returns
    the 1-based forest index of an edge, or ``k + 1`` if its endpoints
    are already connected in all ``k`` forests (the edge is "k-heavy" and
    a sparsifier need not store it).

    Forests are materialized lazily: forest ``j`` only exists once some
    edge was connected in forests ``1..j-1``.  An untouched forest
    separates every pair, so laziness is observationally equivalent to
    the eager construction (only the *partition* each forest induces is
    ever queried) while avoiding the ``k * n`` upfront allocation that
    dominated streaming-sparsifier construction at large ``k``.  The
    parent tables are plain Python lists with path-halving finds -- the
    placement loop is the hot path of every chain build, and per-element
    numpy indexing costs ~10x a list access.  Fresh forests are copies
    of one shared identity template, so every table aliases the same
    pool of small-int objects (8 bytes/slot instead of a private int
    object per slot).

    Placement binary-searches the forests instead of scanning them.
    First-fit NI forests satisfy the *nesting invariant*: at all times,
    connected in ``F_{j+1}`` implies connected in ``F_j`` (inductively:
    an edge lands in ``F_{j+1}`` only when its endpoints are already
    connected in ``F_1..F_j``, so a union in ``F_{j+1}`` merges
    components that every earlier forest already merged).  Hence
    "separated in ``F_j``" is monotone in ``j`` and the first separating
    forest is a bisection, turning the O(index) scan into O(log k)
    find-pairs per edge.  The resulting indices -- and the union
    history of every forest -- are identical to the linear scan's;
    path-halving state may differ, but compression never changes roots,
    so the structures are observationally equivalent.
    """

    def __init__(self, n: int, k: int):
        if k < 1:
            raise ValueError("need at least one forest")
        self.n = int(n)
        self.k = int(k)
        self._parents: list[list[int]] = []
        self._template: list[int] | None = None

    def _fresh_parent(self) -> list[int]:
        if self._template is None:
            self._template = list(range(self.n))
        return self._template.copy()

    @staticmethod
    def _find(parent: list[int], x: int) -> int:
        while parent[x] != x:
            parent[x] = parent[parent[x]]
            x = parent[x]
        return x

    def place(self, u: int, v: int) -> int:
        """Insert edge ``(u, v)``; return its forest index (1-based)."""
        u, v = int(u), int(v)
        if u == v:
            return self.k + 1  # a self-loop is connected everywhere
        find = self._find
        parents = self._parents
        nf = len(parents)
        # bisect for the first forest separating u and v (see class doc)
        lo, hi = 0, nf
        while lo < hi:
            mid = (lo + hi) // 2
            if find(parents[mid], u) == find(parents[mid], v):
                lo = mid + 1
            else:
                hi = mid
        if lo < nf:
            parent = parents[lo]
            parent[find(parent, u)] = find(parent, v)
            return lo + 1
        if nf < self.k:
            parent = self._fresh_parent()
            parents.append(parent)
            parent[u] = v
            return nf + 1
        return self.k + 1

    def place_many(self, src: np.ndarray, dst: np.ndarray) -> np.ndarray:
        """Insert a batch of edges in order; returns their forest indices."""
        out = np.empty(len(src), dtype=np.int64)
        for t, (u, v) in enumerate(
            zip(np.asarray(src).tolist(), np.asarray(dst).tolist())
        ):
            out[t] = self.place(u, v)
        return out

    def separated_in_last(self, u: int, v: int) -> bool:
        """True iff the k-th forest still separates u and v.

        Used by Algorithm 6's final extraction step ("smallest i such
        that UF^i_k.find(u) != UF^i_k.find(v)").
        """
        if len(self._parents) < self.k:
            return int(u) != int(v)  # the k-th forest is still untouched
        parent = self._parents[-1]
        return self._find(parent, int(u)) != self._find(parent, int(v))


def ni_forest_index(
    n: int, src: np.ndarray, dst: np.ndarray, k: int | None = None
) -> np.ndarray:
    """NI forest index for every edge, scanned in the given order.

    Parameters
    ----------
    k:
        Cap on the number of forests; edges beyond it get index ``k+1``.
        ``None`` means effectively unbounded (``n`` forests -- every edge
        gets its true index).

    Returns
    -------
    ``int64`` array of 1-based forest indices, one per edge.
    """
    src = np.asarray(src, dtype=np.int64)
    dst = np.asarray(dst, dtype=np.int64)
    if k is None:
        k = n  # an NI index can never exceed n-1
    return NIForestDecomposition(n, k).place_many(src, dst)
