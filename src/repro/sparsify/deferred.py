"""Deferred cut-sparsifiers (Definition 4, Lemmas 17-18).

The deferred-sparsifier problem: the true edge weights ``u`` are *not
known* at sampling time -- only promise values ``ς`` with
``ς_e / χ <= u_e <= ς_e χ``.  The data structure ``D`` must pick (and
store) its edges using only ``ς``; the exact ``u`` values of the stored
edges are revealed later, after which ``D`` outputs a (1 ± xi)
sparsifier for ``u``.

Lemma 17's construction: compute the sampling probability ``p'_e`` from
``ς`` (per weight class in ``[2^l, 2^{l+1})``), then inflate by ``O(χ²)``
and cap at 1.  Since ``u_e <= ς_e χ <= u_e χ²``, the inflated probability
dominates the probability the true weights would have required, so the
stored set stochastically contains a valid sparsifier support.  At
refinement time, stored edge ``e`` receives weight ``u_e / p_e``.

Why this matters: in the dual-primal matching loop, the multipliers ``u``
drift by a factor ``<= (1+eps)^t = γ`` over ``t`` deferred steps
(Theorem 3).  Sampling *once* with ``χ = γ`` therefore supports ``t``
sequential refinements -- "t simultaneous steps without further access
to data" (Figure 1, right panel).  :class:`DeferredSparsifierChain`
packages exactly that pattern.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.sparsify.cut_sparsifier import (
    EdgeSample,
    connectivity_sampling_probs,
    default_rho,
)
from repro.util.graph import Graph
from repro.util.instrumentation import ResourceLedger
from repro.util.rng import make_rng, spawn
from repro.util.validation import check_epsilon, require

__all__ = ["DeferredSparsifier", "DeferredSparsifierChain"]


@dataclass
class _StoredSample:
    edge_ids: np.ndarray
    probs: np.ndarray  # inflated sampling probability of each stored edge


class DeferredSparsifier:
    """Data structure ``D`` of Definition 4.

    Parameters
    ----------
    graph:
        Underlying graph (topology only is used at sampling time).
    promise:
        The ``ς`` values, one per edge (nonnegative; zero means the true
        weight is promised to be zero and the edge is never stored).
    chi:
        Promise slack χ >= 1; sampling probabilities are inflated by χ².
    xi:
        Target cut-approximation quality of the refined sparsifier.
    rho:
        Optional oversampling-rate override (default ``O(xi^-2 log^2 n)``).
    """

    def __init__(
        self,
        graph: Graph,
        promise: np.ndarray,
        chi: float,
        xi: float,
        seed: int | np.random.Generator | None = None,
        rho: float | None = None,
        ledger: ResourceLedger | None = None,
        base_probs: np.ndarray | None = None,
    ):
        rng = make_rng(seed)
        self.graph = graph
        self.chi = float(chi)
        require(self.chi >= 1.0, "promise slack chi must be >= 1")
        self.xi = check_epsilon(xi)
        promise = np.asarray(promise, dtype=np.float64)
        require(len(promise) == graph.m, "promise must cover every edge")
        require(bool(np.all(promise >= 0)), "promise values must be nonnegative")
        if base_probs is None:
            if rho is None:
                rho = default_rho(graph.n, xi)
            base_p = connectivity_sampling_probs(graph, promise, rho)
        else:
            # the chain precomputes the (deterministic) probabilities
            # once for all of its structures -- same values, one NI scan
            base_p = base_probs
        inflated = np.minimum(1.0, base_p * self.chi**2)
        coins = rng.random(graph.m)
        ids = np.flatnonzero(coins < inflated)
        self._stored = _StoredSample(edge_ids=ids, probs=inflated[ids])
        self._refined = False
        if ledger is not None:
            ledger.charge_space(2 * len(ids))

    # ------------------------------------------------------------------
    @property
    def stored_edge_ids(self) -> np.ndarray:
        """Indices (into the source graph) of the stored edges."""
        return self._stored.edge_ids

    @property
    def stored_probs(self) -> np.ndarray:
        """Inflated sampling probabilities of the stored edges.

        Exposed so callers doing *incremental* refinement (one multiplier
        re-evaluation per inner step) can divide by the probabilities
        directly instead of building a full-length vector each time.
        """
        return self._stored.probs

    def stored_count(self) -> int:
        return len(self._stored.edge_ids)

    def space_words(self) -> int:
        return 2 * self.stored_count()

    # ------------------------------------------------------------------
    def refine(self, u_exact: np.ndarray) -> EdgeSample:
        """Reveal exact weights and emit the (1±xi) sparsifier.

        ``u_exact`` is indexed over *all* edges of the source graph but
        only the stored entries are read -- matching Definition 4's
        "exact values of those stored entries are revealed".  Edges whose
        revealed weight is zero are dropped.

        Refinement is repeatable: the same ``D`` may be refined against
        several weight vectors (each within the χ promise), which is how
        the matching algorithm reuses one sampling round for many dual
        steps.
        """
        u_exact = np.asarray(u_exact, dtype=np.float64)
        require(len(u_exact) == self.graph.m, "u_exact must cover every edge")
        ids = self._stored.edge_ids
        probs = self._stored.probs
        u_stored = u_exact[ids]
        nz = u_stored > 0
        return EdgeSample(edge_ids=ids[nz], weights=u_stored[nz] / probs[nz])

    def refine_as_graph(self, u_exact: np.ndarray) -> Graph:
        """Convenience: refined sparsifier materialized as a Graph."""
        return self.refine(u_exact).as_graph(self.graph)


class DeferredSparsifierChain:
    """The ``ln γ`` deferred sparsifiers of one outer round (Algorithm 2/4).

    One chain = one *sampling round*: all ``t`` structures are built in
    parallel from the same promise vector (a single access to the data).
    They are then refined *sequentially*: structure ``q`` is refined with
    the multiplier vector produced after using structures ``1..q-1`` --
    the "use S_1..S_q to refine S_{q+1}" step of Algorithm 1.
    """

    def __init__(
        self,
        graph: Graph,
        promise: np.ndarray,
        gamma: float,
        xi: float,
        count: int,
        seed: int | np.random.Generator | None = None,
        rho: float | None = None,
        ledger: ResourceLedger | None = None,
    ):
        require(count >= 1, "chain needs at least one sparsifier")
        rng = make_rng(seed)
        children = spawn(rng, count)
        self.gamma = float(gamma)
        # All structures of a chain sample from the same promise vector,
        # so the (deterministic) connectivity probabilities are computed
        # once and shared; each structure still flips its own coins.
        base_p = connectivity_sampling_probs(
            graph,
            np.asarray(promise, dtype=np.float64),
            rho if rho is not None else default_rho(graph.n, check_epsilon(xi)),
        )
        self.sparsifiers = [
            DeferredSparsifier(
                graph,
                promise,
                chi=self.gamma,
                xi=xi,
                seed=children[q],
                rho=rho,
                ledger=ledger,
                base_probs=base_p,
            )
            for q in range(count)
        ]
        if ledger is not None:
            ledger.tick_sampling_round(
                f"deferred chain: {count} sparsifiers, gamma={self.gamma:.3g}"
            )
        self._cursor = 0

    def __len__(self) -> int:
        return len(self.sparsifiers)

    def __getitem__(self, q: int) -> DeferredSparsifier:
        return self.sparsifiers[q]

    def next(self) -> DeferredSparsifier | None:
        """Sequential access: the next not-yet-used structure, or None."""
        if self._cursor >= len(self.sparsifiers):
            return None
        d = self.sparsifiers[self._cursor]
        self._cursor += 1
        return d

    def union_edge_ids(self) -> np.ndarray:
        """Union of all stored edges (the offline-matching pool, step 5)."""
        if not self.sparsifiers:
            return np.empty(0, dtype=np.int64)
        return np.unique(np.concatenate([d.stored_edge_ids for d in self.sparsifiers]))

    def space_words(self) -> int:
        return sum(d.space_words() for d in self.sparsifiers)
