"""Cut sparsification: union-find, NI indices, streaming and deferred sparsifiers."""

from repro.sparsify.connectivity import NIForestDecomposition, ni_forest_index
from repro.sparsify.cut_sparsifier import (
    EdgeSample,
    StreamingCutSparsifier,
    connectivity_sampling_probs,
    default_rho,
    sparsify_by_connectivity,
)
from repro.sparsify.deferred import DeferredSparsifier, DeferredSparsifierChain
from repro.sparsify.union_find import UnionFind

__all__ = [
    "UnionFind",
    "NIForestDecomposition",
    "ni_forest_index",
    "EdgeSample",
    "default_rho",
    "connectivity_sampling_probs",
    "sparsify_by_connectivity",
    "StreamingCutSparsifier",
    "DeferredSparsifier",
    "DeferredSparsifierChain",
]
