"""Disjoint-set union (union-find) with union by rank and path compression.

Algorithm 6 of the paper maintains ``k = O(eps^-2 log^2 n)`` union-find
structures per subsampling level; this implementation keeps the per-find
cost near-constant (inverse Ackermann) and offers a vectorized
``find_many`` for bulk edge classification.
"""

from __future__ import annotations

import numpy as np

__all__ = ["UnionFind"]


class UnionFind:
    """Classic DSU over ``0..n-1``."""

    __slots__ = ("parent", "rank", "n_components")

    def __init__(self, n: int):
        self.parent = np.arange(n, dtype=np.int64)
        self.rank = np.zeros(n, dtype=np.int8)
        self.n_components = int(n)

    def find(self, x: int) -> int:
        """Root of ``x`` with full path compression."""
        parent = self.parent
        root = x
        while parent[root] != root:
            root = parent[root]
        while parent[x] != root:
            parent[x], x = root, parent[x]
        return int(root)

    def union(self, a: int, b: int) -> bool:
        """Merge the sets of ``a`` and ``b``; returns True if they were distinct."""
        ra, rb = self.find(a), self.find(b)
        if ra == rb:
            return False
        rank = self.rank
        if rank[ra] < rank[rb]:
            ra, rb = rb, ra
        self.parent[rb] = ra
        if rank[ra] == rank[rb]:
            rank[ra] += 1
        self.n_components -= 1
        return True

    def connected(self, a: int, b: int) -> bool:
        return self.find(a) == self.find(b)

    def find_many(self, xs: np.ndarray) -> np.ndarray:
        """Roots of an array of elements (python loop with compression)."""
        return np.asarray([self.find(int(x)) for x in np.asarray(xs)], dtype=np.int64)

    def component_labels(self) -> np.ndarray:
        """Canonical component label for every element."""
        return self.find_many(np.arange(len(self.parent)))
