"""Cut sparsifiers: offline importance sampling and streaming Algorithm 6.

A *(1 ± xi)-cut-sparsifier* of a weighted graph ``G`` is a reweighted
subgraph ``H`` such that every cut of ``H`` is within ``(1 ± xi)`` of the
corresponding cut of ``G`` (Benczur-Karger [8]).  Two constructions are
provided:

* :func:`sparsify_by_connectivity` -- the offline workhorse: compute NI
  forest indices per geometric weight class, sample edge ``e`` with
  probability ``p_e = min(1, rho / index_e)``, keep it with weight
  ``w_e / p_e``.  ``rho = O(xi^-2 log^2 n)`` gives the guarantee; the
  constant is configurable because the worst-case constant is far from
  what moderate instances need.

* :class:`StreamingCutSparsifier` -- the paper's Algorithm 6: geometric
  subsampling levels ``G_0 ⊇ G_1 ⊇ ...`` (edge survives to level ``i``
  with probability ``2^-i``, decided by a hash so membership is
  reproducible), ``k`` NI forests per level, single pass, and a final
  extraction that assigns each stored edge the level at which its
  endpoints first fail to be k-connected, rescaling the weight by the
  inverse sampling probability of that level.

Both constructions return an :class:`EdgeSample` -- edge ids into the
source graph plus sparsifier weights -- so downstream code can relate
sparsifier edges back to the input.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.sketch.hashing import PolyHash
from repro.sparsify.connectivity import NIForestDecomposition
from repro.util.graph import Graph, edge_key
from repro.util.rng import derive_seed, make_rng
from repro.util.validation import check_epsilon

__all__ = [
    "EdgeSample",
    "default_rho",
    "connectivity_sampling_probs",
    "sparsify_by_connectivity",
    "StreamingCutSparsifier",
]


@dataclass
class EdgeSample:
    """A reweighted subset of a graph's edges.

    ``edge_ids`` index into the source graph's edge arrays; ``weights``
    are the sparsifier weights (already rescaled by inverse sampling
    probability).
    """

    edge_ids: np.ndarray
    weights: np.ndarray

    def __len__(self) -> int:
        return len(self.edge_ids)

    def as_graph(self, graph: Graph) -> Graph:
        """Materialize the sample as a reweighted subgraph of ``graph``."""
        return graph.edge_subgraph(self.edge_ids, weights=self.weights)

    def space_words(self) -> int:
        return 2 * len(self.edge_ids)


def default_rho(n: int, xi: float, constant: float = 0.7) -> float:
    """Oversampling rate ``rho = C * xi^-2 * log^2 n``.

    The theory constant is large; ``constant`` defaults to a practical
    value validated by the E5 benchmark (cut error stays within xi on the
    tested families).
    """
    xi = check_epsilon(xi)
    return constant * (xi**-2) * max(1.0, np.log2(max(2, n))) ** 2


def _weight_classes(weights: np.ndarray) -> np.ndarray:
    """Geometric class index ``floor(log2 w)`` per edge (w > 0)."""
    return np.floor(np.log2(np.maximum(weights, 1e-300))).astype(np.int64)


def connectivity_sampling_probs(
    graph: Graph,
    weights: np.ndarray,
    rho: float,
) -> np.ndarray:
    """Per-edge sampling probabilities ``min(1, rho / NI-index)``.

    The NI index is computed per geometric weight class, scanning heavier
    classes first so a light edge "sees" the connectivity provided by
    heavier edges (the union of class sparsifiers remains a sparsifier;
    scanning heavy-to-light only sharpens the index).  Zero-weight edges
    get probability zero.
    """
    w = np.asarray(weights, dtype=np.float64)
    m = graph.m
    p = np.zeros(m, dtype=np.float64)
    positive = w > 0
    if not positive.any():
        return p
    classes = np.full(m, np.iinfo(np.int64).min, dtype=np.int64)
    classes[positive] = _weight_classes(w[positive])
    uniq = np.unique(classes[positive])[::-1]
    # One *incremental* forest decomposition shared across classes: the
    # NI construction is online (an edge's index depends only on the
    # edges scanned before it), so continuing one decomposition over the
    # heavy-to-light class sequence yields exactly the indices that
    # re-running it on each class's full prefix would -- without the
    # quadratic re-scan.
    decomp = NIForestDecomposition(graph.n, k=graph.n)
    for cls in uniq:
        in_cls = np.flatnonzero(classes == cls)
        cls_idx = decomp.place_many(graph.src[in_cls], graph.dst[in_cls])
        p[in_cls] = np.minimum(1.0, rho / cls_idx)
    return p


def sparsify_by_connectivity(
    graph: Graph,
    xi: float,
    seed: int | np.random.Generator | None = None,
    rho: float | None = None,
    weights: np.ndarray | None = None,
) -> EdgeSample:
    """Offline (1±xi) cut sparsifier via per-class NI indices.

    Parameters
    ----------
    weights:
        Optional override weights (e.g. dual multipliers ``u`` of the
        matching algorithm -- "this is not the edge weight in the basic
        matching problem", Section 1).  Defaults to the graph's weights.
    """
    rng = make_rng(seed)
    w = graph.weight if weights is None else np.asarray(weights, dtype=np.float64)
    if len(w) != graph.m:
        raise ValueError("weight override must cover every edge")
    if graph.m == 0:
        return EdgeSample(np.empty(0, dtype=np.int64), np.empty(0, dtype=np.float64))
    if rho is None:
        rho = default_rho(graph.n, xi)
    p = connectivity_sampling_probs(graph, w, rho)
    coins = rng.random(graph.m)
    keep = coins < p
    ids = np.flatnonzero(keep)
    return EdgeSample(edge_ids=ids, weights=w[ids] / p[ids])


class StreamingCutSparsifier:
    """Algorithm 6: single-pass cut sparsification via level subsampling.

    Usage::

        sp = StreamingCutSparsifier(n, xi, seed=0)
        for (u, v, w) in edge_stream:
            sp.insert(u, v, w)
        sample = sp.extract()     # EdgeSample over insertion order ids

    Level membership of an edge is decided by a pairwise hash of its key,
    so re-processing an edge is idempotent and membership is reproducible
    across machines (the MapReduce implementation relies on this).
    """

    def __init__(
        self,
        n: int,
        xi: float,
        seed: int | np.random.Generator | None = None,
        k: int | None = None,
        max_levels: int | None = None,
    ):
        rng = make_rng(seed)
        self.n = int(n)
        self.xi = check_epsilon(xi)
        # k = O(xi^-2 log^2 n) forests per level (Algorithm 6 step 2)
        if k is None:
            k = max(2, int(np.ceil(default_rho(n, xi))))
        self.k = int(k)
        if max_levels is None:
            max_levels = max(1, 2 * int(np.ceil(np.log2(max(2, n)))))
        self.levels = int(max_levels)
        self._level_hash = PolyHash(k=2, seed=derive_seed(rng))
        self._decomp = [NIForestDecomposition(n, self.k) for _ in range(self.levels)]
        # Stored edges live in insertion-ordered *chunks* of tight-dtype
        # columns (u/v int32, id int64, surv int8, w float64) instead of
        # per-edge Python objects in growing lists: ~17-25 bytes per
        # stored edge rather than hundreds.  The weight column of a
        # chunk is elided (None) when every kept weight is exactly 1.0
        # -- the streaming matching chain only ever inserts unit
        # weights, so its sparsifiers store no weight column at all.
        self._chunks: list[
            tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray | None]
        ] = []
        self._stored_total = 0
        self._count = 0

    def _survival_level(self, u: int, v: int) -> int:
        """Deepest level this edge belongs to (P[>= l] = 2^-l)."""
        key = int(edge_key(u, v, self.n))
        return int(self._level_hash.level(key, self.levels - 1))

    def _place_chunk(
        self, u: np.ndarray, v: np.ndarray, survs: np.ndarray
    ) -> np.ndarray:
        """Forest placement for a chunk; returns the kept mask.

        Placement stays sequential per edge because each union-find
        update depends on its predecessors.
        """
        kept = np.zeros(len(u), dtype=bool)
        decomp = self._decomp
        top = self.levels - 1
        k = self.k
        for t, (uu, vv, ss) in enumerate(
            zip(u.tolist(), v.tolist(), survs.tolist())
        ):
            for i in range(min(ss, top) + 1):
                if decomp[i].place(uu, vv) <= k:
                    kept[t] = True
        return kept

    def insert(self, u: int, v: int, w: float = 1.0) -> None:
        """Process one stream edge."""
        self.insert_many(
            np.asarray([u], dtype=np.int64), np.asarray([v], dtype=np.int64), w
        )

    def insert_many(
        self,
        u: np.ndarray,
        v: np.ndarray,
        w: np.ndarray | float = 1.0,
        ids: np.ndarray | None = None,
    ) -> None:
        """Process a chunk of stream edges in order.

        The (hash-based) survival levels of the whole chunk are computed
        with one vectorized evaluation; forest placement stays
        sequential.  Results are identical to repeated :meth:`insert`.

        ``ids`` optionally names the edges: the sample returned by
        :meth:`extract` indexes these instead of the default positional
        insertion counter.  This lets a caller that filters a stream
        (e.g. by promise class) recover original edge ids without an
        O(m) side table.
        """
        u = np.asarray(u, dtype=np.int64)
        v = np.asarray(v, dtype=np.int64)
        w = np.broadcast_to(np.asarray(w, dtype=np.float64), u.shape)
        if ids is None:
            eids = np.arange(self._count, self._count + len(u), dtype=np.int64)
        else:
            eids = np.asarray(ids, dtype=np.int64)
            if eids.shape != u.shape:
                raise ValueError("ids must match the chunk length")
        self._count += len(u)
        if len(u) == 0:
            return
        keys = edge_key(u, v, self.n)
        survs = np.atleast_1d(self._level_hash.level(keys, self.levels - 1))
        kept = self._place_chunk(u, v, survs)
        if not kept.any():
            return
        wk = w[kept]
        self._chunks.append(
            (
                u[kept].astype(np.int32),
                v[kept].astype(np.int32),
                eids[kept],
                survs[kept].astype(np.int8),
                None if np.all(wk == 1.0) else wk.copy(),
            )
        )
        self._stored_total += int(kept.sum())

    def insert_graph(self, graph: Graph) -> None:
        """Stream all edges of a graph (in storage order)."""
        self.insert_many(graph.src, graph.dst, graph.weight)

    def stored_count(self) -> int:
        return self._stored_total

    def space_words(self) -> int:
        """Stored edges + forest structures."""
        return 4 * self._stored_total + 2 * self.n * self.k * self.levels

    def extract(self) -> EdgeSample:
        """Final extraction (Algorithm 6 steps 10-15).

        For every stored edge, find the smallest level ``i'`` whose k-th
        forest separates its endpoints; include the edge iff it survived
        to level ``i'`` and rescale its weight by ``2^{i'}`` (the inverse
        of the level-``i'`` sampling probability).
        """
        ids: list[int] = []
        ws: list[float] = []
        for cu, cv, cid, csurv, cw in self._chunks:
            for t, (u, v, eid, surv) in enumerate(
                zip(cu.tolist(), cv.tolist(), cid.tolist(), csurv.tolist())
            ):
                i_prime = self.levels  # sentinel: k-connected everywhere
                for i in range(self.levels):
                    if self._decomp[i].separated_in_last(u, v):
                        i_prime = i
                        break
                if i_prime >= self.levels:
                    # endpoints k-connected at every level: the edge is
                    # heavy only if it never fails; include at the
                    # deepest level it survived (contributes with its
                    # raw weight at level 0 to stay conservative).
                    i_prime = 0
                if surv >= i_prime:
                    ids.append(eid)
                    w = 1.0 if cw is None else float(cw[t])
                    ws.append(w * (2.0**i_prime))
        return EdgeSample(
            edge_ids=np.asarray(ids, dtype=np.int64),
            weights=np.asarray(ws, dtype=np.float64),
        )
