"""Structured hard instances from (and inspired by) the paper.

* :func:`triangle_gadget` -- the Section 1 figure: a triangle with an
  attached heavy edge.  The bipartite relaxation overshoots the integral
  optimum; covering it with the naive LP2 blows the width up to
  ``O(1/eps)``, which is exactly what the layered relaxation LP5 fixes.
* :func:`odd_cycle_chain` -- disjoint odd cycles joined by light paths:
  rich in tight odd-set constraints, exercising the odd-set oracle.
* :func:`crown_graph` -- bipartite crowns where greedy matching is pulled
  toward a 1/2-approximation.
"""

from __future__ import annotations

import numpy as np

from repro.util.graph import Graph
from repro.util.rng import make_rng

__all__ = ["triangle_gadget", "odd_cycle_chain", "crown_graph", "barbell_odd"]


def triangle_gadget(eps: float = 0.1, heavy: float | None = None) -> Graph:
    """The paper's width example (Section 1, unnumbered figure).

    Vertices 0,1,2 form a unit triangle; vertex 3 hangs off vertex 0 via
    an edge of weight ``1/(10 eps)`` (the figure's ``1/(10ε)`` edge with
    unit triangle edges).  The bipartite LP value exceeds the integral
    optimum by ``~eps/2 * optimum``, so a (1-eps) approximation *must*
    use the triangle's odd-set constraint.
    """
    w_heavy = heavy if heavy is not None else 1.0 / (10.0 * eps)
    edges = np.asarray([[0, 1], [0, 2], [1, 2], [0, 3]])
    weights = np.asarray([1.0, 1.0, 1.0, w_heavy])
    return Graph.from_edges(4, edges, weights)


def odd_cycle_chain(
    n_cycles: int = 4,
    cycle_len: int = 5,
    link_weight: float = 0.1,
    seed: int | np.random.Generator | None = None,
) -> Graph:
    """Odd cycles of unit edges, consecutive cycles joined by a light edge.

    Each odd cycle of length ``2k+1`` has a tight odd-set constraint
    (max matching ``k``, fractional relaxation without odd sets
    ``k + 1/2``), so this family maximizes the integrality gap the
    odd-set machinery must close.
    """
    if cycle_len % 2 == 0:
        raise ValueError("cycle_len must be odd")
    edges: list[tuple[int, int]] = []
    weights: list[float] = []
    n = n_cycles * cycle_len
    for c in range(n_cycles):
        base = c * cycle_len
        for t in range(cycle_len):
            edges.append((base + t, base + (t + 1) % cycle_len))
            weights.append(1.0)
        if c > 0:
            edges.append(((c - 1) * cycle_len, base))
            weights.append(link_weight)
    return Graph.from_edges(n, np.asarray(edges), np.asarray(weights))


def crown_graph(k: int = 8, heavy: float = 1.0, light: float = 0.6) -> Graph:
    """Bipartite crown: greedy grabs the ``light``-uniform diagonal badly.

    Vertices ``0..k-1`` (left) and ``k..2k-1`` (right); perfect matching
    of weight ``heavy`` on pairs ``(i, k+i)``, plus distractor edges
    ``(i, k+(i+1) mod k)`` of weight ``light`` arranged so a weight-greedy
    scan ties and local structure matters.
    """
    edges: list[tuple[int, int]] = []
    weights: list[float] = []
    for i in range(k):
        edges.append((i, k + i))
        weights.append(heavy)
        edges.append((i, k + (i + 1) % k))
        weights.append(light)
    return Graph.from_edges(2 * k, np.asarray(edges), np.asarray(weights))


def barbell_odd(k: int = 5, bridge_weight: float = 2.0) -> Graph:
    """Two odd cliques joined by one heavy bridge.

    The bridge tempts greedy; the optimal solution matches inside the
    cliques.  Odd cliques also carry odd-set constraints.
    """
    if k % 2 == 0:
        raise ValueError("clique size must be odd")
    edges: list[tuple[int, int]] = []
    weights: list[float] = []
    for base in (0, k):
        for i in range(k):
            for j in range(i + 1, k):
                edges.append((base + i, base + j))
                weights.append(1.0)
    edges.append((0, k))
    weights.append(bridge_weight)
    return Graph.from_edges(2 * k, np.asarray(edges), np.asarray(weights))
