"""On-disk instance generation: write graphs straight to ``.edges`` files.

The out-of-core benches need instances *larger than the generator
should materialize as a* :class:`~repro.util.graph.Graph`.
:func:`generate_gnm_file` samples a uniform G(n, m) directly in the
triangular pair universe and writes it to disk in chunks: the working
set is two O(m)-word flat numpy buffers (sampled keys + weights, 16
bytes/edge -- ~16 MiB at m = 10^6), never edge objects and never the
three full int64/float64 graph columns, and the *readers* of the
produced file are O(chunk) regardless.

Sampling is the key-draw/dedup/top-up scheme (oversample 64-bit pair
keys, ``np.unique``, redraw until ``m`` distinct): numpy's
``hypergeometric`` cannot stratify populations ≥ 1e9, and the
triangular universe reaches ~8.6e9 already at n = 2^17.  Sorted unique
keys decode to canonically ordered ``(i, j)`` pairs, which is exactly
the on-disk invariant, so writing is a single pass.
"""

from __future__ import annotations

import os
from pathlib import Path

import numpy as np

from repro.ingest.format import DEFAULT_CHUNK_EDGES, EdgeFileWriter, write_graph_file
from repro.util.rng import make_rng

__all__ = ["generate_gnm_file", "hard_instance_file", "triangle_count"]


def triangle_count(n: int) -> int:
    """Size of the undirected pair universe ``{(i, j) : i < j < n}``."""
    return n * (n - 1) // 2


def _triangle_decode(keys: np.ndarray, n: int) -> tuple[np.ndarray, np.ndarray]:
    """Invert the lexicographic triangular index.

    ``key = offset(i) + (j - i - 1)`` with ``offset(i) = i*(2n-i-1)/2``
    enumerates pairs in (i, j)-lexicographic order, so sorted keys give
    canonically sorted edges.  The closed-form float inversion can be
    off by one near row boundaries at key ~ 1e9+ (sqrt rounding), so it
    is corrected with two vectorized ±1 fixups against the exact
    integer offsets.
    """
    k = keys.astype(np.float64)
    i = np.floor(((2 * n - 1) - np.sqrt((2 * n - 1) ** 2 - 8.0 * k)) / 2.0)
    i = i.astype(np.int64)
    np.clip(i, 0, n - 2, out=i)

    def offset(rows: np.ndarray) -> np.ndarray:
        return rows * (2 * n - rows - 1) // 2

    # exact integer correction: i must satisfy offset(i) <= key < offset(i+1)
    i -= offset(i) > keys
    i += offset(i + 1) <= keys
    j = keys - offset(i) + i + 1
    return i, j


def generate_gnm_file(
    path: str | os.PathLike,
    n: int,
    m: int,
    seed: int | np.random.Generator | None = None,
    weights: tuple[float, float] | None = None,
    chunk_edges: int = DEFAULT_CHUNK_EDGES,
) -> Path:
    """Sample a uniform G(n, m) straight to a finalized ``.edges`` file.

    Parameters
    ----------
    path, n, m:
        Destination file, vertex count, exact edge count
        (``m <= triangle_count(n)`` required).
    seed:
        Randomness root; the same ``(n, m, seed, weights)`` always
        produces byte-identical files (``chunk_edges`` only paces the
        writes).
    weights:
        ``None`` for unit weights or ``(lo, hi)`` for iid uniform
        weights on that interval.

    Returns the path.  Memory: O(m) words of flat key/weight buffers in
    the generator; the file's consumers stay O(chunk).
    """
    n = int(n)
    m = int(m)
    total = triangle_count(n)
    if m > total:
        raise ValueError(f"m={m} exceeds the {total} available pairs at n={n}")
    rng = make_rng(seed)
    if m == 0:
        keys = np.empty(0, dtype=np.int64)
    else:
        draw = min(total, m + max(16, m // 50))
        keys = np.unique(rng.integers(0, total, size=draw, dtype=np.int64))
        while len(keys) < m:
            top_up = rng.integers(0, total, size=m - len(keys) + 16, dtype=np.int64)
            keys = np.unique(np.concatenate([keys, top_up]))
        if len(keys) > m:
            # uniform m-subset of the (sorted) surplus keys
            keep = rng.permutation(len(keys))[:m]
            keep.sort()
            keys = keys[keep]
    w = None if weights is None else rng.uniform(weights[0], weights[1], size=m)
    with EdgeFileWriter(path, n, m) as writer:
        for start in range(0, m, chunk_edges):
            stop = min(start + chunk_edges, m)
            src, dst = _triangle_decode(keys[start:stop], n)
            writer.append(src, dst, None if w is None else w[start:stop])
    return Path(path)


#: Hard-instance families exposed by :func:`hard_instance_file`.
_HARD_FAMILIES = ("triangle_gadget", "odd_cycle_chain", "crown_graph", "barbell_odd")


def hard_instance_file(
    path: str | os.PathLike,
    kind: str,
    chunk_edges: int = DEFAULT_CHUNK_EDGES,
    **params,
) -> Path:
    """Write one of the hard adversarial families to an ``.edges`` file.

    ``kind`` is one of ``triangle_gadget``, ``odd_cycle_chain``,
    ``crown_graph``, ``barbell_odd``; ``params`` are forwarded to the
    corresponding :mod:`repro.graphgen.hard_instances` generator.
    These families are structured and parameter-small, so they are
    built in RAM and chunk-written (the O(m)-disciplined path is
    :func:`generate_gnm_file`).
    """
    if kind not in _HARD_FAMILIES:
        raise ValueError(
            f"unknown hard family {kind!r}; choose from {', '.join(_HARD_FAMILIES)}"
        )
    from repro.graphgen import hard_instances

    graph = getattr(hard_instances, kind)(**params)
    return write_graph_file(path, graph, chunk_edges=chunk_edges)
