"""Bipartite workloads (assignment-style instances)."""

from __future__ import annotations

import numpy as np

from repro.util.graph import Graph, merge_parallel_edges
from repro.util.rng import make_rng

__all__ = ["random_bipartite", "assignment_instance"]


def random_bipartite(
    n_left: int,
    n_right: int,
    m: int,
    seed: int | np.random.Generator | None = None,
    weight_low: float = 1.0,
    weight_high: float = 100.0,
) -> Graph:
    """Random bipartite graph: left ``0..n_left-1``, right ``n_left..``."""
    rng = make_rng(seed)
    n = n_left + n_right
    a = rng.integers(0, n_left, size=int(m * 1.3) + 4)
    b = rng.integers(n_left, n, size=len(a))
    w = rng.uniform(weight_low, weight_high, size=len(a))
    src, dst, wm = merge_parallel_edges(a, b, w, n)
    if len(src) > m:
        idx = np.sort(rng.permutation(len(src))[:m])
        src, dst, wm = src[idx], dst[idx], wm[idx]
    return Graph(n=n, src=src, dst=dst, weight=wm)


def assignment_instance(
    workers: int,
    tasks: int,
    skills: int = 4,
    seed: int | np.random.Generator | None = None,
) -> Graph:
    """Worker-task assignment with latent skill affinity weights.

    Each worker/task gets a random point in skill space; the edge weight
    is the (shifted) dot-product affinity.  Workers may carry capacity
    ``b > 1`` downstream (multi-task assignment = b-matching).
    """
    rng = make_rng(seed)
    wv = rng.random((workers, skills))
    tv = rng.random((tasks, skills))
    aff = wv @ tv.T  # workers x tasks
    # keep each worker's top-k tasks to stay sparse
    k = min(tasks, max(3, skills * 2))
    edges = []
    weights = []
    for i in range(workers):
        top = np.argpartition(-aff[i], k - 1)[:k]
        for j in top:
            edges.append((i, workers + int(j)))
            weights.append(1.0 + 10.0 * float(aff[i, j]))
    return Graph.from_edges(workers + tasks, np.asarray(edges), np.asarray(weights))
