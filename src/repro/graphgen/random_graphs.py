"""Random graph families used by the experiments.

All generators are vectorized and seed-deterministic: they draw candidate
endpoint arrays in bulk, canonicalize, and deduplicate via
:func:`repro.util.graph.merge_parallel_edges`.
"""

from __future__ import annotations

import numpy as np

from repro.util.graph import Graph, merge_parallel_edges
from repro.util.rng import make_rng

__all__ = ["gnm_graph", "gnp_graph", "power_law_graph", "geometric_graph"]


def gnm_graph(
    n: int,
    m: int,
    seed: int | np.random.Generator | None = None,
    weights: np.ndarray | None = None,
) -> Graph:
    """Uniform random graph with (approximately, after dedup) ``m`` edges.

    Oversamples candidates then dedups; for ``m`` far below ``n(n-1)/2``
    the deficit is negligible, and we top up once if needed.
    """
    rng = make_rng(seed)
    max_m = n * (n - 1) // 2
    m = min(m, max_m)
    if m == 0 or n < 2:
        return Graph.empty(max(n, 0))
    src, dst = _draw_distinct_pairs(rng, n, m)
    if weights is None:
        w = np.ones(len(src), dtype=np.float64)
    else:
        w = np.asarray(weights, dtype=np.float64)[: len(src)]
    return Graph(n=n, src=src, dst=dst, weight=w)


def _draw_distinct_pairs(rng: np.random.Generator, n: int, m: int):
    """Draw ``m`` distinct canonical pairs (best effort via oversampling)."""
    got_src = np.empty(0, dtype=np.int64)
    got_dst = np.empty(0, dtype=np.int64)
    need = m
    for _ in range(20):
        k = int(need * 1.3) + 8
        a = rng.integers(0, n, size=k)
        b = rng.integers(0, n, size=k)
        src = np.concatenate([got_src, np.minimum(a, b)])
        dst = np.concatenate([got_dst, np.maximum(a, b)])
        src, dst, _ = merge_parallel_edges(src, dst, np.ones(len(src)), n)
        got_src, got_dst = src, dst
        if len(got_src) >= m:
            idx = rng.permutation(len(got_src))[:m]
            idx.sort()
            return got_src[idx], got_dst[idx]
        need = m - len(got_src)
    return got_src, got_dst


def gnp_graph(
    n: int, p: float, seed: int | np.random.Generator | None = None
) -> Graph:
    """Erdős–Rényi G(n, p) via binomial edge count + uniform placement."""
    rng = make_rng(seed)
    max_m = n * (n - 1) // 2
    m = int(rng.binomial(max_m, p))
    return gnm_graph(n, m, seed=rng)


def power_law_graph(
    n: int,
    exponent: float = 2.5,
    avg_degree: float = 4.0,
    seed: int | np.random.Generator | None = None,
) -> Graph:
    """Chung-Lu style power-law graph.

    Vertex ``v`` gets expected degree ``~ (v+1)^{-1/(exponent-1)}``
    rescaled to the target average; edges are drawn proportionally to
    degree products.
    """
    rng = make_rng(seed)
    ranks = np.arange(1, n + 1, dtype=np.float64)
    wts = ranks ** (-1.0 / (exponent - 1.0))
    wts *= (avg_degree * n / 2) / wts.sum()
    total = wts.sum()
    m_target = int(avg_degree * n / 2)
    probs = wts / total
    a = rng.choice(n, size=2 * m_target, p=probs)
    b = rng.choice(n, size=2 * m_target, p=probs)
    keep = a != b
    a, b = a[keep][:m_target], b[keep][:m_target]
    src, dst, w = merge_parallel_edges(a, b, np.ones(len(a)), n)
    return Graph(n=n, src=src, dst=dst, weight=w * 0 + 1.0)


def geometric_graph(
    n: int,
    radius: float,
    seed: int | np.random.Generator | None = None,
) -> Graph:
    """Random geometric graph on the unit square (distance weights).

    Edge weight is ``1/(distance + 0.01)`` so nearby pairs are heavy --
    a natural weighted-matching workload (e.g. sensor pairing).
    """
    rng = make_rng(seed)
    pts = rng.random((n, 2))
    from scipy.spatial import cKDTree

    tree = cKDTree(pts)
    pairs = tree.query_pairs(r=radius, output_type="ndarray")
    if len(pairs) == 0:
        return Graph.empty(n)
    d = np.linalg.norm(pts[pairs[:, 0]] - pts[pairs[:, 1]], axis=1)
    w = 1.0 / (d + 0.01)
    src = np.minimum(pairs[:, 0], pairs[:, 1])
    dst = np.maximum(pairs[:, 0], pairs[:, 1])
    return Graph(n=n, src=src.astype(np.int64), dst=dst.astype(np.int64), weight=w)
