"""Graph generators: random families, weights/capacities, hard instances."""

from repro.graphgen.bipartite import assignment_instance, random_bipartite
from repro.graphgen.hard_instances import (
    barbell_odd,
    crown_graph,
    odd_cycle_chain,
    triangle_gadget,
)
from repro.graphgen.ondisk import generate_gnm_file, hard_instance_file, triangle_count
from repro.graphgen.random_graphs import (
    geometric_graph,
    gnm_graph,
    gnp_graph,
    power_law_graph,
)
from repro.graphgen.weighted import (
    with_exponential_weights,
    with_level_weights,
    with_random_capacities,
    with_uniform_weights,
)

__all__ = [
    "gnm_graph",
    "gnp_graph",
    "power_law_graph",
    "geometric_graph",
    "random_bipartite",
    "assignment_instance",
    "triangle_gadget",
    "odd_cycle_chain",
    "crown_graph",
    "barbell_odd",
    "with_uniform_weights",
    "with_exponential_weights",
    "with_level_weights",
    "with_random_capacities",
    "generate_gnm_file",
    "hard_instance_file",
    "triangle_count",
]
