"""Weight distributions and capacity assignment for matching workloads."""

from __future__ import annotations

import numpy as np

from repro.util.graph import Graph
from repro.util.rng import make_rng

__all__ = [
    "with_uniform_weights",
    "with_exponential_weights",
    "with_level_weights",
    "with_random_capacities",
]


def with_uniform_weights(
    graph: Graph,
    low: float = 1.0,
    high: float = 100.0,
    seed: int | np.random.Generator | None = None,
) -> Graph:
    """Replace weights with Uniform[low, high] draws."""
    rng = make_rng(seed)
    g = graph.copy()
    g.weight = rng.uniform(low, high, size=g.m)
    return g


def with_exponential_weights(
    graph: Graph,
    scale: float = 10.0,
    seed: int | np.random.Generator | None = None,
) -> Graph:
    """Heavy-tailed weights ``1 + Exp(scale)`` -- stresses the level machinery."""
    rng = make_rng(seed)
    g = graph.copy()
    g.weight = 1.0 + rng.exponential(scale, size=g.m)
    return g


def with_level_weights(
    graph: Graph,
    eps: float,
    max_level: int,
    seed: int | np.random.Generator | None = None,
) -> Graph:
    """Weights drawn exactly from the paper's grid ``(1+eps)^k``.

    Useful for tests where discretization must be the identity.
    """
    rng = make_rng(seed)
    g = graph.copy()
    ks = rng.integers(0, max_level + 1, size=g.m)
    g.weight = (1.0 + eps) ** ks
    return g


def with_random_capacities(
    graph: Graph,
    low: int = 1,
    high: int = 4,
    seed: int | np.random.Generator | None = None,
) -> Graph:
    """Assign integer capacities ``b_i ~ Uniform{low..high}``."""
    rng = make_rng(seed)
    return graph.with_b(rng.integers(low, high + 1, size=graph.n))
