"""The in-process matching service: submit problems, get futures.

:class:`MatchingService` is the serving layer over the
:mod:`repro.api` backend registry.  The PR-2 lockstep engine delivers
its several-fold per-instance throughput only to callers who already
hold a whole batch; the service extends that economy to *independent
concurrent callers*:

1. ``submit()`` resolves the backend from the registry, content-
   addresses the problem (:meth:`~repro.api.Problem.fingerprint`), and
   answers duplicates for free -- from the result cache when an
   identical problem already completed, or by attaching to the
   identical in-flight request's future (coalescing).
2. New work is routed to a fingerprint-sharded worker queue
   (:class:`~repro.service.workers.ShardedWorkerPool`).
3. The shard worker collects waiting requests into an adaptive
   micro-batch (:class:`~repro.service.batching.MicroBatchPolicy`),
   groups it by ``(backend, batch_key)``
   (:func:`~repro.service.batching.plan_dispatch`), and hands each
   group to the configured
   :class:`~repro.service.executors.GroupExecutor`: batchable groups
   ride the lockstep engine (``run_many``), the rest per-request
   ``run()`` -- in the collector thread (``pool="thread"``) or in a
   per-shard worker process over shared memory (``pool="process"``,
   see :mod:`repro.server`).
4. Results resolve the callers' futures, feed the content cache, and
   aggregate into :class:`~repro.service.stats.ServiceStats`.

Correctness contract: every resolved future equals a direct
``repro.api.run(problem, backend)`` call *exactly* -- same matchings,
certificates and ledgers -- including cache hits, which return the
stored ``RunResult`` object itself (bit-identical by construction).
Pinned by the parity battery in ``tests/test_service.py``.

Both a synchronous front end (``solve``, blocking) and an ``asyncio``
front end (``asolve``, awaitable) are provided; they share the same
futures, so mixed sync/async callers coalesce against each other.
"""

from __future__ import annotations

import asyncio
import contextlib
import threading
import time
import weakref
from concurrent.futures import Future, InvalidStateError
from typing import Iterable, Sequence

from repro import obs
from repro.api import Problem, RunResult, get_backend
from repro.service.batching import MicroBatchPolicy, ServiceRequest, plan_dispatch
from repro.service.cache import ResultCache
from repro.service.executors import GroupExecutor, LocalExecutor
from repro.service.stats import ServiceStats, StatsRecorder
from repro.service.workers import ShardedWorkerPool

__all__ = ["MatchingService"]


def _chained(internal: Future) -> Future:
    """A per-caller future relaying the internal computation future.

    The internal future is service-owned and never cancelled; caller
    futures are individually cancellable without touching the shared
    computation (a cancelled caller is simply skipped at relay time).
    """
    caller: Future = Future()

    def relay(f: Future) -> None:
        if caller.cancelled():
            return
        exc = f.exception()
        # caller may cancel between the check above and the set below
        with contextlib.suppress(InvalidStateError):
            if exc is not None:
                caller.set_exception(exc)
            else:
                caller.set_result(f.result())

    internal.add_done_callback(relay)
    return caller


class MatchingService:
    """Serve ``Problem`` traffic over the backend registry.

    Parameters
    ----------
    workers:
        Shard/worker count.  One worker maximizes batch occupancy;
        more workers trade occupancy for parallel dispatch.
    pool:
        Execution substrate for dispatched groups: ``"thread"`` (the
        default -- groups run on the collector threads, in process) or
        ``"process"`` -- groups ship to per-shard worker *processes*
        over shared memory (:class:`~repro.server.procpool.
        ProcessGroupExecutor`), escaping the GIL for CPU-bound solves.
        Results are pinned digest-identical across substrates.
    executor:
        Escape hatch: a pre-built
        :class:`~repro.service.executors.GroupExecutor` instance
        (overrides ``pool``); the service takes ownership and closes it.
    max_batch, max_delay_s, adaptive, min_delay_s:
        Micro-batching policy; see
        :class:`~repro.service.batching.MicroBatchPolicy`.
    cache_capacity:
        LRU capacity of the content-addressed result cache
        (``0`` disables caching; in-flight coalescing stays active).
    default_backend:
        Registry name used when ``submit``/``solve`` get no explicit
        backend.
    latency_window:
        Number of recent request latencies kept for the p50/p95
        percentiles.

    Use as a context manager (``with MatchingService() as svc: ...``)
    or call :meth:`close` explicitly; queued work is drained before
    workers stop.
    """

    def __init__(
        self,
        *,
        workers: int = 2,
        pool: str = "thread",
        executor: GroupExecutor | None = None,
        max_batch: int = 32,
        max_delay_s: float = 0.002,
        adaptive: bool = True,
        min_delay_s: float = 0.0,
        cache_capacity: int = 2048,
        default_backend: str = "offline",
        latency_window: int = 4096,
    ):
        get_backend(default_backend)  # fail fast on a bad registry name
        self.default_backend = default_backend
        self.policy = MicroBatchPolicy(
            max_batch=max_batch,
            max_delay_s=max_delay_s,
            adaptive=adaptive,
            min_delay_s=min_delay_s,
        )
        # the executor forks/allocates before the collector threads start
        # (fork-before-thread keeps the children clean)
        if executor is None:
            if pool == "thread":
                executor = LocalExecutor()
            elif pool == "process":
                from repro.server.procpool import ProcessGroupExecutor

                executor = ProcessGroupExecutor(workers)
            else:
                raise ValueError(
                    f"unknown pool kind {pool!r}; use 'thread' or 'process'"
                )
        self._executor = executor
        self._cache = ResultCache(cache_capacity)
        self._stats = StatsRecorder(latency_window)
        self._inflight: dict[str, Future] = {}
        # content addresses invalidated while their computation was still
        # in flight: the future resolves normally, the cache re-insert is
        # suppressed (see _invalidate_keys / _resolve)
        self._doomed: set[str] = set()
        # weak so an abandoned (never-closed) session stays collectable;
        # close() sweeps whatever is still alive
        self._sessions: "weakref.WeakValueDictionary[int, object]" = (
            weakref.WeakValueDictionary()
        )
        self._session_seq = 0
        self._lock = threading.Lock()
        self._closed = False
        self._pool = ShardedWorkerPool(
            workers,
            self.policy,
            self._execute,
            on_handler_error=lambda exc: self._stats.record_handler_error(),
        )

    # ------------------------------------------------------------------
    # Submission front ends
    # ------------------------------------------------------------------
    def submit(self, problem: Problem, backend: str | None = None) -> Future:
        """Submit one problem; returns a ``concurrent.futures.Future``.

        The future resolves to the :class:`~repro.api.RunResult` a
        direct ``run(problem, backend)`` would return (or raises what
        it would raise).  Registry/task mismatches surface here,
        synchronously.  Duplicate submissions (same backend + content
        address) share one computation.

        Every caller gets its *own* future, chained to the (internal)
        computation: cancelling it detaches that caller only -- the
        computation, and any duplicate submitters coalesced onto it,
        are unaffected.
        """
        name = backend if backend is not None else self.default_backend
        get_backend(name).check(problem)  # fail fast, before any hashing
        return self._submit_keyed(problem, name, self._content_key(problem, name))

    def _submit_keyed(
        self, problem: Problem, name: str, key: str | None
    ) -> Future:
        """The body of :meth:`submit` with the content address already
        computed (sessions reuse the key they record, so the canonical
        JSON hashing runs once per submission).  Callers have already
        run ``get_backend(name).check(problem)``."""
        submitted_at = time.monotonic()
        span = obs.current_span()  # None in the untraced common case
        # registration, closed-check and enqueue are one atomic step:
        # close() flips _closed under this lock, so a request is either
        # rejected here or enqueued ahead of the shutdown sentinel
        with self._lock:
            if self._closed:
                raise RuntimeError("MatchingService is closed")
            self._stats.record_submit()
            if key is not None:
                hit = self._cache.get(key)
                if hit is not None:
                    self._stats.record_cache_hit(time.monotonic() - submitted_at)
                    fut: Future = Future()
                    fut.set_result(hit)
                    return fut
                inflight = self._inflight.get(key)
                if inflight is not None:
                    self._stats.record_coalesced()
                    inflight.add_done_callback(
                        lambda f, t0=submitted_at: (
                            self._stats.record_coalesced_resolution(
                                time.monotonic() - t0,
                                failed=f.exception() is not None,
                            )
                        )
                    )
                    return _chained(inflight)
            internal: Future = Future()
            if key is not None:
                self._inflight[key] = internal
            request = ServiceRequest(
                problem=problem,
                backend=name,
                future=internal,
                cache_key=key,
                submitted_at=submitted_at,
                span=span,
            )
            self._pool.submit(request)
        return _chained(internal)

    @staticmethod
    def _content_key(problem: Problem, backend: str) -> str | None:
        """Content address of ``(backend, problem)``; ``None`` when the
        problem's options have no canonical JSON form (uncacheable)."""
        try:
            return f"{backend}:{problem.fingerprint()}"
        except TypeError:
            return None

    def submit_many(
        self,
        problems: Iterable[Problem],
        backend: str | Sequence[str] | None = None,
    ) -> list[Future]:
        """Submit a burst; one backend name for all or one per problem."""
        problems = list(problems)
        if backend is None or isinstance(backend, str):
            names = [backend] * len(problems)
        else:
            names = list(backend)
            if len(names) != len(problems):
                raise ValueError(
                    "backend list must have one entry per problem"
                )
        return [self.submit(p, b) for p, b in zip(problems, names)]

    def solve(
        self,
        problem: Problem,
        backend: str | None = None,
        timeout: float | None = None,
    ) -> RunResult:
        """Blocking ``submit().result()`` convenience."""
        return self.submit(problem, backend).result(timeout)

    async def asubmit(
        self, problem: Problem, backend: str | None = None
    ) -> "asyncio.Future[RunResult]":
        """``asyncio`` front end: an awaitable wrapping :meth:`submit`.

        :meth:`submit` fingerprints the graph (O(m) hashing) before
        enqueueing, so it is offloaded to the loop's default executor
        -- large first-seen graphs must not stall the event loop.
        """
        loop = asyncio.get_running_loop()
        fut = await loop.run_in_executor(None, self.submit, problem, backend)
        return asyncio.wrap_future(fut)

    async def asolve(
        self, problem: Problem, backend: str | None = None
    ) -> RunResult:
        """Await one result (``await svc.asolve(problem)``)."""
        return await (await self.asubmit(problem, backend))

    # ------------------------------------------------------------------
    # Dynamic sessions (fingerprint-delta cache invalidation)
    # ------------------------------------------------------------------
    def open_session(
        self,
        n: int,
        *,
        config=None,
        base_graph=None,
        matching_backend: str = "offline",
    ):
        """Open a :class:`~repro.service.sessions.ServiceSession`.

        The session's queries are ordinary submissions (they coalesce
        and cache normally); its *updates* evict exactly the content
        addresses the session populated, so an evolving graph never
        pins stale results while unrelated traffic keeps its cache.

        Parameters
        ----------
        n:
            Vertex count of the session graph.
        config:
            :class:`~repro.core.matching_solver.SolverConfig` used for
            the session's queries.
        base_graph:
            Optional starting graph.
        matching_backend:
            Backend for matching queries (default ``"offline"`` --
            session queries then micro-batch with regular traffic).
        """
        from repro.service.sessions import ServiceSession

        # construction (which may ingest a large base graph) happens
        # outside the service lock; registration re-checks _closed so a
        # close() landing in between rejects the handle rather than
        # leaving it open against a dead service
        with self._lock:
            if self._closed:
                raise RuntimeError("MatchingService is closed")
            self._session_seq += 1
            sid = self._session_seq
        session = ServiceSession(
            self,
            sid,
            n,
            config=config,
            base_graph=base_graph,
            matching_backend=matching_backend,
        )
        with self._lock:
            if self._closed:
                session._closed = True
                raise RuntimeError("MatchingService is closed")
            self._sessions[sid] = session
        return session

    def _forget_session(self, session) -> None:
        with self._lock:
            self._sessions.pop(session.session_id, None)

    def _invalidate_keys(self, keys) -> int:
        """Evict the given content addresses; doom any still in flight.

        A doomed key's computation resolves its callers normally (the
        result is correct for the fingerprint it was keyed under) but
        skips the cache re-insert, so invalidation cannot be undone by
        a racing late :meth:`_resolve`.
        """
        keys = set(keys)
        with self._lock:
            for key in keys:
                if key in self._inflight:
                    self._doomed.add(key)
            return self._cache.evict_many(keys)

    # ------------------------------------------------------------------
    # Introspection / lifecycle
    # ------------------------------------------------------------------
    def stats(self) -> ServiceStats:
        """Immutable metrics snapshot (latency percentiles, occupancy
        histogram, cache hit rate, per-backend ledger totals)."""
        return self._stats.snapshot()

    def cache_stats(self):
        """Raw cache counters (:class:`~repro.service.cache.CacheStats`)."""
        return self._cache.stats()

    @property
    def workers(self) -> int:
        """Shard/worker count of the underlying pool."""
        return self._pool.workers

    @property
    def pool_kind(self) -> str:
        """Execution substrate of dispatched groups (thread/process)."""
        return self._executor.kind

    def queued(self) -> int:
        """Requests waiting in shard queues (approximate; for metrics)."""
        return self._pool.queued()

    def pool_health(self) -> dict:
        """Liveness of the execution substrate, for ``/healthz``/metrics.

        ``live_workers`` counts whichever layer actually executes
        groups: worker *processes* for ``pool="process"`` (a crashed
        child is dead until its next-dispatch respawn), collector
        *threads* for ``pool="thread"``.  ``respawns`` counts process
        replacements after crashes (always 0 for threads).  A healthy
        service has ``live_workers == workers``; zero means no request
        can make progress and ``/healthz`` turns 503.
        """
        executor = self._executor
        live = getattr(executor, "live_workers", None)
        if callable(live):
            return {
                "pool": executor.kind,
                "workers": getattr(executor, "workers", self._pool.workers),
                "live_workers": live(),
                "respawns": int(getattr(executor, "respawns", 0)),
                "closed": self._closed,
            }
        return {
            "pool": executor.kind,
            "workers": self._pool.workers,
            "live_workers": self._pool.live_workers(),
            "respawns": 0,
            "closed": self._closed,
        }

    @property
    def closed(self) -> bool:
        return self._closed

    def close(self, wait: bool = True) -> None:
        """Stop accepting submissions, drain queued work, stop workers.

        Open sessions are closed first (their cached entries evicted,
        their ``closed`` flag set) so no handle outlives the service in
        a usable-looking state.
        """
        with self._lock:
            if self._closed:
                return
            self._closed = True  # under the submit lock: no late enqueues
            # snapshot under the same lock: open_session can no longer
            # register, and iteration cannot race a weak-dict insert
            sessions = list(self._sessions.values())
        for session in sessions:
            session.close()  # re-acquires the lock per eviction; not held here
        self._pool.shutdown(wait=wait)
        if wait:
            for req in self._pool.drain():
                self._fail(
                    req, RuntimeError("MatchingService closed"), computed=False
                )
            # no run_group call can be in flight once the pool joined
            self._executor.close()

    def __enter__(self) -> "MatchingService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Worker-side execution
    # ------------------------------------------------------------------
    def _execute(self, batch: list[ServiceRequest]) -> None:
        """Dispatch one collected micro-batch (runs on a worker thread).

        Must never raise: any escaping exception would kill the shard
        worker and wedge its queue, so every failure -- including a
        custom backend's ``batch_key``/``run_many`` misbehaving -- is
        resolved into the affected requests' futures instead.
        """
        self._stats.record_batch(len(batch))
        traced_batch = [req for req in batch if req.span is not None]
        if traced_batch:
            dispatched = time.monotonic()
            for req in traced_batch:
                req.span.child(
                    "service.queue_wait", start=req.submitted_at
                ).finish(dispatched)
        try:
            groups = plan_dispatch(batch)
        except BaseException as exc:  # noqa: BLE001 -- a custom batch_key may raise
            for req in batch:
                self._fail(req, exc)
            return
        if traced_batch:
            planned = time.monotonic()
            for req in traced_batch:
                req.span.child(
                    "plan_dispatch",
                    {"batch": len(batch), "groups": len(groups)},
                    start=dispatched,
                ).finish(planned)
        for group in groups:
            # one shared dispatch-group span per traced group: the group
            # runs once, so its executor/worker subtree is grafted into
            # every traced member's request tree
            traced = [req for req in group if req.span is not None]
            gspan = None
            if traced:
                gspan = obs.Span(
                    "dispatch_group",
                    {
                        "backend": group[0].backend,
                        "size": len(group),
                        "pool": self._executor.kind,
                    },
                )
            try:
                with obs.attach(gspan):
                    results = self._executor.run_group(
                        group[0].backend, [req.problem for req in group]
                    )
                if len(results) != len(group):
                    raise RuntimeError(
                        f"backend {group[0].backend!r} run_many returned "
                        f"{len(results)} results for {len(group)} problems"
                    )
            except BaseException as exc:  # noqa: BLE001 -- resolve, don't kill the worker
                for req in group:
                    self._fail(req, exc)
            else:
                if gspan is not None:
                    gspan.finish()
                    for req in traced:
                        req.span.graft(gspan)
                for req, result in zip(group, results):
                    try:
                        self._resolve(req, result)
                    except BaseException as exc:  # noqa: BLE001
                        self._fail(req, exc)

    def _resolve(self, req: ServiceRequest, result: RunResult) -> None:
        with self._lock:
            if req.cache_key is not None:
                if req.cache_key in self._doomed:
                    # invalidated while in flight: callers still get the
                    # result, the cache stays evicted
                    self._doomed.discard(req.cache_key)
                else:
                    self._cache.put(req.cache_key, result)
                self._inflight.pop(req.cache_key, None)
        self._stats.record_completion(
            req.backend,
            time.monotonic() - req.submitted_at,
            result.ledger,
            convergence=result.convergence(),
        )
        req.future.set_result(result)

    def _fail(
        self, req: ServiceRequest, exc: BaseException, computed: bool = True
    ) -> None:
        with self._lock:
            if req.cache_key is not None:
                self._inflight.pop(req.cache_key, None)
                self._doomed.discard(req.cache_key)
        self._stats.record_failure(
            req.backend, time.monotonic() - req.submitted_at, computed=computed
        )
        # already resolved when a late resolve step fails
        with contextlib.suppress(InvalidStateError):
            req.future.set_exception(exc)
