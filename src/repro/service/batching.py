"""Adaptive micro-batching policy and dispatch planning.

The service's unit of work is a :class:`ServiceRequest` (one submitted
problem plus its future and content address).  A shard worker collects
waiting requests into a *micro-batch* under a max-batch / max-delay
policy, then :func:`plan_dispatch` splits the collected batch into
engine dispatch groups: requests whose backend is batchable and whose
:meth:`~repro.api.Backend.batch_key` matches ride one lockstep
``run_many`` call; everything else (heterogeneous configs, non-default
budgets/options, non-batchable backends) is dispatched per request
through ``run()``.

Adaptivity
----------
Waiting the full ``max_delay_s`` for stragglers is only worth it when
traffic is heavy enough that stragglers actually arrive.  The policy
therefore scales its wait budget by an EWMA of recent batch occupancy
(batch size over ``max_batch``): under sustained load the budget stays
near ``max_delay_s`` and batches fill, while a quiet service decays the
budget toward ``min_delay_s`` so sporadic requests stop paying the
coalescing latency tax.  Occupancy starts at 1.0 (optimistic) so the
first burst after startup batches well.
"""

from __future__ import annotations

import time
from concurrent.futures import Future
from dataclasses import dataclass, field
from typing import Any, Hashable

from repro.api import Problem, get_backend

__all__ = [
    "MicroBatchPolicy",
    "AdaptiveDelay",
    "ServiceRequest",
    "plan_dispatch",
]


@dataclass(frozen=True)
class MicroBatchPolicy:
    """Micro-batching knobs.

    Attributes
    ----------
    max_batch:
        Hard cap on requests coalesced into one micro-batch (the
        lockstep engine's sweet spot is around 32; see
        ``benchmarks/BENCH_solver.json``).
    max_delay_s:
        Longest a worker will hold an already-arrived request open for
        stragglers.  The worst-case added latency per request.
    adaptive:
        Scale the actual wait by recent batch occupancy (see module
        docstring); ``False`` always waits ``max_delay_s``.
    min_delay_s:
        Floor of the adaptive wait budget.
    ewma_alpha:
        Occupancy smoothing factor in ``(0, 1]``; higher reacts faster.
    """

    max_batch: int = 32
    max_delay_s: float = 0.002
    adaptive: bool = True
    min_delay_s: float = 0.0
    ewma_alpha: float = 0.25

    def __post_init__(self) -> None:
        if self.max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        if self.max_delay_s < 0 or self.min_delay_s < 0:
            raise ValueError("delays must be nonnegative")
        if self.min_delay_s > self.max_delay_s:
            raise ValueError("min_delay_s must not exceed max_delay_s")
        if not 0.0 < self.ewma_alpha <= 1.0:
            raise ValueError("ewma_alpha must be in (0, 1]")


class AdaptiveDelay:
    """Per-worker mutable companion of :class:`MicroBatchPolicy`.

    Tracks the occupancy EWMA and turns it into the wait budget for the
    next collection window.  Only its owning worker thread touches it.
    """

    def __init__(self, policy: MicroBatchPolicy):
        self.policy = policy
        self.occupancy = 1.0

    def wait_budget(self) -> float:
        """Seconds the next collection may hold its first request open."""
        p = self.policy
        if not p.adaptive:
            return p.max_delay_s
        return max(p.min_delay_s, p.max_delay_s * self.occupancy)

    def observe(self, batch_size: int) -> None:
        """Fold one collected batch's occupancy into the EWMA."""
        p = self.policy
        occ = min(1.0, batch_size / p.max_batch)
        self.occupancy += p.ewma_alpha * (occ - self.occupancy)


@dataclass
class ServiceRequest:
    """One submitted problem travelling through the service.

    ``cache_key`` is the content address (``"<backend>:<fingerprint>"``)
    or ``None`` when the problem is not fingerprintable; ``submitted_at``
    is the ``time.monotonic()`` stamp latency is measured from.
    ``span`` is the request's active :class:`~repro.obs.Span` captured
    at submission (``None`` for the untraced common case) -- the
    service's dispatch pipeline hangs its queue-wait/planning/group
    spans under it as the request travels through worker threads.
    """

    problem: Problem
    backend: str
    future: Future = field(default_factory=Future)
    cache_key: str | None = None
    submitted_at: float = field(default_factory=time.monotonic)
    span: object | None = None


def plan_dispatch(requests: list[ServiceRequest]) -> list[list[ServiceRequest]]:
    """Split one collected micro-batch into engine dispatch groups.

    Requests sharing ``(backend, batch_key)`` -- with the backend
    batchable and the key not ``None`` -- form one group, in arrival
    order; every other request becomes a singleton group.  Group order
    follows the first arrival of each group, so dispatch stays fair
    under mixed traffic.
    """
    groups: list[list[ServiceRequest]] = []
    index: dict[tuple[str, Hashable], int] = {}
    for req in requests:
        be = get_backend(req.backend)
        key = be.batch_key(req.problem) if be.batchable else None
        if key is None:
            groups.append([req])
            continue
        gkey = (req.backend, key)
        slot = index.get(gkey)
        if slot is None:
            index[gkey] = len(groups)
            groups.append([req])
        else:
            groups[slot].append(req)
    return groups
