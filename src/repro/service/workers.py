"""Sharded worker pool: per-shard queues + micro-batch collection.

Each worker owns one FIFO queue and one thread.  Fingerprintable
requests are routed by their content address (``shard =
fingerprint mod workers``), which gives the service its two sharding
properties for free:

* *dedup locality* -- duplicate submissions always land on the same
  shard, so the ones that slip past the in-flight coalescer still meet
  in one queue and one cache line of the (shared) result cache;
* *scaling* -- independent shards never contend on a queue, and the
  numpy-heavy engine work releases the GIL enough for multi-worker
  configurations to overlap on multi-core hosts.

Unfingerprintable requests are spread round-robin.

A worker's loop is: block for the first request, then fill the batch
under its :class:`~repro.service.batching.AdaptiveDelay` wait budget,
hand the collected list to the service's dispatch handler, repeat.
Shutdown enqueues one sentinel per shard; queued work ahead of the
sentinel is always drained first.
"""

from __future__ import annotations

import contextlib
import itertools
import logging
import queue
import threading
import time
from typing import Callable

from repro.service.batching import AdaptiveDelay, MicroBatchPolicy, ServiceRequest

__all__ = ["ShardedWorkerPool"]

_SENTINEL = object()

logger = logging.getLogger("repro.service")


class ShardedWorkerPool:
    """N shard queues, N daemon worker threads, one batch handler.

    Parameters
    ----------
    workers:
        Shard count (>= 1).
    policy:
        The shared :class:`MicroBatchPolicy`; each worker keeps its own
        :class:`AdaptiveDelay` state so shard loads adapt independently.
    handler:
        ``handler(batch: list[ServiceRequest])`` -- called on the worker
        thread with every collected micro-batch.  Must not raise (the
        service resolves per-request errors into futures).
    on_handler_error:
        Optional callback invoked with the exception whenever the
        handler *does* raise (a contract violation).  The shard stays
        alive either way, but the event is never silent: a one-line
        warning is logged and the service counts it into the
        ``handler_errors`` stat.
    """

    def __init__(
        self,
        workers: int,
        policy: MicroBatchPolicy,
        handler: Callable[[list[ServiceRequest]], None],
        name: str = "repro-service",
        on_handler_error: Callable[[BaseException], None] | None = None,
    ):
        if workers < 1:
            raise ValueError("workers must be >= 1")
        self.policy = policy
        self._handler = handler
        self._on_handler_error = on_handler_error
        self._queues: list[queue.Queue] = [queue.Queue() for _ in range(workers)]
        self._rr = itertools.count()
        self._closed = False
        self._threads = [
            threading.Thread(
                target=self._loop, args=(i,), name=f"{name}-worker-{i}", daemon=True
            )
            for i in range(workers)
        ]
        for t in self._threads:
            t.start()

    # ------------------------------------------------------------------
    @property
    def workers(self) -> int:
        return len(self._queues)

    def live_workers(self) -> int:
        """Collector threads currently alive (all of them, normally --
        the loop's backstop keeps shards up through handler bugs, so a
        dead thread here means a hard interpreter-level failure)."""
        return sum(1 for t in self._threads if t.is_alive())

    def shard_of(self, cache_key: str | None) -> int:
        """Deterministic shard for a content address (round-robin for
        unfingerprintable requests)."""
        if cache_key is None:
            return next(self._rr) % len(self._queues)
        # the key ends in the problem fingerprint (hex sha256); its low
        # 64 bits are a uniform, process-stable shard hash
        return int(cache_key[-16:], 16) % len(self._queues)

    def submit(self, request: ServiceRequest) -> None:
        if self._closed:
            raise RuntimeError("worker pool is shut down")
        self._queues[self.shard_of(request.cache_key)].put(request)

    def queued(self) -> int:
        """Approximate number of requests waiting across all shards."""
        return sum(q.qsize() for q in self._queues)

    def shutdown(self, wait: bool = True) -> None:
        """Stop accepting work; drain queued requests, then stop workers."""
        if self._closed:
            return
        self._closed = True
        for q in self._queues:
            q.put(_SENTINEL)
        if wait:
            for t in self._threads:
                t.join()

    def drain(self) -> list[ServiceRequest]:
        """Pull any requests left behind after shutdown (a submit that
        raced ``shutdown()`` can land behind the sentinel); the service
        fails their futures instead of leaving them hanging."""
        leftovers: list[ServiceRequest] = []
        for q in self._queues:
            while True:
                try:
                    item = q.get_nowait()
                except queue.Empty:
                    break
                if item is not _SENTINEL:
                    leftovers.append(item)
        return leftovers

    # ------------------------------------------------------------------
    def _loop(self, shard: int) -> None:
        q = self._queues[shard]
        state = AdaptiveDelay(self.policy)
        while True:
            first = q.get()
            if first is _SENTINEL:
                return
            batch = [first]
            stop = False
            deadline = time.monotonic() + state.wait_budget()
            while len(batch) < self.policy.max_batch:
                remaining = deadline - time.monotonic()
                try:
                    item = (
                        q.get(timeout=remaining)
                        if remaining > 0
                        else q.get_nowait()
                    )
                except queue.Empty:
                    break
                if item is _SENTINEL:
                    stop = True
                    break
                batch.append(item)
            state.observe(len(batch))
            try:
                self._handler(batch)
            except BaseException as exc:  # noqa: BLE001 -- backstop: the
                # service's handler resolves failures into futures and
                # should never raise; if it does anyway, keep the shard
                # alive rather than wedging its queue forever -- but
                # never silently: log one line and count the event
                logger.warning(
                    "shard %d batch handler raised %s: %s "
                    "(%d request(s) may be left unresolved)",
                    shard, type(exc).__name__, exc, len(batch),
                )
                if self._on_handler_error is not None:
                    # the stats hook must not take the shard down either
                    with contextlib.suppress(BaseException):  # noqa: BLE001
                        self._on_handler_error(exc)
            if stop:
                return
