"""Session-scoped dynamic submissions over the matching service.

A :class:`ServiceSession` binds a
:class:`~repro.dynamic.session.DynamicGraphSession` (the evolving
graph) to a :class:`~repro.service.matching_service.MatchingService`
(batching, coalescing, the content-addressed result cache).  The
session's queries are ordinary service submissions -- they coalesce
with duplicates and ride micro-batches like any other traffic -- but
the session remembers which content addresses it populated, and every
update applies a *fingerprint-delta invalidation*: exactly those keys
are evicted, so a mutating session cannot pin stale entries in the LRU
while every other session's (and every direct submitter's unshared)
entries survive untouched.

Eviction vs. in-flight work: if an update lands while one of the
session's queries is still computing, the service marks that content
address *doomed* -- the in-flight future still resolves normally for
every caller attached to it (the result is correct for the fingerprint
it was computed under; content addresses never lie), but the result is
not re-inserted into the cache behind the invalidation.  The
regression battery in ``tests/test_service_sessions.py`` pins both
properties.

Thread-safety: a session object is intended for one logical caller;
the service-side structures it touches are lock-protected, so separate
sessions may be driven from separate threads freely.
"""

from __future__ import annotations

from concurrent.futures import Future
from typing import TYPE_CHECKING

import numpy as np

from repro.api import Problem, RunResult
from repro.core.matching_solver import SolverConfig
from repro.dynamic.session import DynamicGraphSession
from repro.util.graph import Graph

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.service.matching_service import MatchingService

__all__ = ["ServiceSession"]


class ServiceSession:
    """One caller's evolving graph, served through the shared service.

    Created by :meth:`MatchingService.open_session`; not constructed
    directly.  Updates mutate the local turnstile state and invalidate
    the session's cached results; queries submit the current graph.
    """

    def __init__(
        self,
        service: "MatchingService",
        session_id: int,
        n: int,
        *,
        config: SolverConfig | None = None,
        base_graph: Graph | None = None,
        matching_backend: str = "offline",
    ):
        self._service = service
        self.session_id = int(session_id)
        self.matching_backend = matching_backend
        self._session = DynamicGraphSession(
            n,
            config=config,
            base_graph=base_graph,
            # the service replays queries through backends; local sketch
            # maintenance would duplicate work the backends redo anyway
            maintain_sketches=False,
        )
        #: Content addresses this session populated since its last update.
        self._keys: set[str] = set()
        self._closed = False

    # ------------------------------------------------------------------
    # State introspection
    # ------------------------------------------------------------------
    @property
    def n(self) -> int:
        return self._session.n

    @property
    def m(self) -> int:
        return self._session.m

    @property
    def version(self) -> int:
        return self._session.version

    @property
    def closed(self) -> bool:
        return self._closed

    def graph(self) -> Graph:
        return self._session.graph()

    def fingerprint(self) -> str:
        return self._session.fingerprint()

    # ------------------------------------------------------------------
    # Updates (each evicts this session's cached results)
    # ------------------------------------------------------------------
    def _check_open(self) -> None:
        if self._closed:
            raise RuntimeError("ServiceSession is closed")

    def _invalidate(self) -> None:
        if self._keys:
            self._service._invalidate_keys(self._keys)
            self._keys.clear()

    def insert(self, u: int, v: int, w: float = 1.0) -> None:
        self._check_open()
        self._session.insert(u, v, w)
        self._invalidate()

    def delete(self, u: int, v: int) -> None:
        self._check_open()
        self._session.delete(u, v)
        self._invalidate()

    def insert_many(
        self, u: np.ndarray, v: np.ndarray, w: np.ndarray | None = None
    ) -> None:
        self._check_open()
        self._session.insert_many(u, v, w)
        self._invalidate()

    def delete_many(self, u: np.ndarray, v: np.ndarray) -> None:
        self._check_open()
        self._session.delete_many(u, v)
        self._invalidate()

    def apply(self, updates) -> None:
        """Apply a mixed canonical update log, then invalidate once."""
        self._check_open()
        self._session.apply(updates)
        self._invalidate()

    # ------------------------------------------------------------------
    # Queries (ordinary service submissions, keys recorded)
    # ------------------------------------------------------------------
    def _submit(self, problem: Problem, backend: str) -> Future:
        from repro.api import get_backend

        get_backend(backend).check(problem)
        # compute the content address once: it is both the submission
        # key and what this session records for later invalidation
        key = self._service._content_key(problem, backend)
        fut = self._service._submit_keyed(problem, backend, key)
        if key is not None:
            self._keys.add(key)
        return fut

    def submit_matching(self) -> Future:
        """Submit a matching query for the current graph; returns the
        future (coalesces/caches like any submission)."""
        self._check_open()
        problem = Problem(self._session.graph(), config=self._session.config)
        return self._submit(problem, self.matching_backend)

    def query_matching(self, timeout: float | None = None) -> RunResult:
        """Blocking :meth:`submit_matching`."""
        return self.submit_matching().result(timeout)

    def submit_forest(self) -> Future:
        """Submit a spanning-forest query (``dynamic`` backend: decoded
        from linear sketches of the current graph)."""
        self._check_open()
        problem = Problem(
            self._session.graph(),
            config=self._session.config,
            task="spanning_forest",
        )
        return self._submit(problem, "dynamic")

    def query_forest(self, timeout: float | None = None) -> RunResult:
        """Blocking :meth:`submit_forest`."""
        return self.submit_forest().result(timeout)

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Invalidate the session's cached results and detach it."""
        if self._closed:
            return
        self._closed = True
        self._invalidate()
        self._service._forget_session(self)
