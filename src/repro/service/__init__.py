"""repro.service: in-process matching service over the backend registry.

The serving layer the ROADMAP's "heavy traffic" north star asks for:
:class:`MatchingService` accepts independent concurrent
:class:`~repro.api.Problem` submissions (sync ``submit``/``solve`` and
``asyncio`` ``asolve``), coalesces batchable offline requests into
lockstep ``run_many`` batches under an adaptive max-batch/max-delay
policy, deduplicates repeated instances through a content-addressed
result cache (keyed by :meth:`~repro.api.Problem.fingerprint`), shards
work across N worker queues by fingerprint, and reports a
:class:`ServiceStats` surface (p50/p95 latency, batch-occupancy
histogram, cache hit rate, aggregated per-backend run ledgers).

Quickstart::

    from repro import Graph, Problem, SolverConfig
    from repro.service import MatchingService

    with MatchingService(workers=2, max_batch=32) as svc:
        futures = [svc.submit(Problem(g, config=SolverConfig(eps=0.2, seed=i)))
                   for i, g in enumerate(graphs)]
        results = [f.result() for f in futures]
        print(svc.stats().as_row())

Dynamic sessions: :meth:`MatchingService.open_session` returns a
:class:`ServiceSession` whose edge updates evict exactly the session's
own cached results (fingerprint-delta invalidation) while its queries
batch/coalesce/cache like any other traffic -- the serving face of
``repro.dynamic`` (``docs/dynamic.md``).

Architecture, batching policy and cache semantics: ``docs/service.md``.
"""

from repro.service.batching import (
    AdaptiveDelay,
    MicroBatchPolicy,
    ServiceRequest,
    plan_dispatch,
)
from repro.service.cache import CacheStats, ResultCache
from repro.service.executors import GroupExecutor, LocalExecutor
from repro.service.matching_service import MatchingService
from repro.service.sessions import ServiceSession
from repro.service.stats import ServiceStats, StatsRecorder
from repro.service.workers import ShardedWorkerPool

__all__ = [
    "MatchingService",
    "ServiceSession",
    "MicroBatchPolicy",
    "AdaptiveDelay",
    "ServiceRequest",
    "plan_dispatch",
    "ResultCache",
    "CacheStats",
    "ServiceStats",
    "StatsRecorder",
    "ShardedWorkerPool",
    "GroupExecutor",
    "LocalExecutor",
]
