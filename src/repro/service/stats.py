"""Service metrics: latency percentiles, occupancy, cache rate, ledgers.

The paper reports its algorithms in model resources (passes, rounds,
space); a *serving* layer reports in serving resources: request latency
percentiles, how full the lockstep batches ran, how often the content
cache answered for free, and -- bridging back to the paper -- the
aggregated :class:`~repro.api.RunLedger` totals of all computation the
service actually performed, per backend.

:class:`StatsRecorder` is the mutable, thread-safe collector the
service writes into; :meth:`StatsRecorder.snapshot` freezes it into an
immutable :class:`ServiceStats` for callers.
"""

from __future__ import annotations

import threading
from collections import deque
from dataclasses import dataclass, field

from repro.api import RunLedger
from repro.util.instrumentation import (
    CountHistogram,
    LatencyHistogram,
    percentile,
)

__all__ = ["ServiceStats", "StatsRecorder"]

#: RunLedger counters summed into per-backend totals.
_SUM_FIELDS = (
    "rounds",
    "refinement_steps",
    "oracle_calls",
    "shuffle_words",
    "edges_streamed",
    "passes",
    "clique_total_words",
)
#: RunLedger high-water marks folded with max.
_MAX_FIELDS = ("peak_central_space", "reducer_peak_words", "clique_max_vertex_words")


@dataclass(frozen=True)
class ServiceStats:
    """Immutable metrics snapshot returned by ``MatchingService.stats()``.

    Attributes
    ----------
    submitted, completed, failed:
        Request counts: everything accepted by ``submit()``, successful
        resolutions (including cache hits and coalesced duplicates),
        and error resolutions.
    cache_hits:
        Submissions answered from the result cache without touching a
        worker.
    coalesced:
        Submissions attached to an identical in-flight request (they
        share its single computation; counted into ``completed`` /
        ``failed`` when that computation resolves).
    computed:
        Requests a backend actually executed (counted directly at
        resolution, so a snapshot taken while duplicates are in flight
        is still consistent).
    batches:
        Micro-batches dispatched by the shard workers.
    latency_p50_ms, latency_p95_ms:
        Nearest-rank percentiles over the recent request-latency window
        (submit to resolution; cache hits enter as ~0).  ``None`` until
        the first request resolves.
    batch_occupancy:
        Histogram of collected micro-batch sizes (size -> count).
    mean_occupancy:
        Mean collected batch size (``None`` before the first batch).
    cache_hit_rate:
        ``(cache_hits + coalesced) / submitted`` -- the fraction of
        traffic served without a new computation (0.0 when idle).
    backend_requests:
        Computed-request count per backend name.
    ledger_totals:
        Per backend: summed :class:`~repro.api.RunLedger` counters over
        every *computed* result (cache hits deliberately do not
        re-count work), with high-water fields folded by max.
    handler_errors:
        Batch-handler exceptions caught by the worker-pool backstop.
        The contract is that the dispatch handler resolves failures
        into futures and never raises; a nonzero count here means that
        contract was violated (each event is also logged as a warning
        by the pool instead of being swallowed).
    latency_histogram:
        Fixed-bucket request-latency snapshot
        (:meth:`~repro.util.instrumentation.LatencyHistogram.snapshot`
        shape) -- the distribution behind the p50/p95 gauges, rendered
        as a Prometheus histogram family by
        :func:`repro.server.metrics.render_prometheus`.
    convergence:
        Solver-convergence summary over every *computed* dual-primal
        result: ``requests`` (results carrying per-round history),
        ``rounds`` (exact histogram: sampling rounds -> solve count),
        ``mean_rounds``, and nearest-rank ``gap_p50``/``gap_p95`` over
        the recent window of final certified gaps
        (``1 - primal/upper_bound`` at termination).  Empty dict until
        the first such result; backends without history (baselines)
        do not contribute.
    """

    submitted: int
    completed: int
    failed: int
    cache_hits: int
    coalesced: int
    computed: int
    batches: int
    latency_p50_ms: float | None
    latency_p95_ms: float | None
    batch_occupancy: dict[int, int]
    mean_occupancy: float | None
    cache_hit_rate: float
    backend_requests: dict[str, int]
    ledger_totals: dict[str, dict[str, int]]
    handler_errors: int = 0
    latency_histogram: dict = field(default_factory=dict)
    convergence: dict = field(default_factory=dict)

    def as_row(self) -> dict:
        """Flat dict for tables/logging (histograms included verbatim)."""
        return {
            "submitted": self.submitted,
            "completed": self.completed,
            "failed": self.failed,
            "cache_hits": self.cache_hits,
            "coalesced": self.coalesced,
            "computed": self.computed,
            "batches": self.batches,
            "latency_p50_ms": self.latency_p50_ms,
            "latency_p95_ms": self.latency_p95_ms,
            "mean_occupancy": self.mean_occupancy,
            "cache_hit_rate": self.cache_hit_rate,
            "batch_occupancy": dict(self.batch_occupancy),
            "handler_errors": self.handler_errors,
            "convergence": dict(self.convergence),
        }


class StatsRecorder:
    """Thread-safe mutable collector behind :class:`ServiceStats`.

    Latencies are kept in a bounded window (deque) so a long-lived
    service reports *recent* percentiles at O(window) memory instead of
    unbounded history.
    """

    def __init__(self, latency_window: int = 4096):
        self._lock = threading.Lock()
        self._latencies_ms: deque[float] = deque(maxlen=int(latency_window))
        self._latency_hist = LatencyHistogram()
        self._occupancy = CountHistogram()
        self._rounds = CountHistogram()
        self._gaps: deque[float] = deque(maxlen=int(latency_window))
        self._convergence_requests = 0
        self._submitted = 0
        self._completed = 0
        self._failed = 0
        self._cache_hits = 0
        self._coalesced = 0
        self._computed = 0
        self._batches = 0
        self._handler_errors = 0
        self._backend_requests: dict[str, int] = {}
        self._ledger_totals: dict[str, dict[str, int]] = {}

    def _observe_latency(self, latency_s: float) -> None:
        """Fold one resolution latency into the window and the histogram.

        Caller holds ``self._lock``; ``LatencyHistogram`` has its own
        lock and never calls back out, so nesting is safe.
        """
        ms = latency_s * 1e3
        self._latencies_ms.append(ms)
        self._latency_hist.observe(ms)

    # -- write side ----------------------------------------------------
    def record_submit(self) -> None:
        with self._lock:
            self._submitted += 1

    def record_cache_hit(self, latency_s: float = 0.0) -> None:
        with self._lock:
            self._cache_hits += 1
            self._completed += 1
            self._observe_latency(latency_s)

    def record_coalesced(self) -> None:
        """A submission attached to an identical in-flight request."""
        with self._lock:
            self._coalesced += 1

    def record_coalesced_resolution(self, latency_s: float, failed: bool) -> None:
        """The shared future of a coalesced submission resolved."""
        with self._lock:
            if failed:
                self._failed += 1
            else:
                self._completed += 1
            self._observe_latency(latency_s)

    def record_batch(self, size: int) -> None:
        with self._lock:
            self._batches += 1
            self._occupancy.observe(size)

    def record_handler_error(self) -> None:
        """The dispatch handler raised (worker-pool backstop engaged)."""
        with self._lock:
            self._handler_errors += 1

    def record_completion(
        self,
        backend: str,
        latency_s: float,
        ledger: RunLedger | None,
        convergence: dict | None = None,
    ) -> None:
        """One computed request resolved successfully.

        ``convergence`` is the optional
        :meth:`~repro.api.RunResult.convergence` summary of the result
        (``None`` for backends without per-round history); it feeds the
        rounds histogram and the final-gap window of the snapshot's
        ``convergence`` block.
        """
        with self._lock:
            self._completed += 1
            self._computed += 1
            self._observe_latency(latency_s)
            if convergence is not None:
                self._convergence_requests += 1
                rounds = convergence.get("rounds")
                if rounds is not None:
                    self._rounds.observe(int(rounds))
                gap = convergence.get("final_gap")
                if gap is not None:
                    self._gaps.append(float(gap))
            self._backend_requests[backend] = (
                self._backend_requests.get(backend, 0) + 1
            )
            if ledger is not None:
                totals = self._ledger_totals.setdefault(backend, {})
                for name in _SUM_FIELDS:
                    value = getattr(ledger, name)
                    if value is not None:
                        totals[name] = totals.get(name, 0) + int(value)
                for name in _MAX_FIELDS:
                    value = getattr(ledger, name)
                    if value is not None:
                        totals[name] = max(totals.get(name, 0), int(value))

    def record_failure(
        self, backend: str, latency_s: float, computed: bool = True
    ) -> None:
        """A request resolved with an error.  ``computed=False`` marks
        work abandoned before dispatch (drained at close), which counts
        as failed but not as executed."""
        with self._lock:
            self._failed += 1
            if computed:
                self._computed += 1
                self._backend_requests[backend] = (
                    self._backend_requests.get(backend, 0) + 1
                )
            self._observe_latency(latency_s)

    # -- read side -------------------------------------------------------
    def snapshot(self) -> ServiceStats:
        with self._lock:
            latencies = list(self._latencies_ms)
            submitted = self._submitted
            deduplicated = self._cache_hits + self._coalesced
            convergence: dict = {}
            if self._convergence_requests:
                gaps = list(self._gaps)
                convergence = {
                    "requests": self._convergence_requests,
                    "rounds": self._rounds.as_dict(),
                    "mean_rounds": self._rounds.mean(),
                    "gap_p50": percentile(gaps, 50.0),
                    "gap_p95": percentile(gaps, 95.0),
                }
            return ServiceStats(
                submitted=submitted,
                completed=self._completed,
                failed=self._failed,
                cache_hits=self._cache_hits,
                coalesced=self._coalesced,
                computed=self._computed,
                batches=self._batches,
                latency_p50_ms=percentile(latencies, 50.0),
                latency_p95_ms=percentile(latencies, 95.0),
                batch_occupancy=self._occupancy.as_dict(),
                mean_occupancy=self._occupancy.mean(),
                cache_hit_rate=deduplicated / submitted if submitted else 0.0,
                backend_requests=dict(self._backend_requests),
                ledger_totals={
                    k: dict(v) for k, v in self._ledger_totals.items()
                },
                handler_errors=self._handler_errors,
                latency_histogram=self._latency_hist.snapshot(),
                convergence=convergence,
            )
