"""Content-addressed result cache for the matching service.

Results are keyed by ``"<backend>:<problem-fingerprint>"`` -- the
canonical content address built from :meth:`repro.util.graph.Graph.
fingerprint` and the canonical JSON of the problem's config, task,
budgets and options (see :meth:`repro.api.Problem.fingerprint`).  Every
backend is deterministic given the problem (and its seed), so a cached
:class:`~repro.api.RunResult` *is* the result of re-running the
problem; the cache returns the stored object itself, which makes hits
bit-identical by construction.

The cache is a bounded thread-safe LRU.  Problems whose options have no
canonical JSON form (external ledgers, pre-built engines/streams) and
problems with ``seed=None`` on seed-consuming backends are not content
addresses in the reproducible sense; the service bypasses the cache for
the former and documents the latter (``docs/service.md``).
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any

__all__ = ["CacheStats", "ResultCache"]


@dataclass(frozen=True)
class CacheStats:
    """Immutable cache-counter snapshot."""

    hits: int
    misses: int
    evictions: int
    size: int
    capacity: int
    #: Entries removed by explicit invalidation (session updates), as
    #: opposed to LRU-capacity ``evictions``.
    invalidations: int = 0

    @property
    def hit_rate(self) -> float:
        """Hits over lookups (0.0 when the cache was never consulted)."""
        lookups = self.hits + self.misses
        return self.hits / lookups if lookups else 0.0


class ResultCache:
    """Bounded thread-safe LRU map from content address to result.

    ``capacity <= 0`` disables storage entirely (every ``get`` misses,
    ``put`` is a no-op) -- the switch the service uses for
    ``cache_capacity=0``.
    """

    def __init__(self, capacity: int = 2048):
        self.capacity = int(capacity)
        self._store: OrderedDict[str, Any] = OrderedDict()
        self._lock = threading.Lock()
        self._hits = 0
        self._misses = 0
        self._evictions = 0
        self._invalidations = 0

    def get(self, key: str) -> Any | None:
        """Return the cached result for ``key`` (and mark it
        most-recently-used), or ``None`` on a miss."""
        with self._lock:
            try:
                value = self._store[key]
            except KeyError:
                self._misses += 1
                return None
            self._store.move_to_end(key)
            self._hits += 1
            return value

    def put(self, key: str, value: Any) -> None:
        """Insert (or refresh) ``key``, evicting the LRU entry on overflow."""
        if self.capacity <= 0:
            return
        with self._lock:
            self._store[key] = value
            self._store.move_to_end(key)
            while len(self._store) > self.capacity:
                self._store.popitem(last=False)
                self._evictions += 1

    def evict_many(self, keys) -> int:
        """Explicitly drop the given keys; returns how many were present.

        The fingerprint-delta invalidation primitive: a session update
        hands the set of content addresses it previously populated, and
        exactly those entries leave the cache -- every other session's
        (and every direct submitter's not-shared) entries stay.  Keys
        that were never cached, or already evicted by LRU pressure, are
        skipped silently: eviction is idempotent.
        """
        dropped = 0
        with self._lock:
            for key in keys:
                if self._store.pop(key, None) is not None:
                    dropped += 1
            self._invalidations += dropped
        return dropped

    def __len__(self) -> int:
        with self._lock:
            return len(self._store)

    def __contains__(self, key: str) -> bool:
        with self._lock:
            return key in self._store

    def clear(self) -> None:
        with self._lock:
            self._store.clear()

    def stats(self) -> CacheStats:
        with self._lock:
            return CacheStats(
                hits=self._hits,
                misses=self._misses,
                evictions=self._evictions,
                size=len(self._store),
                capacity=self.capacity,
                invalidations=self._invalidations,
            )
