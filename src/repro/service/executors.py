"""Group executors: where a planned dispatch group actually runs.

The service pipeline is split in two along the thread/process seam:

* the :class:`~repro.service.workers.ShardedWorkerPool` owns the
  *queues* -- routing, micro-batch collection, drain-on-shutdown --
  and always lives in the serving process;
* a :class:`GroupExecutor` owns the *computation* of one planned
  dispatch group (same backend, same batch key -- the unit
  :func:`~repro.service.batching.plan_dispatch` emits).

:class:`LocalExecutor` runs groups in the collector thread itself (the
historical in-process behavior: fine for numpy-heavy work that releases
the GIL, and the only option for problems that cannot be serialized).
:class:`repro.server.procpool.ProcessGroupExecutor` implements the same
interface over a pool of worker *processes* with shared-memory problem
transport, which is how ``MatchingService(pool="process")`` escapes the
GIL for CPU-bound solves.

The contract every implementation must honor (pinned by the parity
batteries in ``tests/test_service.py`` / ``tests/test_server_procpool.
py``): ``run_group(backend, problems)`` returns exactly what
``get_backend(backend).run_many(problems)`` (or ``.run`` for a
singleton) would return in process -- same matchings, certificates,
ledgers, digests.
"""

from __future__ import annotations

from repro import obs
from repro.api import RunResult, get_backend

__all__ = ["GroupExecutor", "LocalExecutor"]


class GroupExecutor:
    """Executes one planned dispatch group; see module docstring.

    ``kind`` names the execution substrate (``"thread"`` /
    ``"process"``) for stats and bench metadata.  ``close`` releases
    any resources; the service calls it after its worker pool has
    drained, so no ``run_group`` call is in flight by then.
    """

    kind: str = "?"

    def run_group(self, backend: str, problems: list) -> list[RunResult]:
        raise NotImplementedError

    def close(self) -> None:  # pragma: no cover - trivial default
        pass


class LocalExecutor(GroupExecutor):
    """Run the group on the calling (collector) thread, in process."""

    kind = "thread"

    def run_group(self, backend: str, problems: list) -> list[RunResult]:
        be = get_backend(backend)
        with obs.span("worker_compute", backend=backend, problems=len(problems)):
            if len(problems) == 1:
                return [be.run(problems[0])]
            return be.run_many(problems)
