"""Structured JSON event logging and slow-request sampling.

The spans in :mod:`repro.obs.spans` answer "where did *this* request's
time go"; the event log answers "what has the process been doing" in a
machine-parseable stream.  One JSON object per line, flat schema::

    {"ts": 1723286400.123456, "level": "warning", "logger": "repro.server",
     "event": "slow_request", "server_ms": 812.4, "queue_ms": 700.2, ...}

``ts`` is Unix epoch seconds, ``event`` a stable snake_case name, and
every extra field a JSON-safe scalar.  :func:`log_event` emits through
the ordinary :mod:`logging` machinery, so the stream honors logger
levels/handlers and interleaves with third-party log config;
:func:`enable_json_logs` (behind ``python -m repro.server --log-json``)
switches a logger subtree to this format.

:class:`SlowRequestLog` is the sampled tail-latency reporter: requests
slower than a threshold are logged (every ``sample``-th one, so a
saturated server cannot flood its own log), everything else costs one
comparison.
"""

from __future__ import annotations

import json
import logging
import threading

__all__ = [
    "JsonLineFormatter",
    "SlowRequestLog",
    "enable_json_logs",
    "log_event",
]


def _json_safe(value):
    """Clamp a field to something ``json.dumps`` accepts losslessly."""
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, dict):
        return {str(k): _json_safe(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_json_safe(v) for v in value]
    return str(value)


class JsonLineFormatter(logging.Formatter):
    """Render every log record as one JSON object per line.

    Records emitted by :func:`log_event` contribute their ``event``
    name and structured fields; plain ``logger.info("...")`` records
    come through with their formatted message as the ``event``, so one
    handler serves both styles.
    """

    def format(self, record: logging.LogRecord) -> str:
        entry = {
            "ts": round(record.created, 6),
            "level": record.levelname.lower(),
            "logger": record.name,
            "event": getattr(record, "event", None) or record.getMessage(),
        }
        fields = getattr(record, "fields", None)
        if fields:
            for key, value in fields.items():
                entry.setdefault(str(key), _json_safe(value))
        if record.exc_info:
            entry["exc"] = self.formatException(record.exc_info)
        return json.dumps(entry, sort_keys=True)


def log_event(
    logger: logging.Logger, event: str, *, level: int = logging.INFO, **fields
) -> None:
    """Emit one structured event through ``logger``.

    The event name doubles as the log message, so non-JSON handlers
    still show something readable; JSON handlers flatten ``fields``
    into the object (reserved keys -- ``ts``/``level``/``logger``/
    ``event`` -- cannot be overridden).
    """
    logger.log(
        level, "%s", event, extra={"event": event, "fields": fields}
    )


def enable_json_logs(
    logger_name: str = "repro",
    *,
    stream=None,
    level: int = logging.INFO,
) -> logging.Handler:
    """Attach a JSON-lines handler to ``logger_name``; returns it.

    The returned handler can be removed again
    (``logging.getLogger(name).removeHandler(handler)``) -- tests do,
    servers usually keep it for life.
    """
    logger = logging.getLogger(logger_name)
    handler = logging.StreamHandler(stream)
    handler.setFormatter(JsonLineFormatter())
    logger.addHandler(handler)
    if logger.level == logging.NOTSET or logger.level > level:
        logger.setLevel(level)
    return handler


class SlowRequestLog:
    """Sampled logging of requests above a latency threshold.

    Parameters
    ----------
    logger:
        Destination logger (events are WARNING level: a slow request is
        actionable, not an error).
    threshold_ms:
        Requests at or above this end-to-end latency are candidates;
        ``None`` disables the reporter entirely (the default server
        configuration).
    sample:
        Log every ``sample``-th candidate (1 = all).  Deterministic
        counting rather than random sampling, so tests and log-based
        alerting see a predictable stream.
    """

    def __init__(
        self,
        logger: logging.Logger,
        threshold_ms: float | None,
        sample: int = 1,
    ):
        if sample < 1:
            raise ValueError("sample must be >= 1")
        self.logger = logger
        self.threshold_ms = threshold_ms
        self.sample = int(sample)
        self.seen = 0  # candidates observed (logged + sampled away)
        self._lock = threading.Lock()

    def observe(self, server_ms: float, **fields) -> bool:
        """Consider one finished request; returns True when logged."""
        threshold = self.threshold_ms
        if threshold is None or server_ms < threshold:
            return False
        with self._lock:
            self.seen += 1
            take = (self.seen - 1) % self.sample == 0
        if take:
            log_event(
                self.logger,
                "slow_request",
                level=logging.WARNING,
                server_ms=round(float(server_ms), 3),
                threshold_ms=float(threshold),
                **fields,
            )
        return take
