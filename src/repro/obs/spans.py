"""Hierarchical spans: the request-tracing primitive of :mod:`repro.obs`.

A :class:`Span` is one named, timed piece of work; a *trace* is a tree
of spans rooted at :func:`trace`.  The active span is carried in a
:mod:`contextvars` variable, so nested ``with span(...)`` blocks build
the tree without threading a handle through every call -- and library
code can drop :func:`span_event` markers that simply vanish when no
trace is active.

Pay-for-what-you-use is the design constraint: with no active trace,
:func:`span` yields ``None`` after a single context-variable read and
:func:`span_event` is a read plus an ``is None`` check.  The serving
stack leaves its instrumentation permanently in place and only requests
carrying ``trace: true`` ever allocate a span.

Crossing threads and processes
------------------------------
Context variables do not follow work into executor threads or worker
processes, so the boundaries are explicit:

* :func:`attach` re-activates an existing span in another thread
  (the front end attaches the request's span inside
  ``run_in_executor`` callables; the service attaches its dispatch-
  group span around ``run_group``);
* :meth:`Span.as_dict` / :meth:`Span.from_dict` serialize a subtree to
  JSON-safe data, which is how a worker process's span crosses the
  control pipe back to the parent (see
  :func:`repro.server.codec.encode_trace`) and how the front end
  returns the finished tree in the response header;
* :meth:`Span.graft` adopts such a rebuilt subtree into the local tree.

All timestamps are ``time.monotonic()`` seconds.  On Linux that clock
is system-wide, so spans grafted from a worker process line up with the
parent's timeline; consumers should nevertheless rely on *durations*
(``duration_ms``), which are always well-defined.

Finished root spans land in a bounded :class:`TraceBuffer` (a ring
buffer), so a long-running server retains the most recent traces at
O(capacity) memory.
"""

from __future__ import annotations

import contextlib
import contextvars
import threading
import time
from collections import deque
from typing import Iterator

__all__ = [
    "Span",
    "TraceBuffer",
    "attach",
    "current_span",
    "default_buffer",
    "span",
    "span_event",
    "trace",
]

#: Hard caps so a traced request in a pathological loop cannot grow an
#: unbounded tree: past the cap, events/children are counted, not kept.
MAX_EVENTS_PER_SPAN = 256
MAX_CHILDREN_PER_SPAN = 128

_ACTIVE: "contextvars.ContextVar[Span | None]" = contextvars.ContextVar(
    "repro_obs_active_span", default=None
)

_MISSING = object()


class Span:
    """One named, timed node of a trace tree.

    ``start`` is a ``time.monotonic()`` stamp (injectable, so a span
    can be backdated to an event that was stamped before tracing
    decided to record it -- e.g. queue-wait measured from the arrival
    stamp).  ``end`` is ``None`` until :meth:`finish`.
    """

    __slots__ = (
        "name",
        "meta",
        "start",
        "end",
        "children",
        "events",
        "dropped_events",
        "dropped_children",
    )

    def __init__(
        self, name: str, meta: dict | None = None, start: float | None = None
    ):
        self.name = str(name)
        self.meta = dict(meta) if meta else {}
        self.start = time.monotonic() if start is None else float(start)
        self.end: float | None = None
        self.children: list[Span] = []
        self.events: list[dict] = []
        self.dropped_events = 0
        self.dropped_children = 0

    # -- timing ----------------------------------------------------------
    @property
    def duration_ms(self) -> float | None:
        """Span duration in milliseconds (``None`` while unfinished)."""
        if self.end is None:
            return None
        return (self.end - self.start) * 1e3

    def finish(self, at: float | None = None) -> "Span":
        """Stamp the end time (idempotent; first call wins)."""
        if self.end is None:
            self.end = time.monotonic() if at is None else float(at)
        return self

    # -- tree building ---------------------------------------------------
    def child(
        self, name: str, meta: dict | None = None, start: float | None = None
    ) -> "Span":
        """Create and adopt a child span (bounded; see module caps)."""
        node = Span(name, meta, start)
        if len(self.children) >= MAX_CHILDREN_PER_SPAN:
            self.dropped_children += 1
        else:
            self.children.append(node)
        return node

    def graft(self, subtree: "Span") -> "Span":
        """Adopt an already-built subtree (e.g. one rebuilt from a
        worker process's serialized trace)."""
        if len(self.children) >= MAX_CHILDREN_PER_SPAN:
            self.dropped_children += 1
        else:
            self.children.append(subtree)
        return subtree

    def event(self, name: str, **fields) -> None:
        """Record a point-in-time marker inside this span.

        ``at_ms`` is milliseconds since the span started; extra fields
        ride along verbatim (keep them JSON-safe scalars).
        """
        if len(self.events) >= MAX_EVENTS_PER_SPAN:
            self.dropped_events += 1
            return
        evt = {
            "name": str(name),
            "at_ms": (time.monotonic() - self.start) * 1e3,
        }
        if fields:
            evt.update(fields)
        self.events.append(evt)

    # -- introspection ---------------------------------------------------
    def walk(self) -> Iterator["Span"]:
        """Yield this span and every descendant, depth-first."""
        yield self
        for child in self.children:
            yield from child.walk()

    def find(self, name: str) -> "Span | None":
        """First span named ``name`` in depth-first order (or ``None``)."""
        for node in self.walk():
            if node.name == name:
                return node
        return None

    # -- serialization ---------------------------------------------------
    def as_dict(self) -> dict:
        """JSON-safe tree: the wire/pipe form of a trace.

        Durations are primary (``duration_ms``); ``start`` is kept so
        siblings order/line up when the producing clock is shared.
        """
        blob: dict = {
            "name": self.name,
            "start": self.start,
            "duration_ms": self.duration_ms,
        }
        if self.meta:
            blob["meta"] = dict(self.meta)
        if self.events:
            blob["events"] = [dict(evt) for evt in self.events]
        if self.children:
            blob["children"] = [child.as_dict() for child in self.children]
        if self.dropped_events:
            blob["dropped_events"] = self.dropped_events
        if self.dropped_children:
            blob["dropped_children"] = self.dropped_children
        return blob

    @classmethod
    def from_dict(cls, blob: dict) -> "Span":
        """Rebuild a span tree serialized by :meth:`as_dict`."""
        node = cls(
            blob["name"], blob.get("meta"), start=float(blob.get("start", 0.0))
        )
        duration_ms = blob.get("duration_ms")
        if duration_ms is not None:
            node.end = node.start + float(duration_ms) / 1e3
        node.events = [dict(evt) for evt in blob.get("events", ())]
        node.children = [cls.from_dict(c) for c in blob.get("children", ())]
        node.dropped_events = int(blob.get("dropped_events", 0))
        node.dropped_children = int(blob.get("dropped_children", 0))
        return node

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        dur = self.duration_ms
        shown = "..." if dur is None else f"{dur:.3f}ms"
        return (
            f"Span({self.name!r}, {shown}, children={len(self.children)}, "
            f"events={len(self.events)})"
        )


class TraceBuffer:
    """Bounded ring buffer of finished root spans (newest kept).

    Thread-safe; ``pushed`` counts every completed trace, so
    ``pushed - len(buffer)`` is the number evicted by the ring.
    """

    def __init__(self, capacity: int = 64):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self._lock = threading.Lock()
        self._spans: deque[Span] = deque(maxlen=int(capacity))
        self.pushed = 0

    @property
    def capacity(self) -> int:
        return self._spans.maxlen  # type: ignore[return-value]

    def push(self, root: Span) -> None:
        with self._lock:
            self._spans.append(root)
            self.pushed += 1

    def snapshot(self) -> list[Span]:
        """Oldest-to-newest copy of the retained traces."""
        with self._lock:
            return list(self._spans)

    def __len__(self) -> int:
        with self._lock:
            return len(self._spans)


_DEFAULT_BUFFER = TraceBuffer(64)


def default_buffer() -> TraceBuffer:
    """The process-wide buffer :func:`trace` pushes to by default."""
    return _DEFAULT_BUFFER


def current_span() -> Span | None:
    """The active span of this thread/task (``None`` = tracing off)."""
    return _ACTIVE.get()


@contextlib.contextmanager
def trace(name: str, *, buffer=_MISSING, **meta):
    """Open a trace: a root :class:`Span` active for the ``with`` body.

    On exit the root is finished and pushed to ``buffer`` (the
    process-wide :func:`default_buffer` unless overridden; pass
    ``buffer=None`` to keep the trace out of any buffer -- e.g. when
    the caller ships it elsewhere, as the server front end does).
    """
    root = Span(name, meta)
    token = _ACTIVE.set(root)
    try:
        yield root
    finally:
        _ACTIVE.reset(token)
        root.finish()
        sink = _DEFAULT_BUFFER if buffer is _MISSING else buffer
        if sink is not None:
            sink.push(root)


@contextlib.contextmanager
def span(name: str, **meta):
    """A child span under the active one -- or nothing at all.

    With no active trace this yields ``None`` after a single context-
    variable read, which is what makes always-on instrumentation
    affordable (the ``<= 2%`` disabled-path gate in
    ``benchmarks/bench_s9_obs.py``).
    """
    parent = _ACTIVE.get()
    if parent is None:
        yield None
        return
    node = parent.child(name, meta)
    token = _ACTIVE.set(node)
    try:
        yield node
    finally:
        _ACTIVE.reset(token)
        node.finish()


def span_event(name: str, **fields) -> None:
    """Drop an event on the active span; no-op when tracing is off.

    Callers in hot loops should guard expensive field computation with
    :func:`current_span` first -- keyword arguments are evaluated
    before this function can decide to do nothing.
    """
    cur = _ACTIVE.get()
    if cur is not None:
        cur.event(name, **fields)


@contextlib.contextmanager
def attach(node: Span | None):
    """Make an existing span the active one in this thread/task.

    The explicit hand-off across execution boundaries (executor
    threads, collector threads) where context variables do not
    propagate.  ``attach(None)`` is a no-op, so call sites need no
    traced/untraced branching.  The span is *not* finished on exit --
    it belongs to whoever created it.
    """
    if node is None:
        yield None
        return
    token = _ACTIVE.set(node)
    try:
        yield node
    finally:
        _ACTIVE.reset(token)
