"""repro.obs: zero-dependency observability for the serving stack.

Three instruments, layered over the paper's own
:class:`~repro.util.instrumentation.ResourceLedger` (which audits
*model* resources -- rounds, space, messages) to answer the *systems*
questions the ledger cannot: where did this request's milliseconds go,
and why did this solve take the rounds it took.

* **Spans** (:mod:`repro.obs.spans`): hierarchical timers with
  context-variable propagation.  ``trace()`` opens a tree, ``span()``
  nests, ``span_event()`` drops markers, ``attach()`` carries the
  context across threads, and :meth:`Span.as_dict` /
  :meth:`Span.from_dict` carry it across processes and the wire.  With
  no active trace every hook is a single context-variable read -- the
  serving stack keeps its instrumentation permanently in place and
  individual requests opt in (``trace: true``), gated at <= 2%
  disabled-path overhead by ``benchmarks/bench_s9_obs.py``.
* **Events** (:mod:`repro.obs.events`): one-JSON-object-per-line
  structured logging (``--log-json`` on ``python -m repro.server``)
  and sampled slow-request reporting (:class:`SlowRequestLog`).
* **Histograms**: fixed-bucket latency histograms live with the other
  counters in :mod:`repro.util.instrumentation`
  (:class:`~repro.util.instrumentation.LatencyHistogram`) and render
  as Prometheus histogram families via
  :func:`repro.server.metrics.render_prometheus`.

End-to-end story: ``docs/observability.md``.
"""

from repro.obs.events import (
    JsonLineFormatter,
    SlowRequestLog,
    enable_json_logs,
    log_event,
)
from repro.obs.spans import (
    Span,
    TraceBuffer,
    attach,
    current_span,
    default_buffer,
    span,
    span_event,
    trace,
)

__all__ = [
    "JsonLineFormatter",
    "SlowRequestLog",
    "Span",
    "TraceBuffer",
    "attach",
    "current_span",
    "default_buffer",
    "enable_json_logs",
    "log_event",
    "span",
    "span_event",
    "trace",
]
