"""Canonical turnstile update log: the wire format of dynamic sessions.

A dynamic-graph workload is a sequence of edge insertions and deletions
(the *strict turnstile* model of the AGM dynamic graph streams [4]: an
edge is either absent or present with one weight; multiplicities stay
in ``{0, 1}``).  This module fixes one canonical, JSON-friendly
encoding for that sequence so the same log can

* drive a live :class:`~repro.dynamic.session.DynamicGraphSession`,
* travel inside ``Problem.options['updates']`` to the registered
  ``dynamic`` backend (the encoding is canonical-JSON in the sense of
  :meth:`repro.api.Problem.fingerprint`, so update-log problems stay
  content-addressable for the service cache), and
* be replayed onto a :class:`~repro.streaming.stream.DynamicEdgeStream`
  for cross-checking against the one-shot sketch pipeline.

Encoding::

    ["+", u, v, w]   insert edge {u, v} with weight w
    ["-", u, v]      delete edge {u, v} (weight looked up from state)

Endpoints are arbitrary-order; consumers canonicalize.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

__all__ = ["GraphUpdate", "normalize_updates", "canonical_updates"]

INSERT = "+"
DELETE = "-"


@dataclass(frozen=True)
class GraphUpdate:
    """One strict-turnstile event: insert (with weight) or delete."""

    op: str
    u: int
    v: int
    w: float | None = None

    def __post_init__(self) -> None:
        if self.op not in (INSERT, DELETE):
            raise ValueError(f"unknown update op {self.op!r} (use '+' or '-')")
        if self.u == self.v:
            raise ValueError("self-loop updates are not allowed")
        if self.op == INSERT:
            if self.w is None:
                object.__setattr__(self, "w", 1.0)
            elif not self.w > 0:
                raise ValueError("insert weight must be positive")
        elif self.w is not None:
            raise ValueError("delete updates carry no weight (it is looked up)")

    # ------------------------------------------------------------------
    @classmethod
    def insert(cls, u: int, v: int, w: float = 1.0) -> "GraphUpdate":
        return cls(INSERT, int(u), int(v), float(w))

    @classmethod
    def delete(cls, u: int, v: int) -> "GraphUpdate":
        return cls(DELETE, int(u), int(v))

    # ------------------------------------------------------------------
    def canonical(self) -> list:
        """The JSON-canonical list form (see module docstring)."""
        if self.op == INSERT:
            return [INSERT, int(self.u), int(self.v), float(self.w)]
        return [DELETE, int(self.u), int(self.v)]

    @classmethod
    def from_canonical(cls, item: Sequence) -> "GraphUpdate":
        """Parse one canonical list (accepts tuples and GraphUpdates too)."""
        if isinstance(item, GraphUpdate):
            return item
        if not isinstance(item, (list, tuple)) or not item:
            raise ValueError(f"update must be a ['+'/'-', u, v(, w)] list, got {item!r}")
        op = item[0]
        if op == INSERT:
            if len(item) == 3:
                return cls.insert(item[1], item[2])
            if len(item) == 4:
                return cls.insert(item[1], item[2], item[3])
        elif op == DELETE and len(item) == 3:
            return cls.delete(item[1], item[2])
        raise ValueError(f"malformed update {item!r}")


def normalize_updates(updates: Iterable) -> list[GraphUpdate]:
    """Parse a heterogeneous update iterable into :class:`GraphUpdate` s."""
    return [GraphUpdate.from_canonical(item) for item in updates]


def canonical_updates(updates: Iterable) -> list[list]:
    """Encode updates into the canonical-JSON list-of-lists form, ready
    for ``Problem.options['updates']``."""
    return [GraphUpdate.from_canonical(item).canonical() for item in updates]
