"""`DynamicGraphSession`: query-at-any-time over a turnstile stream.

The session is the dynamic-workload entry point the linearity of the
paper's sketches was always promising: interleave ``insert`` / ``delete``
(single or ``_many``) edge updates with ``query_matching()`` /
``query_forest()`` at any point, with no stream re-reads.

* Updates are O(1) amortized into the exact edge map and one vectorized
  ±1 frequency update into the linear sketch battery
  (:class:`~repro.dynamic.state.DynamicSketchState`).
* ``query_forest`` decodes the *current sketch state* (sketch-Boruvka)
  -- by linearity, bit-identical to a one-shot sketch build over the
  surviving edges with the same seed.
* ``query_matching`` runs the dual-primal solver on the canonically
  materialized surviving graph.  Cold queries (the default) are
  bit-identical to the ``offline`` backend on that graph.  With
  ``warm_start=True`` and a small edit distance since the previous
  query, the solver is warm-started from the previous query's verified
  duals (:class:`~repro.core.matching_solver.WarmStart`): the returned
  certificate is re-verified against the current graph, so the
  (1 - eps) guarantee is intact, but the bits may differ from a cold
  solve (``docs/dynamic.md`` spells out the trade).
* Repeat queries with no intervening edits return the previous
  ``RunResult`` object itself (content-addressed: the graph cannot
  have changed).

Sessions compose with the serving layer through
:meth:`repro.service.MatchingService.open_session`, which adds
fingerprint-delta cache invalidation on top.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from repro.core.matching_solver import (
    DualPrimalMatchingSolver,
    SolverConfig,
    WarmStart,
)
from repro.dynamic.state import DynamicSketchState, TurnstileGraphState
from repro.dynamic.updates import normalize_updates
from repro.util.graph import Graph
from repro.util.instrumentation import ResourceLedger

__all__ = ["DynamicGraphSession", "SessionStats"]


@dataclass
class SessionStats:
    """Counters a session accumulates over its lifetime."""

    inserts: int = 0
    deletes: int = 0
    matching_queries: int = 0
    forest_queries: int = 0
    #: Queries answered by returning the previous result object
    #: (no edits since the last query of the same task).
    unchanged_hits: int = 0
    #: Matching queries solved with a warm-started solver.
    warm_solves: int = 0
    #: Warm solves that terminated in zero sampling rounds (the lifted
    #: dual certified the folded incumbent immediately).
    warm_fastpath: int = 0
    cold_solves: int = 0
    sketch_space_words: int = 0

    def as_row(self) -> dict:
        return dict(self.__dict__)


@dataclass
class _TaskMemo:
    """Last answer for one query task: the result + the edit version."""

    result: object = None
    version: int = -1


class DynamicGraphSession:
    """Maintain a dynamic graph; answer matching/forest queries any time.

    Parameters
    ----------
    n:
        Vertex count (fixed for the session's lifetime).
    config:
        :class:`~repro.core.matching_solver.SolverConfig` for matching
        queries; ``config.seed`` also seeds the sketch battery unless
        ``seed`` overrides it.
    base_graph:
        Optional starting graph (its ``b`` vector, if any, carries
        through to every materialized graph).
    warm_start:
        Enable warm-started matching solves (default off: every query
        is then bit-identical to the ``offline`` backend on the current
        graph -- the mode the turnstile-parity battery pins).
    warm_start_max_edits:
        Edit-distance ceiling for reusing the previous duals; beyond
        it the session solves cold (a large burst invalidates most of
        what the old dual knew anyway).
    warm_slack:
        Optional overshoot: how much tighter than the serving target
        the session's *real* solves aim (``target_gap - warm_slack``),
        banking certification margin for later warm queries to spend.
        Default 0 (the 2-opt primal repair usually keeps the fast path
        hot without it; overshooting makes the occasional real solve
        pricier).  Only consulted when ``warm_start=True`` -- parity
        mode never alters the config.
    maintain_sketches:
        Keep the linear sketch battery up to date (required for
        ``query_forest`` / support sampling).
    track_weight_classes, w_min, w_max, repetitions, support_rows:
        Forwarded to :class:`~repro.dynamic.state.DynamicSketchState`.
    """

    def __init__(
        self,
        n: int,
        *,
        config: SolverConfig | None = None,
        base_graph: Graph | None = None,
        seed: int | np.random.Generator | None = None,
        warm_start: bool = False,
        warm_start_max_edits: int = 64,
        warm_slack: float = 0.0,
        maintain_sketches: bool = True,
        track_weight_classes: bool = True,
        w_min: float = 1.0,
        w_max: float = 2.0**40,
        repetitions: int = 8,
        support_rows: int = 4,
    ):
        self.config = config if config is not None else SolverConfig()
        self.warm_start = bool(warm_start)
        self.warm_start_max_edits = int(warm_start_max_edits)
        self.warm_slack = float(warm_slack)
        # serving gap: what every answer is certified against; in warm
        # mode real solves aim warm_slack tighter to bank margin
        self._serve_gap = (
            self.config.target_gap
            if self.config.target_gap is not None
            else self.config.eps
        )
        if self.warm_start and self.warm_slack > 0.0:
            self._solve_config = replace(
                self.config,
                target_gap=max(self._serve_gap - self.warm_slack, 0.0),
            )
        else:
            self._solve_config = self.config
        self.stats = SessionStats()
        self._state = TurnstileGraphState(n, base_graph=base_graph)
        self._sketches = (
            DynamicSketchState(
                n,
                seed=seed if seed is not None else self.config.seed,
                repetitions=repetitions,
                track_weight_classes=track_weight_classes,
                w_min=w_min,
                w_max=w_max,
                support_rows=support_rows,
            )
            if maintain_sketches
            else None
        )
        self._memo: dict[str, _TaskMemo] = {
            "matching": _TaskMemo(),
            "spanning_forest": _TaskMemo(),
        }
        self._warm: WarmStart | None = None
        self._warm_version: int = -1
        if base_graph is not None and self._sketches is not None and base_graph.m:
            # one +1 per base edge: the sketch battery starts cell-identical
            # to a one-shot build over the base graph
            self._sketches.apply_updates(
                base_graph.src,
                base_graph.dst,
                base_graph.weight,
                np.ones(base_graph.m, dtype=np.int64),
            )

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def n(self) -> int:
        return self._state.n

    @property
    def m(self) -> int:
        """Surviving edge count."""
        return self._state.m

    @property
    def version(self) -> int:
        """Monotone edit counter (one tick per applied update)."""
        return self._state.version

    @property
    def sketches(self) -> DynamicSketchState | None:
        return self._sketches

    def graph(self) -> Graph:
        """The surviving graph in canonical edge order (cached)."""
        return self._state.graph()

    def fingerprint(self) -> str:
        """Content address of the surviving graph."""
        return self._state.fingerprint()

    def contains(self, u: int, v: int) -> bool:
        return self._state.contains(u, v)

    def session_stats(self) -> SessionStats:
        if self._sketches is not None:
            self.stats.sketch_space_words = self._sketches.space_words()
        return self.stats

    # ------------------------------------------------------------------
    # Updates
    # ------------------------------------------------------------------
    def _check_weights(self, w: np.ndarray) -> None:
        if self._sketches is not None:
            self._sketches.check_weights(w)

    def insert(self, u: int, v: int, w: float = 1.0) -> None:
        """Insert edge ``{u, v}`` (strict: duplicate inserts raise)."""
        self._check_weights(np.asarray([float(w)]))  # before any mutation
        key = self._state.insert(u, v, w)
        self.stats.inserts += 1
        if self._sketches is not None:
            self._sketches.apply_updates(
                np.asarray([key[0]]),
                np.asarray([key[1]]),
                np.asarray([float(w)]),
                np.asarray([1]),
            )

    def delete(self, u: int, v: int) -> None:
        """Delete edge ``{u, v}`` (strict: absent deletes raise).  The
        stored weight cancels the matching insert in every sketch."""
        key = self._state.validate_delete(u, v)  # canonical key, one place
        w = self._state.delete(*key)
        self.stats.deletes += 1
        if self._sketches is not None:
            self._sketches.apply_updates(
                np.asarray([key[0]]),
                np.asarray([key[1]]),
                np.asarray([w]),
                np.asarray([-1]),
            )

    def insert_many(
        self,
        u: np.ndarray,
        v: np.ndarray,
        w: np.ndarray | None = None,
    ) -> None:
        """Burst insert: one vectorized sketch update for the burst.

        Atomic: the whole burst (strictness, intra-burst duplicates,
        weight range) is validated before anything mutates, so a
        failing event cannot leave a half-applied prefix behind.
        """
        u = np.asarray(u, dtype=np.int64)
        v = np.asarray(v, dtype=np.int64)
        ww = np.ones(len(u)) if w is None else np.asarray(w, dtype=np.float64)
        if len(u) != len(v) or len(u) != len(ww):
            raise ValueError("insert_many arrays must have equal length")
        keys = []
        seen: set[tuple[int, int]] = set()
        for a, b, wt in zip(u, v, ww):
            key = self._state.validate_insert(int(a), int(b), float(wt))
            if key in seen:
                raise ValueError(f"edge {key} appears twice in one insert burst")
            seen.add(key)
            keys.append(key)
        self._check_weights(ww)
        for key, wt in zip(keys, ww):
            self._state.insert(key[0], key[1], float(wt))
        self.stats.inserts += len(keys)
        if self._sketches is not None and keys:
            self._sketches.apply_updates(
                np.asarray([k[0] for k in keys]),
                np.asarray([k[1] for k in keys]),
                ww,
                np.ones(len(keys), dtype=np.int64),
            )

    def delete_many(self, u: np.ndarray, v: np.ndarray) -> None:
        """Burst delete: weights looked up per edge, one vectorized
        negative-frequency sketch update for the whole burst.

        Atomic, like :meth:`insert_many`: validation precedes mutation.
        """
        u = np.asarray(u, dtype=np.int64)
        v = np.asarray(v, dtype=np.int64)
        if len(u) != len(v):
            raise ValueError("delete_many arrays must have equal length")
        keys = []
        seen: set[tuple[int, int]] = set()
        for a, b in zip(u, v):
            key = self._state.validate_delete(int(a), int(b))
            if key in seen:
                raise ValueError(f"edge {key} appears twice in one delete burst")
            seen.add(key)
            keys.append(key)
        removed = [(k[0], k[1], self._state.delete(k[0], k[1])) for k in keys]
        self.stats.deletes += len(removed)
        if self._sketches is not None and removed:
            self._sketches.apply_updates(
                np.asarray([r[0] for r in removed]),
                np.asarray([r[1] for r in removed]),
                np.asarray([r[2] for r in removed]),
                np.full(len(removed), -1, dtype=np.int64),
            )

    def apply(self, updates) -> None:
        """Apply a mixed update log (canonical lists or
        :class:`~repro.dynamic.updates.GraphUpdate` s), in order."""
        for up in normalize_updates(updates):
            if up.op == "+":
                self.insert(up.u, up.v, up.w)
            else:
                self.delete(up.u, up.v)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def query_matching(self):
        """Solve maximum-weight b-matching on the *current* graph.

        Returns a :class:`~repro.api.RunResult` (``backend="dynamic"``,
        ``task="matching"``).  Cold mode (``warm_start=False``) is
        bit-identical to ``run(Problem(graph), backend="offline")`` on
        the materialized graph -- pinned by the turnstile-parity
        battery.  Warm mode reuses the previous query's verified duals
        when the edit distance allows (see the class docstring).
        """
        from repro.api import RunLedger, RunResult

        memo = self._memo["matching"]
        if memo.result is not None and memo.version == self._state.version:
            self.stats.unchanged_hits += 1
            return memo.result
        self.stats.matching_queries += 1
        graph = self._state.graph()
        warm = None
        if (
            self.warm_start
            and self._warm is not None
            and self._state.version - self._warm_version <= self.warm_start_max_edits
        ):
            warm = self._warm
            self.stats.warm_solves += 1
        else:
            self.stats.cold_solves += 1
        result = DualPrimalMatchingSolver(self._solve_config).solve(
            graph, warm_start=warm
        )
        if warm is not None and result.rounds == 0:
            self.stats.warm_fastpath += 1
        run_result = RunResult(
            backend="dynamic",
            task="matching",
            matching=result.matching,
            certificate=result.certificate,
            ledger=RunLedger.from_snapshot("dynamic", result.resources),
            raw=result,
            extras={
                "session_version": self._state.version,
                "warm_started": warm is not None,
            },
        )
        memo.result = run_result
        memo.version = self._state.version
        if self.warm_start:
            self._warm = WarmStart.from_result(result, accept_gap=self._serve_gap)
            self._warm_version = self._state.version
        return run_result

    def query_forest(self):
        """Spanning forest decoded from the current sketch state.

        Returns a :class:`~repro.api.RunResult` (``task=
        "spanning_forest"``).  No stream re-read, no edge-map access:
        the answer is a pure function of the linear sketch cells, hence
        bit-identical to replaying the session's whole update history
        through :func:`~repro.streaming.semi_streaming.
        dynamic_stream_spanning_forest` with the same seed.
        """
        from repro.api import RunLedger, RunResult

        if self._sketches is None:
            raise RuntimeError(
                "query_forest needs maintain_sketches=True for this session"
            )
        memo = self._memo["spanning_forest"]
        if memo.result is not None and memo.version == self._state.version:
            self.stats.unchanged_hits += 1
            return memo.result
        self.stats.forest_queries += 1
        ledger = ResourceLedger()
        ledger.tick_sampling_round("dynamic session sketch state")
        ledger.charge_stream(self._sketches.updates_applied)
        ledger.charge_space(self._sketches.space_words())
        forest = self._sketches.forest(ledger=ledger)
        run_result = RunResult(
            backend="dynamic",
            task="spanning_forest",
            forest=forest,
            ledger=RunLedger.from_snapshot("dynamic", ledger.snapshot()),
            raw=forest,
            extras={"session_version": self._state.version},
        )
        memo.result = run_result
        memo.version = self._state.version
        return run_result
