"""Dynamic turnstile-graph sessions: incremental sketch maintenance,
query-at-any-time solves, and the ``dynamic`` execution backend.

The paper's sketches are *linear* -- precisely the property that makes
them work on dynamic (insert **and** delete) streams.  This package
opens that workload:

* :class:`~repro.dynamic.session.DynamicGraphSession` -- interleave
  edge updates with ``query_matching()`` / ``query_forest()``; linear
  sketch state is maintained incrementally, matching solves can be
  warm-started from the previous query's verified duals.
* :class:`~repro.dynamic.state.TurnstileGraphState` /
  :class:`~repro.dynamic.state.DynamicSketchState` -- the exact edge
  map and the incrementally maintained sketch battery.
* :mod:`~repro.dynamic.updates` -- the canonical, JSON-fingerprintable
  update-log encoding.
* :class:`~repro.dynamic.backend.DynamicBackend` -- ``dynamic`` in the
  :mod:`repro.api` registry: update-log problems through the facade,
  bit-identical to ``offline`` on the final graph.

See ``docs/dynamic.md`` for the update model and warm-start semantics.
"""

from repro.dynamic.backend import DynamicBackend
from repro.dynamic.session import DynamicGraphSession, SessionStats
from repro.dynamic.state import DynamicSketchState, TurnstileGraphState
from repro.dynamic.updates import GraphUpdate, canonical_updates, normalize_updates

__all__ = [
    "DynamicGraphSession",
    "SessionStats",
    "DynamicBackend",
    "DynamicSketchState",
    "TurnstileGraphState",
    "GraphUpdate",
    "normalize_updates",
    "canonical_updates",
]
