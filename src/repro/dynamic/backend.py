"""The ``dynamic`` execution backend: update-log problems via the facade.

Registers ``dynamic`` in the :mod:`repro.api` registry.  A dynamic
problem is an ordinary :class:`~repro.api.Problem` whose graph is the
*base* state plus an update log in canonical list form::

    Problem(
        base_graph,
        config=SolverConfig(eps=0.2, seed=7),
        task="matching",                     # or "spanning_forest"
        options={"updates": [["+", 0, 5, 3.0], ["-", 2, 4]]},
    )

The encoding is canonical JSON, so update-log problems remain
content-addressable (:meth:`Problem.fingerprint`) and cache/coalesce
correctly in the service.

Contract: the backend replays the log through a fresh
:class:`~repro.dynamic.session.DynamicGraphSession` and queries once,
cold.  For ``task="matching"`` the result is **bit-identical** to the
``offline`` backend on the materialized final graph (same solver, same
config, same canonical edge order); for ``task="spanning_forest"`` it
is bit-identical to
:func:`~repro.streaming.semi_streaming.dynamic_stream_spanning_forest`
over the equivalent event stream with the same seed.  Both pins live in
``tests/test_dynamic_parity.py``.
"""

from __future__ import annotations

from repro.api import Backend, Problem, RunResult, register_backend
from repro.dynamic.session import DynamicGraphSession
from repro.dynamic.updates import normalize_updates

__all__ = ["DynamicBackend"]


@register_backend("dynamic")
class DynamicBackend(Backend):
    """Turnstile update-log backend (insert/delete, query at the end).

    Options:

    ``updates``
        The canonical update log (default: empty -- the problem then
        degenerates to its base graph).

    The replay session runs lean: weight-class/support sketches are
    never maintained (the matching task needs the exact map anyway and
    the forest task only needs the incidence sketches), so arbitrary
    positive weights are accepted.
    """

    tasks = ("matching", "spanning_forest")

    def run(self, problem: Problem) -> RunResult:
        updates = normalize_updates(problem.options.get("updates", []))
        forest_task = problem.task == "spanning_forest"
        session = DynamicGraphSession(
            problem.graph.n,
            config=problem.config,
            base_graph=problem.graph,
            seed=problem.seed,
            # sketches are the forest task's entire substance; matching
            # runs skip them (the solver needs the exact map anyway)
            maintain_sketches=forest_task,
            track_weight_classes=False,
            support_rows=0,
        )
        session.apply(updates)
        if forest_task:
            return session.query_forest()
        return session.query_matching()
