"""Incrementally maintained state of a dynamic turnstile graph.

Two cooperating halves:

* :class:`TurnstileGraphState` -- the exact strict-turnstile edge map.
  O(1) per update, materializes the surviving graph in canonical edge
  order on demand (cached between mutations), and counts *edits* so a
  session can measure the distance since its last solve.
* :class:`DynamicSketchState` -- the linear-sketch battery the paper's
  model actually allows: the signed vertex-incidence ℓ0 sketches (one
  :class:`~repro.sketch.tensor.SketchTensor` slot per vertex), the
  geometric weight-class ℓ0 sketches of Definition 2
  (:class:`~repro.sketch.max_weight.MaxWeightEdgeSketch`), and a bank
  of plain edge-support ℓ0 samplers.  Every update is a vectorized
  ±1 frequency update; by linearity the cell state after any
  insert/delete interleaving equals the cell state of a one-shot build
  over the surviving edge set, which is what makes query-at-any-time
  sound (and lets the parity tests pin the decoded forest bit-identical
  to :func:`~repro.streaming.semi_streaming.dynamic_stream_spanning_forest`).

The exact map is the session's source of truth for solver queries (the
dual-primal solver needs real edge access); the sketches are the
O(n polylog n)-space view that survives the turnstile model and backs
``query_forest`` / support sampling without touching the exact map.
"""

from __future__ import annotations

import numpy as np

from repro.sketch.graph_sketch import encode_edge, incidence_update_batch
from repro.sketch.l0_sampler import L0SamplerBank
from repro.sketch.max_weight import MaxWeightEdgeSketch
from repro.sketch.support_find import boruvka_forest_from_tensor, forest_row_seeds
from repro.sketch.tensor import SketchTensor
from repro.util.graph import Graph
from repro.util.instrumentation import ResourceLedger
from repro.util.rng import make_rng, spawn

__all__ = ["TurnstileGraphState", "DynamicSketchState"]


class TurnstileGraphState:
    """Exact edge map of a strict-turnstile dynamic graph.

    Strictness (enforced): inserting a present edge or deleting an
    absent one raises ``ValueError`` -- the AGM dynamic-stream model
    keeps every edge frequency in ``{0, 1}``, and strictness is also
    what makes the incrementally maintained sketches cell-identical to
    a fresh build over the surviving edges (a frequency-2 edge would
    differ).  Weight changes are expressed as delete + insert.
    """

    def __init__(self, n: int, base_graph: Graph | None = None):
        if n < 1:
            raise ValueError("n must be positive")
        self.n = int(n)
        self._edges: dict[tuple[int, int], float] = {}
        self._b: np.ndarray | None = None
        #: Monotone edit counter: +1 per applied insert or delete.
        self.version = 0
        self._graph: Graph | None = None
        if base_graph is not None:
            if base_graph.n != self.n:
                raise ValueError("base graph vertex count mismatch")
            self._b = base_graph.b.copy()
            for u, v, w in base_graph.edges():
                self._edges[(int(u), int(v))] = float(w)

    # ------------------------------------------------------------------
    def _key(self, u: int, v: int) -> tuple[int, int]:
        u, v = int(u), int(v)
        if not (0 <= u < self.n and 0 <= v < self.n):
            raise ValueError(f"endpoint out of range: ({u}, {v})")
        if u == v:
            raise ValueError("self-loops are not allowed")
        return (u, v) if u < v else (v, u)

    @property
    def m(self) -> int:
        """Number of surviving edges."""
        return len(self._edges)

    def validate_insert(self, u: int, v: int, w: float) -> tuple[int, int]:
        """Strictness/shape checks for an insert *without mutating*.

        Returns the canonical key.  Bulk operations pre-validate whole
        bursts with this so a failing event cannot leave a mutated
        prefix behind (updates must be atomic per call).
        """
        key = self._key(u, v)
        if key in self._edges:
            raise ValueError(
                f"edge {key} is already present; the strict turnstile model "
                "expresses weight changes as delete + insert"
            )
        if not (w > 0 and np.isfinite(w)):
            raise ValueError("edge weight must be positive and finite")
        return key

    def validate_delete(self, u: int, v: int) -> tuple[int, int]:
        """Strictness check for a delete *without mutating*; returns the
        canonical key."""
        key = self._key(u, v)
        if key not in self._edges:
            raise ValueError(f"edge {key} is not present; cannot delete")
        return key

    def contains(self, u: int, v: int) -> bool:
        return self._key(u, v) in self._edges

    def weight_of(self, u: int, v: int) -> float:
        return self._edges[self._key(u, v)]

    # ------------------------------------------------------------------
    def insert(self, u: int, v: int, w: float = 1.0) -> tuple[int, int]:
        """Insert edge ``{u, v}`` with weight ``w``; returns the canonical
        key.  Raises on a duplicate insert (strict turnstile)."""
        key = self.validate_insert(u, v, w)
        self._edges[key] = float(w)
        self.version += 1
        self._graph = None
        return key

    def delete(self, u: int, v: int) -> float:
        """Delete edge ``{u, v}``; returns the weight that was stored
        (the session needs it to cancel the weight-class sketches)."""
        key = self.validate_delete(u, v)
        w = self._edges.pop(key)
        self.version += 1
        self._graph = None
        return w

    # ------------------------------------------------------------------
    def graph(self) -> Graph:
        """The surviving graph, edges in canonical key order (cached).

        Canonical ordering makes the materialization *the* graph every
        other consumer builds from the same edge set: array-identical
        to ``Graph.from_edges`` over the surviving edges, hence equal
        fingerprints and bit-identical solver runs.
        """
        if self._graph is None:
            if not self._edges:
                self._graph = Graph.empty(
                    self.n, b=None if self._b is None else self._b.copy()
                )
            else:
                keys = sorted(self._edges)
                src = np.asarray([k[0] for k in keys], dtype=np.int64)
                dst = np.asarray([k[1] for k in keys], dtype=np.int64)
                w = np.asarray([self._edges[k] for k in keys], dtype=np.float64)
                self._graph = Graph(
                    n=self.n,
                    src=src,
                    dst=dst,
                    weight=w,
                    b=None if self._b is None else self._b.copy(),
                )
        return self._graph

    def fingerprint(self) -> str:
        """Content address of the surviving graph."""
        return self.graph().fingerprint()


class DynamicSketchState:
    """The linear-sketch battery maintained under edge updates.

    Parameters
    ----------
    n:
        Vertex count (edge universe ``n^2``).
    seed:
        Randomness root.  The incidence rows are derived exactly as in
        :func:`~repro.streaming.semi_streaming.dynamic_stream_spanning_forest`
        (same row count, same spawn order), so a session's decoded
        forest is bit-identical to replaying its update log through
        that one-shot pipeline with the same seed.
    repetitions:
        ℓ0 repetitions per incidence row.
    track_weight_classes:
        Maintain the Definition-2 weight-class sketches (requires every
        announced weight inside ``[w_min, w_max]``); switch off for
        unweighted/forest-only sessions with out-of-range weights.
    support_rows:
        Independent edge-support ℓ0 samplers (0 disables the bank).
    """

    def __init__(
        self,
        n: int,
        seed: int | np.random.Generator | None = None,
        repetitions: int = 8,
        track_weight_classes: bool = True,
        w_min: float = 1.0,
        w_max: float = 2.0**40,
        support_rows: int = 4,
    ):
        rng = make_rng(seed)
        self.n = int(n)
        # identical derivation to dynamic_stream_spanning_forest and the
        # out-of-core stream_spanning_forest: the first spawn batch
        # seeds the incidence rows, in order (one shared helper)
        row_seeds = forest_row_seeds(rng, n)
        self.incidence = SketchTensor(
            n * n, row_seeds, repetitions=repetitions, slots=n
        )
        extra = spawn(rng, 2)
        self.max_weight = (
            MaxWeightEdgeSketch(n, w_min=w_min, w_max=w_max, seed=extra[0])
            if track_weight_classes
            else None
        )
        self.support = (
            L0SamplerBank(n * n, t=support_rows, seed=extra[1])
            if support_rows > 0
            else None
        )
        self._w_min = float(w_min)
        self._w_max = float(w_max)
        #: Update events folded in (for space/throughput accounting).
        self.updates_applied = 0
        # pending (buffered) updates: the tensor engine amortizes over
        # bulk batches, so per-event scatters are deferred and flushed
        # at the next sketch *read* -- exact by linearity (cell state is
        # a sum over updates; batching and order cannot change it)
        self._pend_u: list[np.ndarray] = []
        self._pend_v: list[np.ndarray] = []
        self._pend_w: list[np.ndarray] = []
        self._pend_d: list[np.ndarray] = []

    # ------------------------------------------------------------------
    def check_weights(self, w: np.ndarray) -> None:
        """Raise if any weight falls outside the declared class range.

        Called by the session *before* it mutates anything: a deferred
        flush must never be the first place a bad weight surfaces (by
        then the exact state has moved on and the buffered burst cannot
        be unwound).  A no-op when weight classes are untracked.
        """
        if self.max_weight is None:
            return
        w = np.asarray(w, dtype=np.float64)
        if len(w) and (w.min() < self._w_min or w.max() > self._w_max):
            raise ValueError(
                f"edge weight outside the declared class range "
                f"[{self._w_min}, {self._w_max}]; widen w_min/w_max or "
                "disable track_weight_classes"
            )

    def apply_updates(
        self,
        u: np.ndarray,
        v: np.ndarray,
        w: np.ndarray,
        deltas: np.ndarray,
    ) -> None:
        """Buffer a burst of signed edge updates for every sketch.

        ``deltas`` is ±1 per event; a delete must announce the weight
        of its matching insert (the strict-turnstile session guarantees
        this by looking the weight up before deleting).  Updates are
        buffered and folded in at the next read (:meth:`flush`): the
        sketches are linear, so deferred bulk ingestion produces
        bit-identical cell state at a fraction of the scatter cost.
        """
        u = np.asarray(u, dtype=np.int64)
        if len(u) == 0:
            return
        self.check_weights(w)
        self._pend_u.append(u)
        self._pend_v.append(np.asarray(v, dtype=np.int64))
        self._pend_w.append(np.asarray(w, dtype=np.float64))
        self._pend_d.append(np.asarray(deltas, dtype=np.int64))
        self.updates_applied += len(u)

    def flush(self) -> None:
        """Fold every buffered update into the sketch cells, in one
        vectorized batch per sketch family."""
        if not self._pend_u:
            return
        u = np.concatenate(self._pend_u)
        v = np.concatenate(self._pend_v)
        w = np.concatenate(self._pend_w)
        d = np.concatenate(self._pend_d)
        self._pend_u.clear()
        self._pend_v.clear()
        self._pend_w.clear()
        self._pend_d.clear()
        self.incidence.update_many(*incidence_update_batch(u, v, self.n, d))
        if self.max_weight is not None:
            self.max_weight.update_many(u, v, w, d)
        if self.support is not None:
            self.support.update_many(encode_edge(u, v, self.n).astype(np.int64), d)

    @property
    def pending_updates(self) -> int:
        """Buffered events not yet folded into the cells."""
        return sum(len(a) for a in self._pend_u)

    # ------------------------------------------------------------------
    def forest(self, ledger: ResourceLedger | None = None) -> list[tuple[int, int]]:
        """Spanning forest of the *current* net graph, decoded from the
        incidence sketch state alone (no edge map access)."""
        self.flush()
        return boruvka_forest_from_tensor(self.incidence, self.n, ledger=ledger)

    def top_weight_class(self):
        """Definition 2: heaviest nonempty weight class (exponent, witness)."""
        if self.max_weight is None:
            raise RuntimeError("weight-class sketches are disabled for this state")
        self.flush()
        return self.max_weight.top_class()

    def sample_edge(self) -> tuple[int, int] | None:
        """One surviving edge sampled from the support bank (or ``None``)."""
        if self.support is None:
            raise RuntimeError("support samplers are disabled for this state")
        self.flush()
        for sampler in self.support.samplers:
            got = sampler.sample()
            if got is not None:
                e = int(got[0])
                return e // self.n, e % self.n
        return None

    def looks_empty(self) -> bool:
        """True iff every incidence measurement is zero (net graph empty)."""
        self.flush()
        return self.incidence.is_zero()

    def space_words(self) -> int:
        words = self.incidence.space_words()
        if self.max_weight is not None:
            words += self.max_weight.space_words()
        if self.support is not None:
            words += self.support.space_words()
        return words
