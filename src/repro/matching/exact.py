"""Exact matching solvers (ground truth and offline subroutine).

Three solvers, trading generality for cost:

* :func:`max_weight_matching_exact` -- exact maximum-weight matching for
  ``b = 1`` via the blossom algorithm (networkx implementation; used as
  the verifier and as the offline subroutine of Algorithm 2 step 5 on
  sampled subgraphs, where [2, 13] would be used at scale).
* :func:`max_weight_bmatching_exact` -- exact uncapacitated b-matching by
  the standard vertex-splitting reduction: vertex ``i`` becomes ``b_i``
  clones; edge ``(i, j)`` becomes a complete bipartite bundle between the
  clone sets; a maximum matching of the blown-up graph projects back to a
  maximum b-matching.  Exponential in nothing, but the blow-up is
  ``B = sum b_i`` vertices, so keep it for moderate ``B``.
* :func:`fractional_matching_lp` -- LP optimum of LP1 with odd-set
  constraints enumerated up to a size cap (exact for bipartite graphs
  with no odd sets; exact for general graphs when the cap reaches ``n``).
  Used by the relaxation experiments (E6/E11) and the certificate tests.
"""

from __future__ import annotations

from itertools import combinations

import numpy as np

from repro.matching.structures import BMatching
from repro.util.graph import Graph

__all__ = [
    "max_weight_matching_exact",
    "max_weight_bmatching_exact",
    "fractional_matching_lp",
    "enumerate_odd_sets",
]


def max_weight_matching_exact(graph: Graph) -> BMatching:
    """Exact maximum-weight matching (b = 1) via blossom."""
    import networkx as nx

    g = graph.to_networkx()
    mate = nx.max_weight_matching(g, maxcardinality=False)
    return BMatching.from_pairs(graph, list(mate))


def max_weight_bmatching_exact(graph: Graph) -> BMatching:
    """Exact maximum-weight uncapacitated b-matching via vertex splitting.

    Complexity is blossom on ``B`` vertices and ``sum_e b_i b_j`` edges;
    intended for verification-scale instances.
    """
    import networkx as nx

    if bool(np.all(graph.b == 1)):
        return max_weight_matching_exact(graph)
    # clone index ranges per vertex
    starts = np.zeros(graph.n + 1, dtype=np.int64)
    np.cumsum(graph.b, out=starts[1:])
    g = nx.Graph()
    g.add_nodes_from(range(int(starts[-1])))
    for e in range(graph.m):
        i, j, w = int(graph.src[e]), int(graph.dst[e]), float(graph.weight[e])
        for ci in range(starts[i], starts[i + 1]):
            for cj in range(starts[j], starts[j + 1]):
                g.add_edge(int(ci), int(cj), weight=w, eid=e)
    mate = nx.max_weight_matching(g, maxcardinality=False)
    counts: dict[int, int] = {}
    for a, bb in mate:
        eid = g.edges[a, bb]["eid"]
        counts[eid] = counts.get(eid, 0) + 1
    if not counts:
        return BMatching.empty(graph)
    ids = np.asarray(sorted(counts), dtype=np.int64)
    mult = np.asarray([counts[int(e)] for e in ids], dtype=np.int64)
    return BMatching(graph, ids, mult)


#: Memo for :func:`enumerate_odd_sets`.  The LP library solves LP1-LP4 on
#: the same graph back to back and each solve re-enumerates the same odd
#: sets; caching the (immutable) result makes the identities checkable on
#: verification-scale graphs without paying the enumeration four times.
#: Only the most recent entry is kept -- enumerations can be huge, and the
#: motivating pattern is consecutive solves on one graph.
_ODD_SET_CACHE: dict[tuple, list[tuple[int, ...]]] = {}


def enumerate_odd_sets(
    b: np.ndarray, max_size_b: int | None = None, max_card: int | None = None
) -> list[tuple[int, ...]]:
    """All vertex sets ``U`` with ``||U||_b`` odd and ``>= 3``.

    ``max_size_b`` caps ``||U||_b`` (the paper's ``O_s`` uses ``4/eps``);
    ``max_card`` caps ``|U|``.  Exponential in general -- small graphs
    (or small caps) only.

    Two guards keep the capped case usable on moderate ``n``:

    * **early exit** -- when ``max_size_b`` is given, no set larger than
      the longest prefix of the *ascending-sorted* capacities fitting in
      the cap can qualify (``||U||_b >= sum of the |U| smallest b_i``),
      so cardinalities beyond that bound are never enumerated;
    * **memoization** -- results are cached per ``(b, caps)`` so the LP
      library's four formulations share one enumeration.  Callers must
      treat the returned list as immutable.
    """
    b = np.asarray(b, dtype=np.int64)
    n = len(b)
    key = (b.tobytes(), n, max_size_b, max_card)
    cached = _ODD_SET_CACHE.get(key)
    if cached is not None:
        return cached
    cap = max_card if max_card is not None else n
    if max_size_b is not None:
        # largest cardinality whose cheapest possible ||U||_b fits the cap
        cheapest = np.cumsum(np.sort(b))
        cap = min(cap, int(np.searchsorted(cheapest, max_size_b, side="right")))
    out: list[tuple[int, ...]] = []
    for size in range(3, cap + 1):
        for combo in combinations(range(n), size):
            sb = int(b[list(combo)].sum())
            if sb % 2 == 1 and sb >= 3:
                if max_size_b is None or sb <= max_size_b:
                    out.append(combo)
    _ODD_SET_CACHE.clear()
    _ODD_SET_CACHE[key] = out
    return out


def fractional_matching_lp(
    graph: Graph,
    odd_set_cap: int | None = None,
    return_solution: bool = False,
):
    """Optimum of LP1 (with odd sets up to ``odd_set_cap`` in ``||.||_b``).

    Maximize ``sum w_e y_e`` s.t. vertex capacity constraints, odd-set
    constraints ``y(U) <= floor(||U||_b / 2)``, ``y >= 0``.  Solved with
    scipy's HiGHS.  Returns the optimal value (and the ``y`` vector when
    requested).
    """
    from scipy.optimize import linprog

    m = graph.m
    if m == 0:
        return (0.0, np.empty(0)) if return_solution else 0.0
    n = graph.n
    rows: list[np.ndarray] = []
    rhs: list[float] = []
    # vertex constraints
    inc = np.zeros((n, m))
    inc[graph.src, np.arange(m)] += 1.0
    inc[graph.dst, np.arange(m)] += 1.0
    rows.append(inc)
    rhs.extend(graph.b.astype(float).tolist())
    # odd-set constraints
    odd_sets = enumerate_odd_sets(graph.b, max_size_b=odd_set_cap)
    if odd_sets:
        osm = np.zeros((len(odd_sets), m))
        for r, U in enumerate(odd_sets):
            members = np.zeros(n, dtype=bool)
            members[list(U)] = True
            inside = members[graph.src] & members[graph.dst]
            osm[r, inside] = 1.0
            rhs.append(float(int(graph.b[list(U)].sum()) // 2))
        rows.append(osm)
    A_ub = np.vstack(rows)
    res = linprog(
        c=-graph.weight,
        A_ub=A_ub,
        b_ub=np.asarray(rhs),
        bounds=[(0, None)] * m,
        method="highs",
    )
    if not res.success:
        raise RuntimeError(f"LP solve failed: {res.message}")
    value = float(-res.fun)
    if return_solution:
        return value, np.asarray(res.x)
    return value
