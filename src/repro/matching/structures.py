"""Matching value objects.

:class:`BMatching` is the universal result type: a multiset of edges of a
source graph, with integer multiplicities.  Ordinary matchings are the
``b = 1`` special case (all multiplicities one).  The paper's b-matching
is *uncapacitated* -- LP1 places no per-edge cap, so an edge may be used
with multiplicity up to ``min(b_i, b_j)``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.util.graph import Graph

__all__ = ["BMatching"]


@dataclass
class BMatching:
    """A (candidate) b-matching of ``graph``.

    Attributes
    ----------
    graph:
        The source graph (provides endpoints, weights and capacities).
    edge_ids:
        Indices into the graph's edge arrays; must be unique.
    multiplicity:
        Positive integer multiplicities, parallel to ``edge_ids``.
    """

    graph: Graph
    edge_ids: np.ndarray
    multiplicity: np.ndarray = field(default=None)  # type: ignore[assignment]

    def __post_init__(self) -> None:
        self.edge_ids = np.asarray(self.edge_ids, dtype=np.int64)
        if self.multiplicity is None:
            self.multiplicity = np.ones(len(self.edge_ids), dtype=np.int64)
        else:
            self.multiplicity = np.asarray(self.multiplicity, dtype=np.int64)
        if len(self.edge_ids) != len(self.multiplicity):
            raise ValueError("edge_ids and multiplicity must be parallel")
        if len(np.unique(self.edge_ids)) != len(self.edge_ids):
            raise ValueError("edge_ids must be unique (use multiplicity)")
        if np.any(self.multiplicity < 1):
            raise ValueError("multiplicities must be >= 1")

    # ------------------------------------------------------------------
    @classmethod
    def empty(cls, graph: Graph) -> "BMatching":
        return cls(graph, np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64))

    @classmethod
    def from_pairs(cls, graph: Graph, pairs) -> "BMatching":
        """Build from ``(i, j)`` vertex pairs (each must be a graph edge)."""
        keys = {
            (int(s), int(d)): e for e, (s, d) in enumerate(zip(graph.src, graph.dst))
        }
        ids = []
        for i, j in pairs:
            i, j = (int(i), int(j)) if i < j else (int(j), int(i))
            if (i, j) not in keys:
                raise KeyError(f"({i},{j}) is not an edge of the graph")
            ids.append(keys[(i, j)])
        return cls(graph, np.asarray(sorted(set(ids)), dtype=np.int64))

    # ------------------------------------------------------------------
    def weight(self) -> float:
        """Total matched weight ``sum_e w_e * y_e``."""
        return float(
            (self.graph.weight[self.edge_ids] * self.multiplicity).sum()
        )

    def size(self) -> int:
        """Total multiplicity (cardinality for b = 1)."""
        return int(self.multiplicity.sum())

    def vertex_loads(self) -> np.ndarray:
        """Matched degree of every vertex (``sum_{e ∋ i} y_e``)."""
        loads = np.zeros(self.graph.n, dtype=np.int64)
        np.add.at(loads, self.graph.src[self.edge_ids], self.multiplicity)
        np.add.at(loads, self.graph.dst[self.edge_ids], self.multiplicity)
        return loads

    def is_valid(self) -> bool:
        """Degree constraints: ``load_i <= b_i`` for every vertex."""
        return bool(np.all(self.vertex_loads() <= self.graph.b))

    def check_valid(self) -> None:
        loads = self.vertex_loads()
        bad = np.flatnonzero(loads > self.graph.b)
        if len(bad):
            v = int(bad[0])
            raise ValueError(
                f"vertex {v} overloaded: load {int(loads[v])} > b {int(self.graph.b[v])}"
            )

    def saturated_vertices(self) -> np.ndarray:
        """Vertices with ``load_i == b_i`` (Lemma 20's saturation set)."""
        return np.flatnonzero(self.vertex_loads() == self.graph.b)

    def as_pairs(self) -> list[tuple[int, int]]:
        """Matched vertex pairs, one per unit of multiplicity collapsed to 1."""
        return [
            (int(self.graph.src[e]), int(self.graph.dst[e])) for e in self.edge_ids
        ]

    def restricted_to(self, graph: Graph, id_map: np.ndarray) -> "BMatching":
        """Re-express this matching as a matching of another graph.

        ``id_map[k]`` gives, for this matching's graph's edge ``k``, the
        corresponding edge id in ``graph`` (or -1 if absent).
        """
        mapped = id_map[self.edge_ids]
        keep = mapped >= 0
        return BMatching(graph, mapped[keep], self.multiplicity[keep])
