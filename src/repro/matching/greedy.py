"""Greedy weighted (b-)matching.

The classic 1/2-approximation: scan edges in nonincreasing weight order,
take an edge whenever both endpoints still have residual capacity, with
multiplicity equal to the smaller residual.  Used both as a baseline and
as the seed of the local-search improver.
"""

from __future__ import annotations

import numpy as np

from repro.matching.structures import BMatching
from repro.util.graph import Graph

__all__ = ["greedy_bmatching", "greedy_matching"]


def greedy_bmatching(graph: Graph, order: np.ndarray | None = None) -> BMatching:
    """Greedy b-matching; ``order`` overrides the weight-descending scan.

    Each taken edge is saturated: its multiplicity is the minimum of the
    endpoints' residual capacities, so at least one endpoint is saturated
    by the take (the accounting Lemma 20 relies on).
    """
    if order is None:
        order = np.argsort(-graph.weight, kind="stable")
    residual = graph.b.copy()
    taken_ids: list[int] = []
    mult: list[int] = []
    src, dst = graph.src, graph.dst
    for e in order:
        i, j = src[e], dst[e]
        take = min(residual[i], residual[j])
        if take > 0:
            taken_ids.append(int(e))
            mult.append(int(take))
            residual[i] -= take
            residual[j] -= take
    return BMatching(
        graph,
        np.asarray(taken_ids, dtype=np.int64),
        np.asarray(mult, dtype=np.int64),
    )


def greedy_matching(graph: Graph) -> BMatching:
    """Greedy matching for ``b = 1`` (weight-descending order)."""
    return greedy_bmatching(graph)
