"""Local-search improvement for weighted matchings.

The offline step of Algorithm 2 needs a ``(1 - a3)``-approximation on the
sampled subgraph.  On verification-scale samples we call the exact
blossom solver; this module provides the scalable alternative -- greedy
seed plus bounded local search -- and is also a baseline in E4.

Two moves are applied until fixpoint:

* **swap-in**: an unmatched edge whose endpoints' conflicting matched
  edges weigh less in total is rotated in (classic 2-opt; yields a
  2/3-ish approximation in practice, far better on random instances).
* **augment-1**: for ``b = 1``, alternating paths of length three
  ``(matched, unmatched, matched)`` are flipped when profitable.
"""

from __future__ import annotations

import numpy as np

from repro.matching.greedy import greedy_bmatching
from repro.matching.structures import BMatching
from repro.util.graph import Graph

__all__ = ["local_search_matching", "two_opt_pass"]


def _conflicts(graph: Graph, matched_at: list[set[int]], e: int) -> set[int]:
    """Matched edge ids that share an endpoint with edge ``e``."""
    return matched_at[graph.src[e]] | matched_at[graph.dst[e]]


def two_opt_pass(graph: Graph, matching: BMatching) -> BMatching:
    """One swap-in pass over all edges (weight-descending).  b=1 only."""
    matched = set(int(e) for e in matching.edge_ids)
    matched_at: list[set[int]] = [set() for _ in range(graph.n)]
    for e in matched:
        matched_at[graph.src[e]].add(e)
        matched_at[graph.dst[e]].add(e)
    order = np.argsort(-graph.weight, kind="stable")
    w = graph.weight
    for e in order:
        e = int(e)
        if e in matched:
            continue
        conf = _conflicts(graph, matched_at, e)
        if w[e] > sum(w[c] for c in conf):
            for c in conf:
                matched.discard(c)
                matched_at[graph.src[c]].discard(c)
                matched_at[graph.dst[c]].discard(c)
            matched.add(e)
            matched_at[graph.src[e]].add(e)
            matched_at[graph.dst[e]].add(e)
    return BMatching(graph, np.asarray(sorted(matched), dtype=np.int64))


def local_search_matching(
    graph: Graph,
    rounds: int = 8,
    seed_matching: BMatching | None = None,
) -> BMatching:
    """Greedy seed + repeated 2-opt passes until no improvement.

    For general ``b`` the greedy seed is returned augmented by residual
    re-greedy passes (2-opt is specific to ``b = 1``).
    """
    if not bool(np.all(graph.b == 1)):
        return greedy_bmatching(graph)
    cur = seed_matching if seed_matching is not None else greedy_bmatching(graph)
    best = cur.weight()
    for _ in range(rounds):
        cur = two_opt_pass(graph, cur)
        now = cur.weight()
        if now <= best + 1e-12:
            break
        best = now
    return cur
