"""b-matching specific algorithms beyond the maximal/greedy scans.

The paper's b-matching is *uncapacitated* (LP1 has no per-edge cap), but
three more tools are needed across the experiments and the offline step:

* :func:`capacitated_bmatching_greedy` -- the *simple* (per-edge cap 1)
  variant, used when comparing against references that disallow parallel
  multiplicity.
* :func:`round_fractional_bmatching` -- turn an LP1-feasible fractional
  ``y`` into an integral b-matching losing at most the rounding slack;
  used to harvest the LP7 witnesses of the MicroOracle (Lemma 13 route)
  without calling the exact solver.
* :func:`bmatching_local_search` -- multiplicity-aware local search:
  greedy seed, then profitable single-edge reallocation moves (shift one
  unit of multiplicity from a lighter edge to a heavier conflicting
  edge) until fixpoint.  The b-generalisation of the 2-opt pass.
* :func:`solve_bmatching_many` -- batched (1-eps)-approximate solving of
  many independent b-matching instances through the lockstep engine of
  :mod:`repro.core.batch`; the matching-layer entry point for services
  that pull instances off a queue.
"""

from __future__ import annotations

import numpy as np

from repro.matching.greedy import greedy_bmatching
from repro.matching.structures import BMatching
from repro.util.graph import Graph

__all__ = [
    "capacitated_bmatching_greedy",
    "round_fractional_bmatching",
    "bmatching_local_search",
    "solve_bmatching_many",
]


def solve_bmatching_many(
    graphs: list[Graph],
    eps: float = 0.1,
    seeds: list[int | None] | None = None,
    **solver_kwargs,
) -> list[BMatching]:
    """Solve many independent b-matching instances in one batched run.

    Thin matching-layer wrapper over :func:`repro.core.matching_solver.
    solve_many` that returns just the integral matchings (use the core
    entry point when the dual certificates or resource ledgers are
    needed).  Results are identical to solving each instance alone with
    the same seed; per-instance throughput at batch >= 32 is several
    times higher (``benchmarks/BENCH_solver.json``).

    Parameters
    ----------
    graphs:
        Instances to solve; heterogeneous sizes/weights/capacities are
        fine (the engine keeps a ragged layout).
    eps:
        Target approximation parameter (Theorem 15: ``1 - O(eps)``).
    seeds:
        Optional per-instance seed overrides.
    solver_kwargs:
        Forwarded to :class:`~repro.core.matching_solver.SolverConfig`.

    Returns
    -------
    list[BMatching]
        ``out[i]`` is the matching for ``graphs[i]``.
    """
    from repro.core.matching_solver import DualPrimalMatchingSolver, SolverConfig

    solver = DualPrimalMatchingSolver(SolverConfig(eps=eps, **solver_kwargs))
    results = solver.solve_many(graphs, seeds=seeds)
    return [r.matching for r in results]


def capacitated_bmatching_greedy(graph: Graph) -> BMatching:
    """Greedy *simple* b-matching: every edge used with multiplicity <= 1.

    Scan in weight-descending order; take an edge iff both endpoints have
    residual capacity.  A 1/2-approximation of the simple b-matching
    optimum by the standard charging argument.
    """
    order = np.argsort(-graph.weight, kind="stable")
    residual = graph.b.copy()
    taken: list[int] = []
    src, dst = graph.src, graph.dst
    for e in order:
        i, j = src[e], dst[e]
        if residual[i] > 0 and residual[j] > 0:
            taken.append(int(e))
            residual[i] -= 1
            residual[j] -= 1
    return BMatching(graph, np.asarray(sorted(taken), dtype=np.int64))


def round_fractional_bmatching(
    graph: Graph, y: np.ndarray, sweeten: bool = True
) -> BMatching:
    """Integral b-matching from a fractional LP1-feasible ``y``.

    Floor-then-greedy rounding:

    1. take ``floor(y_e)`` units of every edge (always feasible since the
       vertex constraints are integer),
    2. scan the fractional remainders in ``w_e * frac_e`` descending
       order, adding one unit wherever both endpoints retain capacity,
    3. (``sweeten``) finish with a greedy pass over all edges so the
       result is maximal -- rounding never *wastes* capacity.

    The result is a valid b-matching; on LP-extreme points of bipartite
    instances step 1 alone is already optimal (the polytope is integral).
    """
    y = np.asarray(y, dtype=np.float64)
    if len(y) != graph.m:
        raise ValueError("y must have one entry per edge")
    if np.any(y < -1e-9):
        raise ValueError("y must be nonnegative")
    y = np.maximum(y, 0.0)

    base = np.floor(y + 1e-9).astype(np.int64)
    residual = graph.b.copy()
    mult = np.zeros(graph.m, dtype=np.int64)
    src, dst = graph.src, graph.dst

    # step 1: integral part (clip defensively against numeric drift)
    for e in np.flatnonzero(base):
        take = min(int(base[e]), int(residual[src[e]]), int(residual[dst[e]]))
        if take > 0:
            mult[e] += take
            residual[src[e]] -= take
            residual[dst[e]] -= take

    # step 2: fractional remainders, most valuable first
    frac = y - base
    gain = graph.weight * frac
    for e in np.argsort(-gain, kind="stable"):
        if frac[e] <= 1e-9:
            break
        if residual[src[e]] > 0 and residual[dst[e]] > 0:
            mult[e] += 1
            residual[src[e]] -= 1
            residual[dst[e]] -= 1

    # step 3: maximality sweep
    if sweeten:
        for e in np.argsort(-graph.weight, kind="stable"):
            take = min(int(residual[src[e]]), int(residual[dst[e]]))
            if take > 0:
                mult[e] += take
                residual[src[e]] -= take
                residual[dst[e]] -= take

    ids = np.flatnonzero(mult)
    return BMatching(graph, ids, mult[ids])


def bmatching_local_search(
    graph: Graph,
    rounds: int = 8,
    seed_matching: BMatching | None = None,
) -> BMatching:
    """Greedy seed + unit-reallocation local search for general ``b``.

    Two move families are applied until fixpoint, both strictly
    weight-increasing (hence terminating):

    * **steal**: edge ``e`` blocked at a saturated endpoint takes one
      unit from the lightest incident matched edge lighter than ``e``;
    * **pair swap**: one unit of a matched edge ``d`` is dropped to
      admit one unit each of two unmatched incident edges whose other
      endpoints have residual capacity (the length-3 alternating-path
      augmentation, generalized to multiplicities).
    """
    cur = seed_matching if seed_matching is not None else greedy_bmatching(graph)
    mult = np.zeros(graph.m, dtype=np.int64)
    mult[cur.edge_ids] = cur.multiplicity
    residual = graph.b - cur.vertex_loads()
    src, dst, w = graph.src, graph.dst, graph.weight
    csr = graph.csr()

    def lightest_loaded(v: int, cap: float) -> int:
        """Incident edge with mult>0 and weight < cap, minimizing weight."""
        best, best_w = -1, cap
        for eid in csr.incident_edges(v):
            if mult[eid] > 0 and w[eid] < best_w:
                best, best_w = int(eid), float(w[eid])
        return best

    def best_addable(v: int, avoid: int) -> int:
        """Heaviest edge at ``v`` (not ``avoid``) whose far endpoint has
        residual capacity.  ``v`` itself is assumed about to gain a unit."""
        best, best_w = -1, 0.0
        for eid in csr.incident_edges(v):
            if eid == avoid:
                continue
            far = int(dst[eid]) if int(src[eid]) == v else int(src[eid])
            if residual[far] > 0 and w[eid] > best_w:
                best, best_w = int(eid), float(w[eid])
        return best

    def pair_swap_pass() -> bool:
        """Drop one unit of d, add units of the two best side edges."""
        improved = False
        for d in np.flatnonzero(mult > 0):
            d = int(d)
            i, j = int(src[d]), int(dst[d])
            # tentatively free one unit of d
            mult[d] -= 1
            residual[i] += 1
            residual[j] += 1
            e1 = best_addable(i, avoid=d)
            e2 = best_addable(j, avoid=d)
            candidates = [e for e in dict.fromkeys([e1, e2]) if e >= 0]
            # apply greedily, tracking the *actual* delta; roll back unless
            # the realized gain is strictly positive
            added: list[int] = []
            delta = -float(w[d])
            for e_add in candidates:
                a, c = int(src[e_add]), int(dst[e_add])
                if residual[a] > 0 and residual[c] > 0:
                    mult[e_add] += 1
                    residual[a] -= 1
                    residual[c] -= 1
                    added.append(e_add)
                    delta += float(w[e_add])
            if delta > 1e-12:
                improved = True
                continue
            # not profitable: undo the additions and restore d's unit
            for e_add in added:
                a, c = int(src[e_add]), int(dst[e_add])
                mult[e_add] -= 1
                residual[a] += 1
                residual[c] += 1
            mult[d] += 1
            residual[i] -= 1
            residual[j] -= 1
        return improved

    order = np.argsort(-w, kind="stable")
    for _ in range(rounds):
        improved = pair_swap_pass()
        for e in order:
            e = int(e)
            i, j = int(src[e]), int(dst[e])
            # how many extra units could e absorb after stealing one unit
            # at each saturated endpoint?
            donors: list[int] = []
            gain = w[e]
            ok = True
            for v in (i, j):
                if residual[v] > 0:
                    continue
                d = lightest_loaded(v, w[e])
                if d < 0 or d == e:
                    ok = False
                    break
                donors.append(d)
                gain -= w[d]
            if not ok or gain <= 1e-12:
                continue
            if not donors:
                # both endpoints free: plain extension
                take = min(int(residual[i]), int(residual[j]))
                if take > 0:
                    mult[e] += take
                    residual[i] -= take
                    residual[j] -= take
                    improved = True
                continue
            # apply: remove one unit from each donor, add one unit of e
            for d in donors:
                mult[d] -= 1
                residual[src[d]] += 1
                residual[dst[d]] += 1
            if residual[i] > 0 and residual[j] > 0:
                mult[e] += 1
                residual[i] -= 1
                residual[j] -= 1
                improved = True
            else:
                # stealing freed the wrong vertices; undo
                for d in donors:
                    mult[d] += 1
                    residual[src[d]] -= 1
                    residual[dst[d]] -= 1
        if not improved:
            break

    ids = np.flatnonzero(mult)
    return BMatching(graph, ids, mult[ids])
