"""Verification helpers: approximation ratios and certificate audits."""

from __future__ import annotations

import numpy as np

from repro.matching.exact import max_weight_bmatching_exact
from repro.matching.structures import BMatching
from repro.util.graph import Graph

__all__ = ["approximation_ratio", "verify_dual_upper_bound", "exact_optimum"]


def approximation_ratio(candidate: BMatching, optimum: BMatching | float) -> float:
    """``candidate.weight() / optimum`` (optimum may be a matching or value)."""
    opt = optimum.weight() if isinstance(optimum, BMatching) else float(optimum)
    if opt == 0:
        return 1.0 if candidate.weight() == 0 else float("inf")
    return candidate.weight() / opt


def verify_dual_upper_bound(
    graph: Graph,
    x: np.ndarray,
    z: dict[tuple[int, ...], float] | None = None,
    slack: float = 1e-9,
) -> float:
    """Check LP2 dual feasibility and return the dual objective.

    ``x`` is the vertex dual vector; ``z`` maps odd sets (vertex tuples)
    to dual values.  Raises if any edge constraint
    ``x_i + x_j + sum_{U ∋ i,j} z_U >= w_ij`` is violated by more than
    ``slack``.  The returned value is a certified upper bound on the
    maximum b-matching weight (weak duality).
    """
    x = np.asarray(x, dtype=np.float64)
    z = z or {}
    if getattr(graph, "is_materialized", True) is False:
        return _verify_dual_upper_bound_chunked(graph, x, z, slack)
    cover = x[graph.src] + x[graph.dst]
    if z:
        for U, zu in z.items():
            members = np.zeros(graph.n, dtype=bool)
            members[list(U)] = True
            inside = members[graph.src] & members[graph.dst]
            cover = cover + np.where(inside, zu, 0.0)
    deficit = graph.weight - cover
    worst = float(deficit.max()) if graph.m else 0.0
    if worst > slack:
        e = int(np.argmax(deficit))
        raise AssertionError(
            f"dual infeasible at edge ({graph.src[e]},{graph.dst[e]}): "
            f"cover {cover[e]:.6g} < weight {graph.weight[e]:.6g}"
        )
    value = float((graph.b * x).sum())
    for U, zu in z.items():
        value += zu * (int(graph.b[list(U)].sum()) // 2)
    return value


def _verify_dual_upper_bound_chunked(
    graph: Graph,
    x: np.ndarray,
    z: dict[tuple[int, ...], float],
    slack: float,
) -> float:
    """:func:`verify_dual_upper_bound` for unmaterialized file-backed
    graphs: the audit scans the edge columns in O(chunk) slices instead
    of coercing them (the certificate check is part of the
    zero-materialization contract of the out-of-core route).

    Bitwise-faithful to the dense branch: the worst deficit is a max of
    chunk maxes, the reported edge is the *first* argmax (strictly
    greater updates only, matching ``np.argmax`` tie-breaking), and the
    raised message is the same f-string.
    """
    members_z = []
    if z:
        for U, zu in z.items():
            members = np.zeros(graph.n, dtype=bool)
            members[list(U)] = True
            members_z.append((members, zu))
    chunk = int(getattr(graph, "chunk_edges", 0) or 65536)
    worst = -np.inf
    worst_edge: tuple[int, int, float, float] | None = None
    for start in range(0, graph.m, chunk):
        stop = min(start + chunk, graph.m)
        src = np.asarray(graph.src[start:stop])
        dst = np.asarray(graph.dst[start:stop])
        w = np.asarray(graph.weight[start:stop])
        cover = x[src] + x[dst]
        for members, zu in members_z:
            inside = members[src] & members[dst]
            cover = cover + np.where(inside, zu, 0.0)
        deficit = w - cover
        part = float(deficit.max())
        if part > worst:
            worst = part
            e = int(np.argmax(deficit))
            worst_edge = (int(src[e]), int(dst[e]), float(cover[e]), float(w[e]))
    if graph.m and worst > slack:
        ws, wd, wc, ww = worst_edge
        raise AssertionError(
            f"dual infeasible at edge ({ws},{wd}): "
            f"cover {wc:.6g} < weight {ww:.6g}"
        )
    value = float((graph.b * x).sum())
    for U, zu in z.items():
        value += zu * (int(graph.b[list(U)].sum()) // 2)
    return value


def exact_optimum(graph: Graph) -> float:
    """Exact maximum b-matching weight (verification-scale graphs)."""
    return max_weight_bmatching_exact(graph).weight()
