"""Maximal (b-)matchings and the sampled construction of Lemma 20.

A b-matching is *maximal* if no edge can be added with any positive
multiplicity -- equivalently every edge has at least one saturated
endpoint.  Maximal matchings are the building block of both the
Lattanzi-et-al. filtering baseline [25] and the paper's initial dual
solution (Lemma 12 via Lemma 20): each level's maximal b-matching tells
us which vertices must carry dual mass.

:func:`maximal_bmatching_sampled` implements Lemma 20's iterative
sampling loop: sample ``O(n^{1+1/p})`` edges uniformly, extend the
maximal b-matching within the sample, drop edges with both endpoints
saturated, repeat.  Lemma 19 guarantees the surviving edge count drops
by ``n^{1/p}`` per round, so ``O(p)`` rounds suffice.
"""

from __future__ import annotations

import numpy as np

from repro.matching.structures import BMatching
from repro.util.graph import Graph
from repro.util.instrumentation import ResourceLedger
from repro.util.rng import make_rng

__all__ = [
    "maximal_bmatching",
    "is_maximal",
    "maximal_bmatching_sampled",
]


def maximal_bmatching(
    graph: Graph,
    order: np.ndarray | None = None,
    residual: np.ndarray | None = None,
) -> BMatching:
    """Maximal b-matching by a single scan in the given (or input) order.

    ``residual`` optionally continues from an existing partial matching's
    residual capacities (used by the level-merging of Lemma 21 and by the
    sampled construction below); it is mutated in place.
    """
    if order is None:
        order = np.arange(graph.m)
    if residual is None:
        residual = graph.b.copy()
    taken: list[int] = []
    mult: list[int] = []
    src, dst = graph.src, graph.dst
    for e in order:
        i, j = src[e], dst[e]
        take = min(residual[i], residual[j])
        if take > 0:
            taken.append(int(e))
            mult.append(int(take))
            residual[i] -= take
            residual[j] -= take
    return BMatching(
        graph, np.asarray(taken, dtype=np.int64), np.asarray(mult, dtype=np.int64)
    )


def is_maximal(matching: BMatching) -> bool:
    """Every edge must have a saturated endpoint."""
    g = matching.graph
    loads = matching.vertex_loads()
    saturated = loads >= g.b
    return bool(np.all(saturated[g.src] | saturated[g.dst]))


def maximal_bmatching_sampled(
    graph: Graph,
    p: float = 2.0,
    seed: int | np.random.Generator | None = None,
    ledger: ResourceLedger | None = None,
    space_budget: int | None = None,
    max_rounds: int | None = None,
) -> BMatching:
    """Lemma 20: maximal b-matching in ``O(p)`` sampling rounds.

    Per round: sample ``min(remaining, budget)`` of the *surviving* edges
    (both endpoints unsaturated), run the maximal scan on the sample with
    the running residuals, then filter the survivors.  Each round charges
    one ``sampling_round`` and ``budget`` central space.

    Parameters
    ----------
    p:
        Round/space tradeoff: the per-round budget is
        ``ceil(n^{1 + 1/p})`` unless ``space_budget`` overrides it.
    """
    rng = make_rng(seed)
    n = graph.n
    if space_budget is None:
        space_budget = int(np.ceil(n ** (1.0 + 1.0 / p))) + 1
    if max_rounds is None:
        max_rounds = max(8, 4 * int(np.ceil(p)) + 8)

    residual = graph.b.copy()
    alive = np.arange(graph.m)
    all_taken: list[int] = []
    all_mult: list[int] = []
    src, dst = graph.src, graph.dst

    for _ in range(max_rounds):
        if len(alive) == 0:
            break
        if ledger is not None:
            ledger.tick_sampling_round("maximal b-matching sample")
            ledger.charge_stream(len(alive))
        if len(alive) <= space_budget:
            sample = alive
        else:
            sample = rng.choice(alive, size=space_budget, replace=False)
        if ledger is not None:
            ledger.charge_space(len(sample))
        # extend the maximal matching inside the sample
        for e in sample:
            i, j = src[e], dst[e]
            take = min(residual[i], residual[j])
            if take > 0:
                all_taken.append(int(e))
                all_mult.append(int(take))
                residual[i] -= take
                residual[j] -= take
        if ledger is not None:
            ledger.release_space(len(sample))
        # filter: an edge survives iff both endpoints keep residual capacity
        alive = alive[(residual[src[alive]] > 0) & (residual[dst[alive]] > 0)]
        if len(alive) <= space_budget and len(alive) > 0:
            # one final exhaustive pass fits in memory
            continue
    # final exhaustive pass over whatever survives (guaranteed small whp)
    for e in alive:
        i, j = src[e], dst[e]
        take = min(residual[i], residual[j])
        if take > 0:
            all_taken.append(int(e))
            all_mult.append(int(take))
            residual[i] -= take
            residual[j] -= take
    return BMatching(
        graph,
        np.asarray(all_taken, dtype=np.int64),
        np.asarray(all_mult, dtype=np.int64),
    )
