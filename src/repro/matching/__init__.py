"""Offline matching substrate: greedy, maximal, local search, exact, verify."""

from repro.matching.augmenting import local_search_matching, two_opt_pass
from repro.matching.bmatching import (
    bmatching_local_search,
    capacitated_bmatching_greedy,
    round_fractional_bmatching,
    solve_bmatching_many,
)
from repro.matching.exact import (
    enumerate_odd_sets,
    fractional_matching_lp,
    max_weight_bmatching_exact,
    max_weight_matching_exact,
)
from repro.matching.greedy import greedy_bmatching, greedy_matching
from repro.matching.maximal import (
    is_maximal,
    maximal_bmatching,
    maximal_bmatching_sampled,
)
from repro.matching.structures import BMatching
from repro.matching.verify import (
    approximation_ratio,
    exact_optimum,
    verify_dual_upper_bound,
)

__all__ = [
    "BMatching",
    "greedy_bmatching",
    "greedy_matching",
    "maximal_bmatching",
    "maximal_bmatching_sampled",
    "is_maximal",
    "local_search_matching",
    "two_opt_pass",
    "bmatching_local_search",
    "capacitated_bmatching_greedy",
    "round_fractional_bmatching",
    "solve_bmatching_many",
    "max_weight_matching_exact",
    "max_weight_bmatching_exact",
    "fractional_matching_lp",
    "enumerate_odd_sets",
    "approximation_ratio",
    "verify_dual_upper_bound",
    "exact_optimum",
]
