"""Shared substrate: graphs, RNG plumbing, validation, resource ledgers."""

from repro.util.graph import CSRAdjacency, Graph, edge_key, merge_parallel_edges
from repro.util.instrumentation import ResourceLedger, SpaceHighWater
from repro.util.rng import derive_seed, make_rng, spawn
from repro.util.validation import (
    check_capacities,
    check_epsilon,
    check_positive_weights,
    check_probability,
    require,
)

__all__ = [
    "Graph",
    "CSRAdjacency",
    "edge_key",
    "merge_parallel_edges",
    "ResourceLedger",
    "SpaceHighWater",
    "make_rng",
    "spawn",
    "derive_seed",
    "check_epsilon",
    "check_positive_weights",
    "check_capacities",
    "check_probability",
    "require",
]
