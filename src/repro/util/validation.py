"""Validation helpers shared across the library.

Centralizes the argument checks that many public entry points need
(epsilon ranges, positive weights, capacity vectors), so error messages
are uniform and the checks are tested once.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "check_epsilon",
    "check_positive_weights",
    "check_capacities",
    "check_probability",
    "require",
]


def require(cond: bool, message: str) -> None:
    """Raise ``ValueError(message)`` unless ``cond`` holds."""
    if not cond:
        raise ValueError(message)


def check_epsilon(eps: float, upper: float = 1.0) -> float:
    """Validate an approximation parameter ``0 < eps <= upper``."""
    eps = float(eps)
    require(0.0 < eps <= upper, f"epsilon must be in (0, {upper}], got {eps}")
    return eps


def check_probability(p: float, name: str = "probability") -> float:
    p = float(p)
    require(0.0 <= p <= 1.0, f"{name} must be in [0, 1], got {p}")
    return p


def check_positive_weights(w: np.ndarray) -> np.ndarray:
    """Validate strictly positive, finite edge weights."""
    w = np.asarray(w, dtype=np.float64)
    require(bool(np.all(np.isfinite(w))), "weights must be finite")
    require(bool(np.all(w > 0)), "weights must be strictly positive")
    return w


def check_capacities(b: np.ndarray) -> np.ndarray:
    """Validate integer capacities ``b_i >= 1``."""
    b = np.asarray(b)
    require(np.issubdtype(b.dtype, np.integer), "capacities must be integers")
    require(bool(np.all(b >= 1)), "capacities must be >= 1")
    return b.astype(np.int64)
