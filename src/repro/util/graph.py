"""Core graph substrate: numpy edge-array graphs with CSR adjacency.

The entire library operates on undirected, weighted graphs stored as flat
numpy arrays (structure-of-arrays layout).  This is the HPC-friendly
representation used throughout: edge-parallel operations (sampling,
reweighting, level bucketing) are vectorized over these arrays, and the
CSR adjacency index is built lazily only when vertex-local traversal is
required.

Conventions
-----------
* Vertices are integers ``0..n-1``.
* Each undirected edge ``{i, j}`` is stored once in canonical orientation
  ``src[k] < dst[k]``.
* Parallel edges are not permitted in :class:`Graph` (they are merged on
  construction by summing weights); the odd-set machinery that needs
  parallel-edge *multiplicities* (Lemma 24) carries an explicit
  multiplicity array instead.
* ``b`` is the per-vertex capacity vector of the b-matching instance;
  ordinary matching is ``b = 1``.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Iterable, Iterator, Sequence

import numpy as np

__all__ = ["Graph", "CSRAdjacency", "edge_key", "merge_parallel_edges"]


def edge_key(i: np.ndarray | int, j: np.ndarray | int, n: int) -> np.ndarray | int:
    """Collision-free integer key for the undirected edge ``{i, j}``.

    Canonicalizes the orientation so ``edge_key(i, j, n) == edge_key(j, i, n)``.
    Used for O(1) membership testing and for deterministic hashing of edges
    inside sketches.
    """
    lo = np.minimum(i, j)
    hi = np.maximum(i, j)
    return lo * np.int64(n) + hi


def merge_parallel_edges(
    src: np.ndarray, dst: np.ndarray, weight: np.ndarray, n: int
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Canonicalize orientation and merge duplicate edges by summing weights.

    Self-loops are dropped (a matching can never use one).
    Returns sorted-by-key ``(src, dst, weight)`` arrays.
    """
    src = np.asarray(src, dtype=np.int64)
    dst = np.asarray(dst, dtype=np.int64)
    weight = np.asarray(weight, dtype=np.float64)
    keep = src != dst
    src, dst, weight = src[keep], dst[keep], weight[keep]
    lo = np.minimum(src, dst)
    hi = np.maximum(src, dst)
    keys = lo * np.int64(n) + hi
    order = np.argsort(keys, kind="stable")
    keys = keys[order]
    lo, hi, weight = lo[order], hi[order], weight[order]
    if len(keys) == 0:
        return lo, hi, weight
    uniq_mask = np.empty(len(keys), dtype=bool)
    uniq_mask[0] = True
    np.not_equal(keys[1:], keys[:-1], out=uniq_mask[1:])
    group_ids = np.cumsum(uniq_mask) - 1
    n_groups = group_ids[-1] + 1
    wsum = np.zeros(n_groups, dtype=np.float64)
    np.add.at(wsum, group_ids, weight)
    return lo[uniq_mask], hi[uniq_mask], wsum


@dataclass
class CSRAdjacency:
    """CSR adjacency index over a :class:`Graph`.

    ``indptr[v]:indptr[v+1]`` gives, for vertex ``v``, parallel slices into
    ``neighbor`` (the other endpoint) and ``edge_id`` (index into the
    graph's edge arrays).  Both directions of every undirected edge are
    materialized, so each edge id appears exactly twice.
    """

    indptr: np.ndarray
    neighbor: np.ndarray
    edge_id: np.ndarray

    def neighbors(self, v: int) -> np.ndarray:
        return self.neighbor[self.indptr[v] : self.indptr[v + 1]]

    def incident_edges(self, v: int) -> np.ndarray:
        return self.edge_id[self.indptr[v] : self.indptr[v + 1]]

    def degree(self, v: int) -> int:
        return int(self.indptr[v + 1] - self.indptr[v])


@dataclass
class Graph:
    """Undirected weighted graph with optional b-matching capacities.

    Parameters
    ----------
    n:
        Number of vertices.
    src, dst:
        Edge endpoint arrays in canonical orientation (``src < dst``).
    weight:
        Positive edge weights.  Unweighted graphs use all-ones.
    b:
        Integer vertex capacities; defaults to all-ones (plain matching).
    """

    n: int
    src: np.ndarray
    dst: np.ndarray
    weight: np.ndarray
    b: np.ndarray = field(default=None)  # type: ignore[assignment]
    _csr: CSRAdjacency | None = field(default=None, repr=False, compare=False)
    _edge_keys: np.ndarray | None = field(default=None, repr=False, compare=False)
    _fingerprint: str | None = field(default=None, repr=False, compare=False)

    def __post_init__(self) -> None:
        self.src = np.ascontiguousarray(self.src, dtype=np.int64)
        self.dst = np.ascontiguousarray(self.dst, dtype=np.int64)
        self.weight = np.ascontiguousarray(self.weight, dtype=np.float64)
        if self.b is None:
            self.b = np.ones(self.n, dtype=np.int64)
        else:
            self.b = np.ascontiguousarray(self.b, dtype=np.int64)
        if not (len(self.src) == len(self.dst) == len(self.weight)):
            raise ValueError("edge arrays must have equal length")
        if len(self.b) != self.n:
            raise ValueError("capacity vector b must have length n")
        if len(self.src) and (self.src.min() < 0 or self.dst.max() >= self.n):
            raise ValueError("edge endpoint out of range")
        if np.any(self.src >= self.dst):
            raise ValueError("edges must be canonical: src < dst (no self loops)")

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_edges(
        cls,
        n: int,
        edges: Iterable[tuple[int, int]] | np.ndarray,
        weights: Sequence[float] | np.ndarray | None = None,
        b: Sequence[int] | np.ndarray | None = None,
    ) -> "Graph":
        """Build a graph from an iterable of ``(i, j)`` pairs.

        Duplicate edges are merged (weights summed); self-loops dropped.
        """
        arr = np.asarray(list(edges) if not isinstance(edges, np.ndarray) else edges)
        if arr.size == 0:
            arr = arr.reshape(0, 2)
        src = arr[:, 0].astype(np.int64)
        dst = arr[:, 1].astype(np.int64)
        if weights is None:
            w = np.ones(len(src), dtype=np.float64)
        else:
            w = np.asarray(weights, dtype=np.float64)
        src, dst, w = merge_parallel_edges(src, dst, w, n)
        bb = None if b is None else np.asarray(b, dtype=np.int64)
        return cls(n=n, src=src, dst=dst, weight=w, b=bb)

    @classmethod
    def empty(cls, n: int, b: np.ndarray | None = None) -> "Graph":
        return cls(
            n=n,
            src=np.empty(0, dtype=np.int64),
            dst=np.empty(0, dtype=np.int64),
            weight=np.empty(0, dtype=np.float64),
            b=b,
        )

    # ------------------------------------------------------------------
    # Basic accessors
    # ------------------------------------------------------------------
    @property
    def m(self) -> int:
        """Number of edges."""
        return len(self.src)

    @property
    def total_capacity(self) -> int:
        """B = sum_i b_i (the paper's ``B``)."""
        return int(self.b.sum())

    def edge_keys(self) -> np.ndarray:
        """Canonical edge keys, computed once and cached (edges are frozen)."""
        if self._edge_keys is None:
            self._edge_keys = edge_key(self.src, self.dst, self.n)
        return self._edge_keys

    def fingerprint(self) -> str:
        """Canonical content hash of the instance (hex sha256, cached).

        Covers everything a solver can observe -- ``n``, the edge set
        with weights, and the capacity vector ``b`` -- hashed in
        canonical edge-key order, so the fingerprint is invariant to
        the order edges were inserted or stored in and two graphs get
        the same fingerprint iff they are the same instance (up to
        sha256 collisions).  This is the content address the
        :mod:`repro.service` result cache and shard router key on.
        """
        if self._fingerprint is None:
            keys = self.edge_keys()
            # arrays from from_edges are already key-sorted, but a Graph
            # may be constructed directly from any canonical ordering
            if len(keys) and np.any(keys[1:] < keys[:-1]):
                order = np.argsort(keys, kind="stable")
            else:
                order = slice(None)
            h = hashlib.sha256()
            h.update(b"repro-graph-v1")
            h.update(np.int64(self.n).tobytes())
            h.update(np.ascontiguousarray(self.src[order]).tobytes())
            h.update(np.ascontiguousarray(self.dst[order]).tobytes())
            h.update(np.ascontiguousarray(self.weight[order]).tobytes())
            h.update(self.b.tobytes())
            self._fingerprint = h.hexdigest()
        return self._fingerprint

    def edges(self) -> Iterator[tuple[int, int, float]]:
        # tolist() materializes native ints/floats in one C pass; zipping
        # numpy scalars instead costs a boxing allocation per element
        return zip(self.src.tolist(), self.dst.tolist(), self.weight.tolist())

    def degrees(self) -> np.ndarray:
        """Vertex degrees (vectorized bincount over both endpoints)."""
        deg = np.bincount(self.src, minlength=self.n)
        deg += np.bincount(self.dst, minlength=self.n)
        return deg

    def weighted_degrees(self, w: np.ndarray | None = None) -> np.ndarray:
        """Sum of (possibly overridden) edge weights incident to each vertex."""
        ww = self.weight if w is None else np.asarray(w, dtype=np.float64)
        wd = np.zeros(self.n, dtype=np.float64)
        np.add.at(wd, self.src, ww)
        np.add.at(wd, self.dst, ww)
        return wd

    # ------------------------------------------------------------------
    # CSR adjacency
    # ------------------------------------------------------------------
    def csr(self) -> CSRAdjacency:
        """Lazily build (and cache) the CSR adjacency index."""
        if self._csr is None:
            both_src = np.concatenate([self.src, self.dst])
            both_dst = np.concatenate([self.dst, self.src])
            eid = np.concatenate(
                [np.arange(self.m, dtype=np.int64), np.arange(self.m, dtype=np.int64)]
            )
            order = np.argsort(both_src, kind="stable")
            counts = np.bincount(both_src, minlength=self.n)
            indptr = np.zeros(self.n + 1, dtype=np.int64)
            np.cumsum(counts, out=indptr[1:])
            self._csr = CSRAdjacency(
                indptr=indptr, neighbor=both_dst[order], edge_id=eid[order]
            )
        return self._csr

    def neighbors(self, v: int) -> np.ndarray:
        return self.csr().neighbors(v)

    # ------------------------------------------------------------------
    # Subgraphs and cuts
    # ------------------------------------------------------------------
    def edge_subgraph(self, mask: np.ndarray, weights: np.ndarray | None = None) -> "Graph":
        """Graph on the same vertex set keeping edges where ``mask`` is true.

        ``weights`` optionally replaces the kept edges' weights (e.g. the
        importance-reweighted values a sparsifier assigns).
        """
        mask = np.asarray(mask)
        if mask.dtype != bool:
            idx = mask
        else:
            idx = np.flatnonzero(mask)
        w = self.weight[idx] if weights is None else np.asarray(weights, dtype=np.float64)
        return Graph(n=self.n, src=self.src[idx], dst=self.dst[idx], weight=w, b=self.b.copy())

    def cut_value(self, side: np.ndarray, w: np.ndarray | None = None) -> float:
        """Total (override-)weight of edges crossing the cut ``(S, V-S)``.

        ``side`` is a boolean membership array of length ``n``.
        """
        side = np.asarray(side, dtype=bool)
        ww = self.weight if w is None else np.asarray(w, dtype=np.float64)
        crossing = side[self.src] != side[self.dst]
        return float(ww[crossing].sum())

    def induced_edge_mask(self, members: np.ndarray) -> np.ndarray:
        """Boolean mask of edges with *both* endpoints inside ``members``."""
        members = np.asarray(members, dtype=bool)
        return members[self.src] & members[self.dst]

    def total_weight(self) -> float:
        return float(self.weight.sum())

    # ------------------------------------------------------------------
    # Interop
    # ------------------------------------------------------------------
    def to_networkx(self):
        """Convert to ``networkx.Graph`` (used only for verification)."""
        import networkx as nx

        g = nx.Graph()
        g.add_nodes_from(range(self.n))
        for i, j, w in self.edges():
            g.add_edge(i, j, weight=w)
        return g

    def copy(self) -> "Graph":
        return Graph(
            n=self.n,
            src=self.src.copy(),
            dst=self.dst.copy(),
            weight=self.weight.copy(),
            b=self.b.copy(),
        )

    def with_b(self, b: np.ndarray) -> "Graph":
        """Same edges, different capacity vector."""
        return Graph(n=self.n, src=self.src, dst=self.dst, weight=self.weight, b=np.asarray(b))
