"""Deprecation plumbing for the legacy per-model entry points.

After the ``repro.api`` facade (``Problem`` / ``run()``), the bespoke
entry points (``solve_matching``, ``streaming_solve_matching``, the
baseline functions, the forest protocols) survive as thin shims that
emit one :class:`DeprecationWarning` and delegate to the facade --
which pins them bit-identical to it by construction.  Importing a shim
is warning-free; only calling it warns.
"""

from __future__ import annotations

import warnings

__all__ = ["warn_legacy"]


def warn_legacy(old: str, new: str, stacklevel: int = 3) -> None:
    """Emit the one deprecation notice a legacy shim is allowed.

    ``stacklevel=3`` points the warning at the *caller* of the shim
    (shim frame + this helper frame are skipped).
    """
    warnings.warn(
        f"{old} is deprecated; use {new} (migration table: docs/api.md)",
        DeprecationWarning,
        stacklevel=stacklevel,
    )
