"""Deterministic randomness plumbing.

Every stochastic component in the library (sketches, sparsifiers, samplers,
generators) receives its randomness through an explicit
:class:`numpy.random.Generator`.  This module provides the conventions:

* :func:`make_rng` — normalize ``None | int | Generator`` into a Generator.
* :func:`spawn` — derive independent child generators from a parent, so a
  distributed computation (e.g. one sketch per vertex) can hand each
  component its own stream while staying bit-reproducible.

The paper's algorithms are Monte Carlo with high-probability guarantees;
pinning seeds makes every experiment in ``benchmarks/`` reproducible.
"""

from __future__ import annotations

import numpy as np

__all__ = ["make_rng", "spawn", "derive_seed"]

_DEFAULT_SEED = 0xA66_2015  # Ahn-Guha, SPAA 2015


def make_rng(seed: int | np.random.Generator | None = None) -> np.random.Generator:
    """Return a Generator from a seed, an existing Generator, or the default."""
    if isinstance(seed, np.random.Generator):
        return seed
    if seed is None:
        seed = _DEFAULT_SEED
    return np.random.default_rng(seed)


def spawn(rng: np.random.Generator, k: int) -> list[np.random.Generator]:
    """Derive ``k`` statistically independent child generators."""
    return [np.random.default_rng(s) for s in rng.bit_generator.seed_seq.spawn(k)]


def derive_seed(rng: np.random.Generator) -> int:
    """Draw a fresh 63-bit seed; used to parameterize hash families."""
    return int(rng.integers(0, 2**63 - 1))
