"""Resource accounting: rounds, space and adaptivity ledgers.

The paper's guarantees are stated in *model* resources -- adaptive
sketching rounds, central memory in stored edges/words, per-vertex message
sizes -- not wall-clock time.  :class:`ResourceLedger` is the single
object every resource-constrained component writes into, so experiments
E2/E3/E9 read their numbers from one audited place.

Two kinds of adaptivity are tracked separately, mirroring Figure 1 of the
paper:

* ``sampling_rounds`` -- rounds that require *fresh access to the input*
  (a new sketch/sample of the edge stream).  Theorem 15 bounds these by
  ``O(p / eps)``.
* ``refinement_steps`` -- sequential uses of already-collected samples
  (deferred-sparsifier refinements, MicroOracle invocations).  These may
  be ``O(eps^-2 log n)`` without touching the input again.
"""

from __future__ import annotations

import math
from bisect import bisect_left
from dataclasses import dataclass, field
from typing import Sequence

__all__ = [
    "ResourceLedger",
    "SpaceHighWater",
    "CountHistogram",
    "CounterSet",
    "LatencyHistogram",
    "DEFAULT_LATENCY_BUCKETS_MS",
    "percentile",
    "current_rss_bytes",
    "peak_rss_bytes",
]


def current_rss_bytes() -> int | None:
    """Resident-set size of this process right now, in bytes.

    Read from ``/proc/self/statm`` (Linux); ``None`` where that is
    unavailable.  The ledger's ``central_space`` tracks the *model*
    words an algorithm admits to; this is the physical counterpart the
    out-of-core benches report next to it.
    """
    try:
        with open("/proc/self/statm") as fh:
            pages = int(fh.read().split()[1])
        import os

        return pages * os.sysconf("SC_PAGE_SIZE")
    except (OSError, IndexError, ValueError):
        return None


def peak_rss_bytes() -> int | None:
    """High-water resident-set size of this process, in bytes.

    On Linux this reads ``VmHWM`` from ``/proc/self/status``: unlike
    ``getrusage``'s ``ru_maxrss``, it is reset by ``execve``, so a
    fresh subprocess reports *its own* peak even when forked from a
    large parent (``ru_maxrss`` survives exec and would report the
    parent's high water instead).  Falls back to ``ru_maxrss`` (KiB on
    Linux, bytes on macOS), ``None`` where unsupported.  Still a
    whole-process high-water mark, so out-of-core memory claims must
    be measured in a fresh subprocess per scenario -- see
    ``benchmarks/bench_s7_outofcore.py``.
    """
    try:
        with open("/proc/self/status") as fh:
            for line in fh:
                if line.startswith("VmHWM:"):
                    return int(line.split()[1]) * 1024
    except (OSError, IndexError, ValueError):
        pass
    try:
        import resource
        import sys

        raw = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
        return int(raw) if sys.platform == "darwin" else int(raw) * 1024
    except (ImportError, OSError, ValueError):
        return None


def percentile(values: Sequence[float], q: float) -> float | None:
    """Nearest-rank percentile of ``values`` (``None`` when empty).

    Nearest-rank (rather than interpolated) so the reported latency is
    always one that an actual request experienced -- the convention the
    :mod:`repro.service` stats surface uses for p50/p95.
    """
    if not values:
        return None
    if not 0.0 <= q <= 100.0:
        raise ValueError("percentile q must be in [0, 100]")
    ordered = sorted(values)
    rank = max(1, math.ceil(q / 100.0 * len(ordered)))
    return ordered[rank - 1]


@dataclass
class CountHistogram:
    """Exact integer-valued histogram (value -> occurrence count).

    Small-domain counting (batch occupancies, shard sizes): values are
    kept exact rather than bucketed, since the domain is bounded by the
    configured maximum batch size.
    """

    counts: dict[int, int] = field(default_factory=dict)

    def observe(self, value: int, k: int = 1) -> None:
        value = int(value)
        self.counts[value] = self.counts.get(value, 0) + int(k)

    @property
    def total(self) -> int:
        return sum(self.counts.values())

    def mean(self) -> float | None:
        total = self.total
        if total == 0:
            return None
        return sum(v * c for v, c in self.counts.items()) / total

    def as_dict(self) -> dict[int, int]:
        return dict(sorted(self.counts.items()))


#: Default latency bucket upper bounds, in milliseconds.  Roughly
#: logarithmic 1-2.5-5 spacing from 1 ms to 10 s -- wide enough that
#: both a cache hit (<1 ms) and a saturated-queue solve (seconds) land
#: in an informative bucket.  Values above the last bound live in the
#: implicit overflow (``+Inf``) bucket.
DEFAULT_LATENCY_BUCKETS_MS: tuple[float, ...] = (
    1.0, 2.5, 5.0, 10.0, 25.0, 50.0, 100.0, 250.0,
    500.0, 1000.0, 2500.0, 5000.0, 10000.0,
)


class LatencyHistogram:
    """Thread-safe fixed-bucket histogram of latency observations (ms).

    The Prometheus-histogram counterpart of :class:`CountHistogram`:
    where the exact integer histogram suits small bounded domains
    (batch sizes), latencies are continuous and unbounded, so they are
    folded into a fixed set of bucket upper bounds plus an overflow
    bucket.  ``observe`` is O(log buckets) (bisect) under one lock;
    :meth:`snapshot` returns the *cumulative* per-bucket counts, the
    observation count and the sum -- exactly the samples a Prometheus
    ``histogram`` family needs (``_bucket{le=...}``/``_count``/
    ``_sum``; see :func:`repro.server.metrics.render_prometheus`).

    >>> h = LatencyHistogram(bounds_ms=(1.0, 10.0, 100.0))
    >>> for value in (0.5, 3.0, 250.0):
    ...     h.observe(value)
    >>> snap = h.snapshot()
    >>> snap["count"], [c for _, c in snap["buckets"]]
    (3, [1, 2, 2])
    >>> round(snap["sum"], 1)
    253.5
    """

    __slots__ = ("_bounds", "_counts", "_sum", "_count", "_lock")

    def __init__(
        self, bounds_ms: Sequence[float] = DEFAULT_LATENCY_BUCKETS_MS
    ):
        import threading

        bounds = tuple(float(b) for b in bounds_ms)
        if not bounds:
            raise ValueError("at least one bucket bound is required")
        if any(b <= 0 for b in bounds) or any(
            a >= b for a, b in zip(bounds, bounds[1:])
        ):
            raise ValueError("bucket bounds must be positive and increasing")
        self._bounds = bounds
        self._counts = [0] * (len(bounds) + 1)  # last = overflow (+Inf)
        self._sum = 0.0
        self._count = 0
        self._lock = threading.Lock()

    @property
    def bounds_ms(self) -> tuple[float, ...]:
        return self._bounds

    def observe(self, value_ms: float) -> None:
        value = float(value_ms)
        idx = bisect_left(self._bounds, value)
        with self._lock:
            self._counts[idx] += 1
            self._sum += value
            self._count += 1

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    def mean(self) -> float | None:
        with self._lock:
            if self._count == 0:
                return None
            return self._sum / self._count

    def snapshot(self) -> dict:
        """Cumulative-bucket snapshot.

        ``{"buckets": [(le_ms, cumulative_count), ...], "count": n,
        "sum": total_ms}`` -- ``count`` includes the overflow bucket,
        so it is the implied ``+Inf`` cumulative value.
        """
        with self._lock:
            counts = list(self._counts)
            total = self._count
            total_sum = self._sum
        buckets: list[tuple[float, int]] = []
        acc = 0
        for le, c in zip(self._bounds, counts):
            acc += c
            buckets.append((le, acc))
        return {"buckets": buckets, "count": total, "sum": total_sum}

    def summary(self) -> dict:
        """Small JSON row for ``stats`` surfaces (count/mean, no buckets)."""
        with self._lock:
            count = self._count
            total_sum = self._sum
        mean = total_sum / count if count else None
        return {"count": count, "sum_ms": total_sum, "mean_ms": mean}


class CounterSet:
    """Thread-safe monotonic counters keyed by ``(name, label...)``.

    The serving layer's operational counters (requests per op, sheds
    per reason, bytes per direction) are all "count events, grouped by
    a small label" -- this is that, with a lock, so writers on the
    event loop and readers on a metrics scrape never tear.  Keys are
    a bare name (``"admitted"``) or a ``(name, label)`` tuple
    (``("shed", "queue_full")``).
    """

    def __init__(self) -> None:
        import threading

        self._lock = threading.Lock()
        self._counts: dict[tuple, int] = {}

    @staticmethod
    def _key(name) -> tuple:
        return name if isinstance(name, tuple) else (name,)

    def inc(self, name, k: int = 1) -> None:
        key = self._key(name)
        with self._lock:
            self._counts[key] = self._counts.get(key, 0) + int(k)

    def get(self, name) -> int:
        with self._lock:
            return self._counts.get(self._key(name), 0)

    def labelled(self, name: str) -> dict[str, int]:
        """All ``(name, label)`` counts as ``label -> count``."""
        with self._lock:
            return {
                key[1]: v
                for key, v in self._counts.items()
                if len(key) == 2 and key[0] == name
            }

    def as_dict(self) -> dict:
        """Flat snapshot: ``"name"`` or ``"name:label"`` -> count."""
        with self._lock:
            return {
                ":".join(str(part) for part in key): v
                for key, v in sorted(self._counts.items())
            }


@dataclass
class SpaceHighWater:
    """Tracks current and peak usage of one space category (in 'words')."""

    current: int = 0
    peak: int = 0

    def add(self, amount: int) -> None:
        self.current += int(amount)
        if self.current > self.peak:
            self.peak = self.current

    def release(self, amount: int) -> None:
        self.current -= int(amount)
        if self.current < 0:
            self.current = 0

    def set_current(self, amount: int) -> None:
        self.current = int(amount)
        if self.current > self.peak:
            self.peak = self.current


@dataclass
class ResourceLedger:
    """Audited counters for all resource-constrained computation.

    Attributes
    ----------
    sampling_rounds:
        Adaptive rounds that re-access the input (MapReduce rounds /
        streaming passes).  The headline O(p/eps) quantity.
    refinement_steps:
        Sequential post-processing steps over stored samples only.
    oracle_calls:
        MicroOracle invocations (tau_i ledger of Theorem 4).
    central_space:
        High-water mark of centrally stored words (edges count as one
        word each, sketch counters one word each).
    shuffle_words:
        Total words moved through MapReduce shuffles.
    edges_streamed:
        Total edge reads from the input (for per-pass cost accounting).
    """

    sampling_rounds: int = 0
    refinement_steps: int = 0
    oracle_calls: int = 0
    central_space: SpaceHighWater = field(default_factory=SpaceHighWater)
    shuffle_words: int = 0
    edges_streamed: int = 0
    notes: list[str] = field(default_factory=list)

    def tick_sampling_round(self, note: str | None = None) -> None:
        self.sampling_rounds += 1
        if note:
            self.notes.append(f"round {self.sampling_rounds}: {note}")

    def tick_refinement(self, k: int = 1) -> None:
        self.refinement_steps += int(k)

    def tick_oracle(self, k: int = 1) -> None:
        self.oracle_calls += int(k)

    def charge_space(self, words: int) -> None:
        self.central_space.add(words)

    def release_space(self, words: int) -> None:
        self.central_space.release(words)

    def charge_shuffle(self, words: int) -> None:
        self.shuffle_words += int(words)

    def charge_stream(self, edges: int) -> None:
        self.edges_streamed += int(edges)

    def snapshot(self) -> dict:
        """Plain-dict summary for experiment tables."""
        return {
            "sampling_rounds": self.sampling_rounds,
            "refinement_steps": self.refinement_steps,
            "oracle_calls": self.oracle_calls,
            "peak_central_space": self.central_space.peak,
            "shuffle_words": self.shuffle_words,
            "edges_streamed": self.edges_streamed,
        }
