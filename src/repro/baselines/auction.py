"""Auction algorithm for bipartite maximum-weight matching (pass-based).

The related-work landscape the paper positions itself against includes
multi-pass bipartite algorithms whose pass count depends on ``eps``
([1, 6, 14-16, 22, 39]).  The auction algorithm (Bertsekas) is the
cleanest member with an unconditional guarantee:

* right vertices carry *prices* ``p_j``; unmatched left vertices *bid*
  for their best ``j`` (maximizing ``w_ij - p_j``) raising the price by
  the bid increment plus the profit margin over the second-best option;
* with minimum increment ``delta``, termination yields a matching within
  ``n_left * delta`` of the maximum weight (eps-complementary
  slackness).

One *round* = one sweep of bids by all currently unmatched left
vertices = one streaming pass over their incident edges; rounds are
charged to the ledger so E4 can put the auction on the same
rounds-vs-quality axes as the dual-primal solver.  Setting
``delta = eps * W* / n_left`` gives a ``(1-eps)``-style additive
guarantee at ``O(max_w / delta)`` worst-case rounds -- the "number of
iterations depends on the problem parameters" failure mode the paper's
O(p/eps) result removes.
"""

from __future__ import annotations

import numpy as np

from repro.matching.structures import BMatching
from repro.util.graph import Graph
from repro.util.instrumentation import ResourceLedger

__all__ = ["bipartite_sides", "auction_matching", "auction_backend_run"]


def bipartite_sides(graph: Graph) -> tuple[np.ndarray, np.ndarray] | None:
    """2-color the graph; ``None`` when an odd cycle makes it nonbipartite.

    Returns boolean masks ``(left, right)``; isolated vertices go left.
    """
    color = np.full(graph.n, -1, dtype=np.int8)
    csr = graph.csr()
    for start in range(graph.n):
        if color[start] != -1:
            continue
        color[start] = 0
        stack = [start]
        while stack:
            v = stack.pop()
            for u in csr.neighbors(v):
                u = int(u)
                if color[u] == -1:
                    color[u] = 1 - color[v]
                    stack.append(u)
                elif color[u] == color[v]:
                    return None
    return color == 0, color == 1


def auction_matching(
    graph: Graph,
    eps: float = 0.1,
    ledger: ResourceLedger | None = None,
    max_rounds: int | None = None,
) -> BMatching:
    """Bipartite maximum-weight matching by auction (``b = 1``).

    .. deprecated::
        Thin shim over ``repro.api.run(problem,
        backend="baseline:auction")``; results are pinned bit-identical
        (the backend runs the same implementation).
    """
    from repro.api import ModelBudgets, Problem, run
    from repro.util.deprecation import warn_legacy

    warn_legacy(
        "repro.baselines.auction_matching",
        'repro.api.run(problem, backend="baseline:auction")',
    )
    problem = Problem(
        graph,
        budgets=ModelBudgets(max_rounds=max_rounds),
        options={"eps": eps, "ledger": ledger},
    )
    return run(problem, backend="baseline:auction").matching


def auction_backend_run(
    graph: Graph,
    eps: float = 0.1,
    ledger: ResourceLedger | None = None,
    max_rounds: int | None = None,
    sides: tuple[np.ndarray, np.ndarray] | None = None,
) -> BMatching:
    """Auction implementation behind the ``baseline:auction`` backend.

    ``sides`` lets a caller that already 2-colored the graph (the
    backend's ``check``) skip the second O(n + m) bipartiteness scan.

    Raises ``ValueError`` on nonbipartite input.  The matching returned
    satisfies ``w(M) >= w(M*) - n_left * delta`` where
    ``delta = eps * max_w / max(1, n_left)``; unprofitable vertices
    (best net value < 0) drop out unmatched, which is correct for
    *maximum weight* (not perfect) matching.

    Resource accounting: one ``sampling_round`` per bid sweep, one
    ``edges_streamed`` unit per incident edge scanned by a bidder, and
    the ``4n``-word auction state (prices, ownership, matches) as
    central space.
    """
    if not (0.0 < eps < 1.0):
        raise ValueError("eps must be in (0, 1)")
    if sides is None:
        sides = bipartite_sides(graph)
    if sides is None:
        raise ValueError("auction_matching requires a bipartite graph")
    left_mask, _right_mask = sides
    if graph.m == 0:
        return BMatching.empty(graph)

    max_w = float(graph.weight.max())
    n_left = max(1, int(left_mask.sum()))
    delta = eps * max_w / n_left
    if max_rounds is None:
        # each bid raises some price by >= delta and prices are bounded
        # by max_w, so n_left * max_w / delta bids suffice; sweeps are
        # far fewer in practice -- cap generously.
        max_rounds = int(np.ceil(2.0 * n_left / eps)) + 8

    csr = graph.csr()
    price = np.zeros(graph.n, dtype=np.float64)
    owner = np.full(graph.n, -1, dtype=np.int64)  # right vertex -> left owner
    owner_edge = np.full(graph.n, -1, dtype=np.int64)
    match_of = np.full(graph.n, -1, dtype=np.int64)  # left vertex -> edge id
    unassigned = [int(v) for v in np.flatnonzero(left_mask) if csr.degree(int(v))]
    dropped: set[int] = set()
    if ledger is not None:
        # prices + owner + owner_edge + match_of, one word per vertex each
        ledger.charge_space(4 * graph.n)

    rounds = 0
    while unassigned and rounds < max_rounds:
        rounds += 1
        if ledger is not None:
            ledger.tick_sampling_round("auction bid sweep")
            ledger.charge_stream(sum(csr.degree(i) for i in unassigned))
        next_unassigned: list[int] = []
        for i in unassigned:
            # best and second-best net value over incident edges
            best_e, best_v, second_v = -1, -np.inf, -np.inf
            for eid in csr.incident_edges(i):
                j = int(graph.dst[eid]) if int(graph.src[eid]) == i else int(graph.src[eid])
                v = float(graph.weight[eid]) - price[j]
                if v > best_v:
                    second_v = best_v
                    best_e, best_v = int(eid), v
                elif v > second_v:
                    second_v = v
            if best_e < 0 or best_v < 0:
                dropped.add(i)  # nothing profitable: stay unmatched
                continue
            j = int(graph.dst[best_e]) if int(graph.src[best_e]) == i else int(graph.src[best_e])
            margin = best_v - (second_v if np.isfinite(second_v) else 0.0)
            price[j] += max(delta, margin + delta)
            prev = int(owner[j])
            if prev != -1:
                match_of[prev] = -1
                next_unassigned.append(prev)
            owner[j] = i
            owner_edge[j] = best_e
            match_of[i] = best_e
        unassigned = next_unassigned

    if ledger is not None:
        ledger.release_space(4 * graph.n)
    ids = np.unique(owner_edge[owner_edge >= 0])
    result = BMatching(graph, ids)
    result.check_valid()
    return result
