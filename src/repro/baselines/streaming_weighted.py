"""One-pass weighted streaming matching (Feigenbaum et al. [16] / McGregor [29]).

The classic gamma-charging algorithm: keep a provisional matching; when
edge ``e`` arrives, let ``C`` be the provisional edges sharing an
endpoint.  Replace ``C`` by ``e`` iff

    w(e) >= (1 + gamma) * w(C).

Evicted edges are "charged" to their replacement; the geometric charging
argument gives a ``1 / (3 + 2 sqrt 2) ~ 0.171``-approximation at the
optimal ``gamma = 1/sqrt 2`` (McGregor's tuning; Feigenbaum et al.'s
``gamma = 1`` gives 1/6).  One pass, ``O(n)`` state -- the cheapest
point on the rounds/quality tradeoff curve that experiment E4 plots the
dual-primal algorithm against.
"""

from __future__ import annotations

import numpy as np

from repro.matching.structures import BMatching
from repro.streaming.stream import EdgeStream
from repro.util.graph import Graph

__all__ = ["one_pass_weighted_matching", "charging_approximation_bound"]


def charging_approximation_bound(gamma: float) -> float:
    """Worst-case approximation factor of gamma-charging.

    ``f(gamma) = gamma (1+gamma) / (1 + 3 gamma + gamma^2 + gamma^3)``
    is the standard charging bound; maximized near ``gamma = 1/sqrt 2``.
    Exposed so the benchmark can annotate measured ratios with the
    guarantee they must dominate.
    """
    if gamma <= 0:
        raise ValueError("gamma must be positive")
    g = float(gamma)
    return g * (1.0 + g) / (1.0 + 3.0 * g + g * g + g * g * g)


def one_pass_weighted_matching(
    stream: EdgeStream | Graph,
    gamma: float = 2.0**-0.5,
) -> BMatching:
    """Single-pass gamma-charging weighted matching (``b = 1``).

    Accepts a replayable :class:`EdgeStream` (pass is charged to its
    ledger) or a bare :class:`Graph` (treated as an input-order stream).
    """
    if gamma <= 0:
        raise ValueError("gamma must be positive")
    if isinstance(stream, Graph):
        stream = EdgeStream(stream)
    graph = stream.graph
    matched_at = np.full(graph.n, -1, dtype=np.int64)  # edge id or -1
    weight_of: dict[int, float] = {}

    for u, v, w, eid in stream:
        conflicts = {int(matched_at[u]), int(matched_at[v])} - {-1}
        conflict_w = sum(weight_of[c] for c in conflicts)
        if w >= (1.0 + gamma) * conflict_w and w > 0:
            for c in conflicts:
                cu, cv = int(graph.src[c]), int(graph.dst[c])
                matched_at[cu] = -1
                matched_at[cv] = -1
                del weight_of[c]
            matched_at[u] = eid
            matched_at[v] = eid
            weight_of[eid] = w

    ids = np.asarray(sorted(weight_of), dtype=np.int64)
    return BMatching(graph, ids)
