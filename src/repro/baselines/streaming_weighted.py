"""One-pass weighted streaming matching (Feigenbaum et al. [16] / McGregor [29]).

The classic gamma-charging algorithm: keep a provisional matching; when
edge ``e`` arrives, let ``C`` be the provisional edges sharing an
endpoint.  Replace ``C`` by ``e`` iff

    w(e) >= (1 + gamma) * w(C).

Evicted edges are "charged" to their replacement; the geometric charging
argument gives a ``1 / (3 + 2 sqrt 2) ~ 0.171``-approximation at the
optimal ``gamma = 1/sqrt 2`` (McGregor's tuning; Feigenbaum et al.'s
``gamma = 1`` gives 1/6).  One pass, ``O(n)`` state -- the cheapest
point on the rounds/quality tradeoff curve that experiment E4 plots the
dual-primal algorithm against.
"""

from __future__ import annotations

import numpy as np

from repro.matching.structures import BMatching
from repro.streaming.stream import EdgeStream
from repro.util.graph import Graph
from repro.util.instrumentation import ResourceLedger

__all__ = [
    "one_pass_weighted_matching",
    "one_pass_backend_run",
    "charging_approximation_bound",
]


def charging_approximation_bound(gamma: float) -> float:
    """Worst-case approximation factor of gamma-charging.

    ``f(gamma) = gamma (1+gamma) / (1 + 3 gamma + gamma^2 + gamma^3)``
    is the standard charging bound; maximized near ``gamma = 1/sqrt 2``.
    Exposed so the benchmark can annotate measured ratios with the
    guarantee they must dominate.
    """
    if gamma <= 0:
        raise ValueError("gamma must be positive")
    g = float(gamma)
    return g * (1.0 + g) / (1.0 + 3.0 * g + g * g + g * g * g)


def one_pass_weighted_matching(
    stream: EdgeStream | Graph,
    gamma: float = 2.0**-0.5,
    ledger: ResourceLedger | None = None,
) -> BMatching:
    """Single-pass gamma-charging weighted matching (``b = 1``).

    .. deprecated::
        Thin shim over ``repro.api.run(problem,
        backend="baseline:one_pass")``; results are pinned
        bit-identical (the backend runs the same implementation).
    """
    from repro.api import Problem, run
    from repro.util.deprecation import warn_legacy

    warn_legacy(
        "repro.baselines.one_pass_weighted_matching",
        'repro.api.run(problem, backend="baseline:one_pass")',
    )
    graph = stream if isinstance(stream, Graph) else stream.graph
    options: dict = {"gamma": gamma, "ledger": ledger}
    if not isinstance(stream, Graph):
        options["stream"] = stream
    problem = Problem(graph, options=options)
    return run(problem, backend="baseline:one_pass").matching


def one_pass_backend_run(
    stream: EdgeStream | Graph,
    gamma: float = 2.0**-0.5,
    ledger: ResourceLedger | None = None,
) -> BMatching:
    """Implementation behind the ``baseline:one_pass`` backend.

    Accepts a replayable :class:`EdgeStream` or a bare :class:`Graph`
    (treated as an input-order stream).  The pass is charged to
    ``ledger`` (or to the stream's own ledger when it already has one);
    central space is the ``n``-word ``matched_at`` array plus two words
    per provisional edge at its high-water mark.
    """
    if gamma <= 0:
        raise ValueError("gamma must be positive")
    attached = False
    restore: ResourceLedger | None = None
    if isinstance(stream, Graph):
        stream = EdgeStream(stream, ledger=ledger)
    elif ledger is not None and stream.ledger is not ledger:
        # borrow, never keep: an explicit ledger wins over whatever the
        # stream was built with, and the stream comes back exactly as it
        # arrived -- otherwise repeated runs accumulate each other's
        # charges or account into the wrong sink
        restore = stream.ledger
        stream.ledger = ledger
        attached = True
    account = stream.ledger
    try:
        graph = stream.graph
        matched_at = np.full(graph.n, -1, dtype=np.int64)  # edge id or -1
        weight_of: dict[int, float] = {}
        held = graph.n
        if account is not None:
            account.charge_space(held)

        for u, v, w, eid in stream:
            conflicts = {int(matched_at[u]), int(matched_at[v])} - {-1}
            conflict_w = sum(weight_of[c] for c in conflicts)
            if w >= (1.0 + gamma) * conflict_w and w > 0:
                for c in conflicts:
                    cu, cv = int(graph.src[c]), int(graph.dst[c])
                    matched_at[cu] = -1
                    matched_at[cv] = -1
                    del weight_of[c]
                matched_at[u] = eid
                matched_at[v] = eid
                weight_of[eid] = w
                if account is not None and graph.n + 2 * len(weight_of) > held:
                    account.charge_space(graph.n + 2 * len(weight_of) - held)
                    held = graph.n + 2 * len(weight_of)

        if account is not None:
            account.release_space(held)
    finally:
        if attached:
            stream.ledger = restore
    ids = np.asarray(sorted(weight_of), dtype=np.int64)
    return BMatching(graph, ids)
