"""Lattanzi-Moseley-Suri-Vassilvitskii filtering baseline (SPAA 2011, [25]).

The paper's point of departure: an O(1)-approximate maximum matching in
``O(p)`` MapReduce rounds with ``O(n^{1+1/p})`` central memory.  The
weighted variant (as analyzed in [25], Section 4): partition edges into
geometric weight classes, run the unweighted filtering per class from
heaviest to lightest keeping feasibility -- an 8-approximation; the
unweighted core is:

    repeat: sample n^{1+1/p} surviving edges, compute a maximal matching
    of the sample, drop every edge with a matched endpoint.

Lemma 19 ("sampling hits every 2n/q-edge subgraph") gives the n^{1/p}
per-round shrinkage.  Our implementation generalizes to b-matching
exactly as the paper's Lemma 20 does (saturating multiplicities).

Used by experiment E4 as the rounds/quality baseline the dual-primal
algorithm is compared against.
"""

from __future__ import annotations

import numpy as np

from repro.matching.maximal import maximal_bmatching_sampled
from repro.matching.structures import BMatching
from repro.util.graph import Graph
from repro.util.instrumentation import ResourceLedger
from repro.util.rng import make_rng, spawn

__all__ = ["lattanzi_unweighted", "lattanzi_weighted", "lattanzi_backend_run"]


def lattanzi_unweighted(
    graph: Graph,
    p: float = 2.0,
    seed: int | np.random.Generator | None = None,
    ledger: ResourceLedger | None = None,
) -> BMatching:
    """Filtering maximal (b-)matching: O(p) rounds, n^{1+1/p} memory.

    .. deprecated::
        Thin shim over ``repro.api.run(problem,
        backend="baseline:lattanzi")`` with
        ``options={"weighted": False}``; results pinned bit-identical.
    """
    from repro.api import Problem, run
    from repro.util.deprecation import warn_legacy

    warn_legacy(
        "repro.baselines.lattanzi_unweighted",
        'repro.api.run(problem, backend="baseline:lattanzi")',
    )
    # p travels in options, not SolverConfig: the legacy surface accepts
    # any p the sampling core does (incl. p <= 1), while SolverConfig
    # validates the solver's own p > 1 domain
    problem = Problem(
        graph,
        options={"p": p, "seed": seed, "ledger": ledger, "weighted": False},
    )
    return run(problem, backend="baseline:lattanzi").matching


def lattanzi_weighted(
    graph: Graph,
    p: float = 2.0,
    seed: int | np.random.Generator | None = None,
    ledger: ResourceLedger | None = None,
    base: float = 2.0,
) -> BMatching:
    """Weight-class filtering: O(1)-approximate weighted (b-)matching.

    .. deprecated::
        Thin shim over ``repro.api.run(problem,
        backend="baseline:lattanzi")``; results pinned bit-identical
        (the backend runs the same implementation).
    """
    from repro.api import Problem, run
    from repro.util.deprecation import warn_legacy

    warn_legacy(
        "repro.baselines.lattanzi_weighted",
        'repro.api.run(problem, backend="baseline:lattanzi")',
    )
    # p travels in options (see lattanzi_unweighted): legacy callers may
    # use p values outside SolverConfig's p > 1 solver domain
    problem = Problem(
        graph,
        options={"p": p, "seed": seed, "ledger": ledger, "base": base},
    )
    return run(problem, backend="baseline:lattanzi").matching


def lattanzi_backend_run(
    graph: Graph,
    p: float = 2.0,
    seed: int | np.random.Generator | None = None,
    ledger: ResourceLedger | None = None,
    base: float = 2.0,
    weighted: bool = True,
) -> BMatching:
    """Implementation behind the ``baseline:lattanzi`` backend.

    ``weighted=False`` runs the unweighted filtering core (one maximal
    b-matching by Lemma 20 sampling); ``weighted=True`` (default) runs
    the heaviest-first weight-class loop around it.

    Classes ``[base^l, base^{l+1})`` are processed heaviest-first; each
    class runs the unweighted filtering on the *residual* capacities.
    The classic analysis gives an 8-approximation for ``base = 2``
    (factor 2 class rounding x factor 2 maximality x factor 2 blocking).

    Resource accounting: per-round sampling/space charges come from
    :func:`~repro.matching.maximal.maximal_bmatching_sampled`; the
    weighted loop additionally holds the ``n``-word residual-capacity
    vector for its whole duration.
    """
    if not weighted:
        return maximal_bmatching_sampled(graph, p=p, seed=seed, ledger=ledger)
    rng = make_rng(seed)
    if graph.m == 0:
        return BMatching.empty(graph)
    classes = np.floor(np.log(graph.weight) / np.log(base)).astype(np.int64)
    residual = graph.b.copy()
    if ledger is not None:
        ledger.charge_space(graph.n)  # residual-capacity vector
    taken: dict[int, int] = {}
    uniq = np.unique(classes)[::-1]
    children = spawn(rng, len(uniq))
    for t, cls in enumerate(uniq):
        ids = np.flatnonzero(classes == cls)
        sub = graph.edge_subgraph(ids)
        sub = sub.with_b(residual)
        # skip classes with no usable capacity
        if not ((residual[sub.src] > 0) & (residual[sub.dst] > 0)).any():
            continue
        mk = maximal_bmatching_sampled(sub, p=p, seed=children[t], ledger=ledger)
        for e_sub, mult in zip(mk.edge_ids, mk.multiplicity):
            e = int(ids[e_sub])
            i, j = graph.src[e], graph.dst[e]
            take = min(int(mult), int(residual[i]), int(residual[j]))
            if take > 0:
                taken[e] = taken.get(e, 0) + take
                residual[i] -= take
                residual[j] -= take
    if ledger is not None:
        ledger.release_space(graph.n)
    if not taken:
        return BMatching.empty(graph)
    ids = np.asarray(sorted(taken), dtype=np.int64)
    mult = np.asarray([taken[int(e)] for e in ids], dtype=np.int64)
    return BMatching(graph, ids, mult)
