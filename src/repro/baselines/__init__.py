"""Baselines the paper compares against: filtering [25], McGregor [29],
one-pass gamma-charging [16], and the pass-based bipartite auction."""

from repro.baselines.auction import auction_matching, bipartite_sides
from repro.baselines.lattanzi_filtering import lattanzi_unweighted, lattanzi_weighted
from repro.baselines.mcgregor import mcgregor_matching
from repro.baselines.streaming_weighted import (
    charging_approximation_bound,
    one_pass_weighted_matching,
)

__all__ = [
    "lattanzi_unweighted",
    "lattanzi_weighted",
    "mcgregor_matching",
    "one_pass_weighted_matching",
    "charging_approximation_bound",
    "auction_matching",
    "bipartite_sides",
]
