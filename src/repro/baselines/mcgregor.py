"""McGregor-style streaming matching baseline ([29]).

For unweighted cardinality matching, McGregor (APPROX 2005) achieves a
(1-eps)-approximation with 2^{O(1/eps)} passes: start from a maximal
matching and repeatedly find short augmenting paths with randomized
layered sampling.  The paper cites this as the prior art whose
*iteration count depends exponentially on 1/eps* -- the dual-primal
algorithm's O(p/eps) rounds is the contrast.

We implement the spirit faithfully at simulation scale: greedy maximal
matching in pass 1, then per epoch one pass that collects the edges
incident to free vertices and augments along length-3 alternating paths
(the first augmentation class; longer paths follow in later epochs via
repeated application).  Pass counting goes to the ledger so E4 can
tabulate rounds-vs-quality against the other algorithms.
"""

from __future__ import annotations

import numpy as np

from repro.matching.structures import BMatching
from repro.streaming.stream import EdgeStream
from repro.util.graph import Graph
from repro.util.instrumentation import ResourceLedger

__all__ = ["mcgregor_matching", "mcgregor_backend_run"]


def _augment_length3(
    graph: Graph, matched: set[int], matched_at: np.ndarray
) -> int:
    """One sweep of length-3 augmentations (free-matched-free).

    ``matched_at[v]`` is the matched edge at ``v`` or -1.  Returns the
    number of augmentations applied.
    """
    src, dst = graph.src, graph.dst
    gains = 0
    for e in matched.copy():
        a, b = int(src[e]), int(dst[e])
        # look for free x adjacent to a and free y adjacent to b, x != y
        found = None
        for ea in graph.csr().incident_edges(a):
            if ea == e:
                continue
            x = int(dst[ea]) if int(src[ea]) == a else int(src[ea])
            if matched_at[x] != -1:
                continue
            for eb in graph.csr().incident_edges(b):
                if eb == e:
                    continue
                y = int(dst[eb]) if int(src[eb]) == b else int(src[eb])
                if matched_at[y] != -1 or y == x:
                    continue
                found = (int(ea), int(eb))
                break
            if found:
                break
        if found:
            ea, eb = found
            matched.discard(e)
            matched.add(ea)
            matched.add(eb)
            for edge in (e,):
                matched_at[int(src[edge])] = -1
                matched_at[int(dst[edge])] = -1
            for edge in (ea, eb):
                matched_at[int(src[edge])] = edge
                matched_at[int(dst[edge])] = edge
            gains += 1
    return gains


def mcgregor_matching(
    graph: Graph,
    eps: float = 0.2,
    seed: int | np.random.Generator | None = None,
    ledger: ResourceLedger | None = None,
    max_epochs: int | None = None,
) -> BMatching:
    """Streaming (1-eps)-style cardinality matching via augmentation epochs.

    .. deprecated::
        Thin shim over ``repro.api.run(problem,
        backend="baseline:mcgregor")``; results are pinned
        bit-identical (the backend runs the same implementation).
    """
    from repro.api import ModelBudgets, Problem, run
    from repro.util.deprecation import warn_legacy

    warn_legacy(
        "repro.baselines.mcgregor_matching",
        'repro.api.run(problem, backend="baseline:mcgregor")',
    )
    problem = Problem(
        graph,
        budgets=ModelBudgets(max_epochs=max_epochs),
        options={"eps": eps, "seed": seed, "ledger": ledger},
    )
    return run(problem, backend="baseline:mcgregor").matching


def mcgregor_backend_run(
    graph: Graph,
    eps: float = 0.2,
    seed: int | np.random.Generator | None = None,
    ledger: ResourceLedger | None = None,
    max_epochs: int | None = None,
) -> BMatching:
    """Implementation behind the ``baseline:mcgregor`` backend.

    Pass 1 builds greedy maximal; each epoch spends one pass and applies
    length-3 augmentations until an epoch yields fewer than
    ``eps * |M|`` gains (the classic stopping rule; guarantees >= 2/3 of
    optimum after the first epoch class and improves from there).

    Resource accounting: the first pass is charged by the stream; each
    epoch charges one ``sampling_round`` plus ``m`` streamed edges (one
    pass over the input), and the held state (``matched_at`` array plus
    the matched edge set) is tracked as central space.
    """
    if max_epochs is None:
        max_epochs = max(4, int(np.ceil(1.0 / eps)))
    stream = EdgeStream(graph, ledger=ledger)
    # pass 1: greedy maximal
    matched_at = np.full(graph.n, -1, dtype=np.int64)
    matched: set[int] = set()
    for u, v, _w, eid in stream:
        if matched_at[u] == -1 and matched_at[v] == -1:
            matched.add(eid)
            matched_at[u] = eid
            matched_at[v] = eid
    held = graph.n + len(matched)
    if ledger is not None:
        ledger.charge_space(held)
    for _ in range(max_epochs):
        if ledger is not None:
            ledger.tick_sampling_round("mcgregor augmentation epoch")
            ledger.charge_stream(graph.m)
        gains = _augment_length3(graph, matched, matched_at)
        if ledger is not None and graph.n + len(matched) > held:
            ledger.charge_space(graph.n + len(matched) - held)
            held = graph.n + len(matched)
        if gains < eps * max(1, len(matched)):
            break
    if ledger is not None:
        ledger.release_space(held)
    return BMatching(graph, np.asarray(sorted(matched), dtype=np.int64))
