"""The abstract dual-primal framework (Definition 1, Theorems 1/3/4).

:class:`DualPrimalSystem` packages a *dense, explicit* instance of
Definition 1 -- matrices ``A, c, b, Po, qo, Pi, qi`` -- together with
executable checks of the amenability conditions, and
:func:`theorem1_driver` composes the generic covering solver, packing
multipliers and Lagrangian search exactly as the proof of Theorem 1
does.  The matching solver does *not* go through this dense path (its
constraint matrices are exponential); it specializes the same loop over
structured state.  The dense driver exists so the framework itself is
testable on explicit LPs, independent of matching.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.core.covering import covering_multipliers
from repro.core.lagrangian import LagrangianSearch
from repro.core.packing import packing_multipliers
from repro.util.validation import check_epsilon

__all__ = ["DualPrimalSystem", "AmenabilityReport", "theorem1_driver"]


@dataclass
class AmenabilityReport:
    """Executable audit of Definition 1 on sampled points."""

    outer_width_ok: bool
    inner_width_ok: bool
    measured_rho_o: float
    measured_rho_i: float


@dataclass
class DualPrimalSystem:
    """Dense instance of Definition 1's data.

    The "dual" decision system is ``{A x >= c}`` over
    ``P(beta) = {Po x <= 2 qo} ∩ {b^T x <= beta, Pi x <= qi, x >= 0}``.
    """

    A: np.ndarray
    c: np.ndarray
    b: np.ndarray
    Po: np.ndarray
    qo: np.ndarray
    Pi: np.ndarray
    qi: np.ndarray
    rho_o: float
    rho_i: float

    def check_amenability(
        self, samples: np.ndarray, tol: float = 1e-9
    ) -> AmenabilityReport:
        """Empirically audit (d2)/(d3) on candidate points.

        For each sample ``x >= 0``: if ``Po x <= 2 qo`` then
        ``A x <= rho_o c`` must hold (d2); if ``Pi x <= qi`` then
        ``Po x <= rho_i qo`` must hold (d3).
        """
        outer_ok = True
        inner_ok = True
        worst_o = 0.0
        worst_i = 0.0
        for x in np.atleast_2d(samples):
            if np.all(self.Po @ x <= 2.0 * self.qo + tol):
                ratio = float((self.A @ x / self.c).max())
                worst_o = max(worst_o, ratio)
                if ratio > self.rho_o + tol:
                    outer_ok = False
            if np.all(self.Pi @ x <= self.qi + tol):
                ratio = float((self.Po @ x / self.qo).max())
                worst_i = max(worst_i, ratio)
                if ratio > self.rho_i + tol:
                    inner_ok = False
        return AmenabilityReport(
            outer_width_ok=outer_ok,
            inner_width_ok=inner_ok,
            measured_rho_o=worst_o,
            measured_rho_i=worst_i,
        )


def theorem1_driver(
    system: DualPrimalSystem,
    micro_oracle: Callable[[np.ndarray, np.ndarray, float, float], np.ndarray],
    x0: np.ndarray,
    eps: float,
    max_iterations: int = 5_000,
) -> tuple[np.ndarray, float, int]:
    """Run the Theorem 1 composition on a dense system.

    ``micro_oracle(us, zeta, beta, rho) -> x`` must satisfy LagInner;
    the driver wraps it in Lemma 10's search, feeds the result to the
    covering blend, and returns ``(x, lambda, iterations)`` once
    ``lambda >= 1 - 3 eps`` (or the iteration cap strikes).

    ``beta`` here is treated as fixed (the doubling schedule lives in the
    application layer); this keeps the dense driver a pure fixed-budget
    covering run, which is what the unit tests exercise.
    """
    eps = check_epsilon(eps)
    A, c = system.A, system.c
    x = np.asarray(x0, dtype=np.float64).copy()
    M = A.shape[0]

    def lam_of(xv: np.ndarray) -> float:
        return float((A @ xv / c).min())

    lam = lam_of(x)
    iterations = 0
    target = 1.0 - 3.0 * eps
    while lam < target and iterations < max_iterations:
        iterations += 1
        lam_t = max(lam, 1e-6)
        alpha = 2.0 * np.log(max(M, 2) / eps) / (lam_t * eps)
        u = covering_multipliers(A @ x / c, c, alpha)

        # inner: packing multipliers on Po rows
        delta = eps / 6.0
        alpha_p = 2.0 * np.log(max(system.Po.shape[0], 2) / delta) / delta
        zeta = packing_multipliers(system.Po @ x / system.qo, system.qo, alpha_p)
        usc = float(u @ c)
        qo_budget = float(zeta @ system.qo)
        if qo_budget <= 0:
            break

        search = LagrangianSearch(
            micro_oracle=lambda rho: micro_oracle(u, zeta, float("nan"), rho),
            po_of=lambda xv: float(zeta @ (system.Po @ xv)),
            combine=lambda a, b, s1, s2: s1 * a + s2 * b,
            qo_budget=qo_budget,
            usc=usc,
            eps=eps,
        )
        outcome = search.run()
        sigma = eps / (4.0 * alpha * system.rho_o)
        x = (1.0 - sigma) * x + sigma * np.asarray(outcome.x, dtype=np.float64)
        lam = lam_of(x)
    return x, lam, iterations
