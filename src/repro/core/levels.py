"""Weight discretization into geometric levels (Definitions 2, 3, 6, 7).

The weighted algorithm never works with raw weights: each edge is
assigned a *level* ``k`` with nominal weight ``ŵ_k = (1+eps)^k`` in
rescaled units.  Definition 3 rescales by ``W*/B`` (maximum weight over
total capacity); we use the slightly finer threshold ``eps * W* / B`` so
that the edges dropped for falling below level 0 cost at most
``(B/2) * (eps W*/B) = eps W*/2 <= eps/2 * OPT`` in any b-matching
(the paper absorbs the same slack into its O(eps) accounting).  This
keeps ``L = O(eps^-1 log(B/eps))`` levels.

Definition 6 groups consecutive levels in blocks of ``ceil(log_{1+eps} 2)``
so that weights across alternate groups differ by a factor >= 2 -- the
geometric decay the initial-solution accounting (Lemma 21, Claim 1)
charges against.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.util.graph import Graph
from repro.util.validation import check_epsilon, check_positive_weights

__all__ = ["LevelDecomposition", "discretize"]


@dataclass
class LevelDecomposition:
    """Level structure of a weighted graph.

    Attributes
    ----------
    eps:
        Discretization parameter.
    scale:
        Rescale unit: level-``k`` nominal weight in *original* units is
        ``scale * (1+eps)^k``.
    level:
        Per-edge level index; ``-1`` marks dropped (below-threshold) edges.
    num_levels:
        ``L + 1`` -- levels are ``0..L``.
    """

    graph: Graph
    eps: float
    scale: float
    level: np.ndarray
    num_levels: int

    # ------------------------------------------------------------------
    def level_weight(self, k: int | np.ndarray) -> np.ndarray | float:
        """Nominal rescaled weight ``ŵ_k = (1+eps)^k``."""
        return (1.0 + self.eps) ** k

    def nominal_weight(self, k: int | np.ndarray) -> np.ndarray | float:
        """Nominal weight in original units: ``scale * ŵ_k``."""
        return self.scale * self.level_weight(k)

    def rescaled_edge_weights(self) -> np.ndarray:
        """Per-edge ``ŵ_{level_e}`` (0 for dropped edges)."""
        w = np.zeros(self.graph.m, dtype=np.float64)
        live = self.level >= 0
        w[live] = self.level_weight(self.level[live])
        return w

    def edges_at(self, k: int) -> np.ndarray:
        """Edge ids in level ``k`` (the paper's ``Ê_k``)."""
        return np.flatnonzero(self.level == k)

    def live_edges(self) -> np.ndarray:
        """Edge ids that were not dropped (``Ê``)."""
        return np.flatnonzero(self.level >= 0)

    def nonempty_levels(self) -> np.ndarray:
        """Levels that actually contain edges, ascending."""
        live = self.level[self.level >= 0]
        return np.unique(live)

    # ------------------------------------------------------------------
    # Definition 6: groups of ceil(log_{1+eps} 2) consecutive levels,
    # counted downward from the highest level.
    # ------------------------------------------------------------------
    def group_size(self) -> int:
        return max(1, int(np.ceil(np.log(2.0) / np.log(1.0 + self.eps))))

    def group_of(self, k: int | np.ndarray) -> np.ndarray | int:
        """1-based group index; group 1 holds the highest levels."""
        top = self.num_levels - 1
        return ((top - np.asarray(k)) // self.group_size()) + 1

    def levels_of_group(self, t: int) -> np.ndarray:
        """Levels belonging to group ``t`` (descending)."""
        top = self.num_levels - 1
        gs = self.group_size()
        hi = top - (t - 1) * gs
        lo = max(0, hi - gs + 1)
        return np.arange(hi, lo - 1, -1)

    def num_groups(self) -> int:
        return int(self.group_of(0))

    # ------------------------------------------------------------------
    def dropped_weight_bound(self) -> float:
        """Upper bound on matching weight lost to dropped edges.

        Any b-matching uses at most ``B/2`` edge-units, each dropped edge
        weighs < ``scale`` in original units.
        """
        return 0.5 * self.graph.total_capacity * self.scale


def discretize(graph: Graph, eps: float) -> LevelDecomposition:
    """Compute the level decomposition of a weighted graph.

    Level of edge ``e``: the unique ``k >= 0`` with
    ``scale * (1+eps)^k <= w_e < scale * (1+eps)^{k+1}`` where
    ``scale = eps * W* / B``; edges below ``scale`` are dropped
    (level ``-1``).
    """
    eps = check_epsilon(eps)
    if graph.m == 0:
        return LevelDecomposition(
            graph=graph,
            eps=eps,
            scale=1.0,
            level=np.empty(0, dtype=np.int64),
            num_levels=1,
        )
    if getattr(graph, "is_materialized", True) is False:
        # file-backed and not in RAM: two O(chunk)-resident weight
        # passes (validate+max, then level fill) instead of coercing
        # the whole column.  Elementwise per chunk and an exact running
        # max, so the result is bit-identical to the dense branch.
        return _discretize_chunked(graph, eps)
    check_positive_weights(graph.weight)
    w_star = float(graph.weight.max())
    B = graph.total_capacity
    scale = eps * w_star / B
    ratio = graph.weight / scale
    lvl = np.full(graph.m, -1, dtype=np.int64)
    live = ratio >= 1.0
    # float-safe: floor(log ratio / log(1+eps)) with a nudge for exact powers
    raw = np.log(ratio[live]) / np.log1p(eps)
    lvl_live = np.floor(raw + 1e-9).astype(np.int64)
    lvl[live] = lvl_live
    num_levels = int(lvl.max()) + 1 if live.any() else 1
    return LevelDecomposition(
        graph=graph, eps=eps, scale=scale, level=lvl, num_levels=num_levels
    )


def _discretize_chunked(graph: Graph, eps: float) -> LevelDecomposition:
    """Chunked :func:`discretize` for unmaterialized file-backed graphs.

    Keeps the O(m) ``level`` array (int64, shared with the dense
    branch) but never holds a float weight column: weights are read in
    O(chunk) slices, validated per chunk, and the level formula is
    applied elementwise -- identical floats, identical levels.
    """
    chunk = int(getattr(graph, "chunk_edges", 65536))
    weight = graph.weight
    w_star = -np.inf
    for start in range(0, graph.m, chunk):
        wc = check_positive_weights(weight[start : start + chunk])
        w_star = max(w_star, float(wc.max()))
    B = graph.total_capacity
    scale = eps * w_star / B
    lvl = np.full(graph.m, -1, dtype=np.int64)
    live_any = False
    log1p_eps = np.log1p(eps)
    for start in range(0, graph.m, chunk):
        stop = min(start + chunk, graph.m)
        ratio = weight[start:stop] / scale
        live = ratio >= 1.0
        if live.any():
            live_any = True
            raw = np.log(ratio[live]) / log1p_eps
            block = lvl[start:stop]
            block[live] = np.floor(raw + 1e-9).astype(np.int64)
    num_levels = int(lvl.max()) + 1 if live_any else 1
    return LevelDecomposition(
        graph=graph, eps=eps, scale=scale, level=lvl, num_levels=num_levels
    )
