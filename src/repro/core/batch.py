"""Ragged batch representation for the batched dual-primal solver.

``solve_many`` runs the inner multiplicative-weights loop of
:class:`~repro.core.matching_solver.DualPrimalMatchingSolver` in
*lockstep* over a batch of independent instances: each instance keeps
its own control flow (rounds, Lagrangian searches, witness aborts), but
the elementwise array math of every concurrent inner step executes on
concatenated buffers, amortizing numpy dispatch overhead across the
batch.  This module holds the shared layout those buffers use, plus the
segment reductions that make the lockstep path *bit-identical* to the
single-instance reference path.

Layout: four concatenated index spaces
--------------------------------------

Instances are ragged (different ``n``, ``m``, level count ``L``), so
nothing is padded; instead every per-instance array is a contiguous
*segment* of one flat buffer, addressed by an offset table:

* **edge space** (``e_off``): per-edge arrays, ``sum m_i`` long;
* **vertex space** (``v_off``): per-vertex arrays, ``sum n_i`` long;
* **level space** (``l_off``): per-level arrays (``ŵ_k`` etc.),
  ``sum L_i`` long;
* **vertex-level (VL) space** (``vl_off``): the ``(n_i, L_i)`` dual
  planes flattened C-order, ``sum n_i * L_i`` long.  Row ``v`` of
  instance ``i`` starts at ``vl_off[i] + v * L_i`` (``row_off``
  tabulates every row start, enabling per-row ``reduceat``).

Bit-parity discipline
---------------------

The acceptance contract of the batched engine is *exact* equality with
the scalar reference, so every operation falls into one of three
classes:

1. **Elementwise ops** (``exp``, ``clip``, multiply, compare, ...) act
   on concatenated buffers in one call -- elementwise results do not
   depend on neighboring segments.
2. **Ordered scatters** (``np.add.at``) keep per-instance element order
   inside the concatenation, so accumulation order (hence rounding)
   matches the reference.
3. **Reductions and scans** (``sum``, ``cumsum`` along an axis) are
   executed per instance on *contiguous reshaped views* of the segment
   -- identical memory layout to the standalone array, hence identical
   pairwise-summation trees.  Order-independent reductions (``min``,
   ``max``, integer ``maximum``) may use ``reduceat`` across segments.

See ``docs/performance.md`` for the measured effect and
``docs/architecture.md`` for where this sits in the system.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro import obs
from repro.core.levels import LevelDecomposition, discretize
from repro.core.relaxations import LayeredDual, z_cover_add
from repro.kernels import gather_add2 as _k_gather_add2
from repro.kernels import seg_max as _k_seg_max
from repro.kernels import seg_min as _k_seg_min
from repro.kernels import seg_ratio_min as _k_seg_ratio_min
from repro.kernels import seg_sum as _k_seg_sum
from repro.util.graph import Graph

__all__ = [
    "GraphBatch",
    "DualBatch",
    "StoredBatchLayout",
    "SolveRequest",
    "z_cover_add",
    "seg_sum",
    "seg_min",
    "seg_max",
    "expand",
]


@dataclass(frozen=True)
class SolveRequest:
    """One externally assembled batch-engine request.

    Callers that coalesce *independent* concurrent requests into a
    lockstep batch -- the :mod:`repro.service` micro-batcher, the
    facade's grouped ``run_many`` -- hand the engine a list of these:
    the instance plus its per-request seed override (``None`` = the
    engine config's seed).  See
    :meth:`~repro.core.matching_solver.DualPrimalMatchingSolver.solve_requests`.
    """

    graph: Graph
    seed: int | None = None


# ----------------------------------------------------------------------
# Segment primitives
# ----------------------------------------------------------------------
# Per-segment reductions with reference-exact rounding, dispatched to
# the selected kernel backend.  ``seg_sum`` reproduces numpy's pairwise
# summation tree for a standalone array of each segment's length
# (``reduceat`` would sum strictly left-to-right and round differently);
# the min/max reductions are order-independent.  ``idx`` restricts to a
# subset of segments.
seg_sum = _k_seg_sum
seg_min = _k_seg_min
seg_max = _k_seg_max


def expand(per_instance: np.ndarray, counts: np.ndarray) -> np.ndarray:
    """Broadcast one value per instance across its segment (``np.repeat``)."""
    return np.repeat(per_instance, counts)


def _offsets(counts: np.ndarray) -> np.ndarray:
    off = np.zeros(len(counts) + 1, dtype=np.int64)
    np.cumsum(counts, out=off[1:])
    return off


# ----------------------------------------------------------------------
# The batch
# ----------------------------------------------------------------------
@dataclass
class GraphBatch:
    """Concatenated layout of a batch of (graph, level decomposition) pairs.

    Built once per :meth:`~repro.core.matching_solver.
    DualPrimalMatchingSolver.solve_many` call; every buffer the batched
    engine touches is addressed through the offset tables here.  All
    per-edge index arrays use *local* edge/vertex ids except the
    ``*_vl`` gather arrays, which point into the flat VL space.
    """

    graphs: list[Graph]
    levels: list[LevelDecomposition]

    # counts and offset tables (see module docstring)
    n: np.ndarray = field(init=False)
    m: np.ndarray = field(init=False)
    L: np.ndarray = field(init=False)
    v_off: np.ndarray = field(init=False)
    e_off: np.ndarray = field(init=False)
    l_off: np.ndarray = field(init=False)
    vl_off: np.ndarray = field(init=False)
    vl_count: np.ndarray = field(init=False)

    # VL-space row structure: one row per (instance, vertex)
    row_off: np.ndarray = field(init=False)  # start of each row, + sentinel
    row_inst: np.ndarray = field(init=False)  # instance id per row
    row_len: np.ndarray = field(init=False)  # = L[row_inst]

    # constant per-entry gathers
    wk_l: np.ndarray = field(init=False)  # ŵ_k per level-space entry
    wk_vl: np.ndarray = field(init=False)  # ŵ_k per VL entry
    po3_vl: np.ndarray = field(init=False)  # 3 ŵ_k per VL entry (Po RHS)
    b_vl: np.ndarray = field(init=False)  # float b_i per VL entry
    col_vl: np.ndarray = field(init=False)  # level index per VL entry

    # live-edge gather arrays (concatenated per instance)
    live_off: np.ndarray = field(init=False)
    live_ids: np.ndarray = field(init=False)  # local edge id
    live_src_vl: np.ndarray = field(init=False)
    live_dst_vl: np.ndarray = field(init=False)
    live_wk: np.ndarray = field(init=False)  # ŵ_{level_e}

    @property
    def size(self) -> int:
        return len(self.graphs)

    def __post_init__(self) -> None:
        B = len(self.graphs)
        self.n = np.array([g.n for g in self.graphs], dtype=np.int64)
        self.m = np.array([g.m for g in self.graphs], dtype=np.int64)
        self.L = np.array([lv.num_levels for lv in self.levels], dtype=np.int64)
        self.v_off = _offsets(self.n)
        self.e_off = _offsets(self.m)
        self.l_off = _offsets(self.L)
        self.vl_count = self.n * self.L
        self.vl_off = _offsets(self.vl_count)

        self.row_inst = np.repeat(np.arange(B, dtype=np.int64), self.n)
        self.row_len = self.L[self.row_inst]
        self.row_off = np.zeros(len(self.row_inst) + 1, dtype=np.int64)
        np.cumsum(self.row_len, out=self.row_off[1:])

        # ŵ_k per level entry: computed exactly as the reference does,
        # (1+eps) ** arange(L), one instance at a time
        self.wk_l = np.concatenate(
            [lv.level_weight(np.arange(lv.num_levels)) for lv in self.levels]
        )
        # int32: level indices are tiny; halving the traffic matters in
        # the memory-bound oracle kernels (all integer-exact)
        self.col_vl = np.concatenate(
            [np.tile(np.arange(lv.num_levels), g.n) for g, lv in zip(self.graphs, self.levels)]
        ).astype(np.int32)
        self.wk_vl = np.concatenate(
            [np.tile(self.wk_l[self.l_off[i] : self.l_off[i + 1]], self.graphs[i].n) for i in range(B)]
        )
        self.po3_vl = 3.0 * self.wk_vl
        self.b_vl = np.concatenate(
            [np.repeat(g.b.astype(np.float64), lv.num_levels) for g, lv in zip(self.graphs, self.levels)]
        )

        # Level offsets as python ints: the oracle's per-instance gamma
        # loop indexes these once per evaluation; numpy scalar indexing
        # costs ~10x a list access.
        self.l_off_list = self.l_off.tolist()

        # Runs of consecutive same-L instances: their stacked VL segments
        # reshape to one (rows, L) block, so per-row scans/sums cover a
        # whole run in one call with unchanged per-row rounding.
        self.vl_runs: list[tuple[int, int, int, int, int]] = []
        i = 0
        while i < B:
            j = i
            while j + 1 < B and self.L[j + 1] == self.L[i]:
                j += 1
            self.vl_runs.append(
                (
                    int(self.vl_off[i]),
                    int(self.vl_off[j + 1]),
                    int(self.v_off[i]),
                    int(self.v_off[j + 1]),
                    int(self.L[i]),
                )
            )
            i = j + 1

        live_ids, live_src, live_dst, live_wk = [], [], [], []
        for i, (g, lv) in enumerate(zip(self.graphs, self.levels)):
            ids = lv.live_edges()
            k = lv.level[ids]
            live_ids.append(ids)
            base = self.vl_off[i]
            Li = lv.num_levels
            live_src.append(base + g.src[ids] * Li + k)
            live_dst.append(base + g.dst[ids] * Li + k)
            live_wk.append(self.wk_l[self.l_off[i] + k])
        self.live_off = _offsets(np.array([len(x) for x in live_ids], dtype=np.int64))
        self.live_ids = _concat_i64(live_ids)
        self.live_src_vl = _concat_i64(live_src)
        self.live_dst_vl = _concat_i64(live_dst)
        self.live_wk = (
            np.concatenate(live_wk) if live_wk else np.empty(0, dtype=np.float64)
        )

    # ------------------------------------------------------------------
    @classmethod
    def from_graphs(cls, graphs: list[Graph], eps: float) -> "GraphBatch":
        """Discretize every instance and assemble the batch layout."""
        levels = [discretize(g, eps) for g in graphs]
        return cls(graphs=graphs, levels=levels)

    # ------------------------------------------------------------------
    def zeros_vl(self) -> np.ndarray:
        """Fresh float64 buffer over the VL space."""
        return np.zeros(int(self.vl_off[-1]), dtype=np.float64)

    def vl_view(self, buf: np.ndarray, i: int) -> np.ndarray:
        """Instance ``i``'s ``(n_i, L_i)`` plane as a contiguous view.

        The view has exactly the memory layout of a standalone array, so
        reductions/scans on it round identically to the reference path.
        """
        seg = buf[self.vl_off[i] : self.vl_off[i + 1]]
        return seg.reshape(int(self.n[i]), int(self.L[i]))

    def l_view(self, buf: np.ndarray, i: int) -> np.ndarray:
        """Instance ``i``'s per-level segment of a level-space buffer."""
        return buf[self.l_off[i] : self.l_off[i + 1]]

    def edge_vl_gather(self, i: int, edge_ids: np.ndarray) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """VL gather indices + ŵ for a set of live local edge ids.

        Returns ``(src_vl, dst_vl, wk_e)`` for instance ``i``; callers
        concatenate across the batch to build stored-edge layouts.
        """
        g, lv = self.graphs[i], self.levels[i]
        k = lv.level[edge_ids]
        base = self.vl_off[i]
        Li = int(self.L[i])
        return (
            base + g.src[edge_ids] * Li + k,
            base + g.dst[edge_ids] * Li + k,
            self.wk_l[self.l_off[i] + k],
        )

def _concat_i64(parts: list[np.ndarray]) -> np.ndarray:
    return (
        np.concatenate(parts).astype(np.int64)
        if parts
        else np.empty(0, dtype=np.int64)
    )


# ----------------------------------------------------------------------
# Batched dual state
# ----------------------------------------------------------------------
class DualBatch:
    """The batch's layered-dual state, sharing one flat ``x`` buffer.

    Each instance also owns a :class:`~repro.core.relaxations.
    LayeredDual` whose ``x`` is a *contiguous view* into the buffer, so
    per-instance reference code (``certify``, round-start multipliers)
    operates on the live state with unchanged semantics; the odd-set
    penalties ``z`` stay per-instance dicts on those objects (they are
    sparse and rarely populated).  ``zload`` caches
    :meth:`~repro.core.relaxations.LayeredDual.z_load` per instance and
    is refreshed only when a blend actually touches ``z``.
    """

    def __init__(self, batch: GraphBatch):
        self.batch = batch
        self.x = batch.zeros_vl()
        self.duals: list[LayeredDual] = [
            LayeredDual(batch.levels[i], batch.vl_view(self.x, i))
            for i in range(batch.size)
        ]
        self.zload = batch.zeros_vl()

    def refresh_zload(self, i: int) -> None:
        """Recompute the cached z-load plane of instance ``i``."""
        view = self.batch.vl_view(self.zload, i)
        view[:] = self.duals[i].z_load()

    def cover_live(self, idx, x_buf: np.ndarray | None = None, z_of=None) -> np.ndarray:
        """Edge coverage of every live edge, concatenated across the batch.

        Matches ``LayeredDual.edge_cover`` op-for-op: the ``x`` gather is
        one batched take; the (rare) odd-set additions run per instance,
        only for the instances in ``idx`` (other segments are not read
        by callers).  ``x_buf`` defaults to the dual's own buffer, but
        any VL buffer (e.g. an oracle step) can be scored against the
        same layout; ``z_of`` overrides the per-instance ``z`` source
        (default: this dual's).
        """
        b = self.batch
        buf = self.x if x_buf is None else x_buf
        cov = _k_gather_add2(buf, b.live_src_vl, b.live_dst_vl)
        for i in idx:
            z = self.duals[i].z if z_of is None else z_of(i)
            if not z:
                continue
            sl = slice(int(b.live_off[i]), int(b.live_off[i + 1]))
            cov[sl] = z_cover_add(
                b.graphs[i],
                b.levels[i],
                b.live_ids[sl],
                z,
                cov[sl],
            )
        return cov

    def lambda_min(self, idx) -> np.ndarray:
        """Per-instance ``lambda`` for the given instances (batched cover)."""
        b = self.batch
        cov = self.cover_live(idx)
        return _k_seg_ratio_min(cov, b.live_wk, b.live_off, idx)


# ----------------------------------------------------------------------
# Stored-edge layout of the current sparsifiers
# ----------------------------------------------------------------------
@dataclass
class StoredBatchLayout:
    """Concatenated layout of every active instance's current stored edges.

    Rebuilt by the lockstep engine whenever an instance advances to a
    different deferred sparsifier (or enters/leaves the inner phase);
    between rebuilds every inner step reuses the same gather arrays.
    Inactive instances contribute empty segments.
    """

    off: np.ndarray  # (B+1,) offsets into the concatenated arrays
    ids: list[np.ndarray | None]  # local stored edge ids per instance
    lvl: list[np.ndarray | None]  # local levels of those edges
    src_vl: np.ndarray  # VL gather index of the src endpoint
    dst_vl: np.ndarray
    wk: np.ndarray  # ŵ_{level_e} per stored edge
    probs: np.ndarray  # inflated sampling probabilities
    l_idx: np.ndarray  # level-space scatter index
    counts: np.ndarray  # per-instance stored-edge counts (= diff(off))
    off_list: list[int]  # off as python ints (hot-loop indexing)

    @classmethod
    def build(cls, batch: GraphBatch, per_instance: dict[int, tuple[np.ndarray, np.ndarray]]) -> "StoredBatchLayout":
        """Assemble from ``{instance: (stored_local_ids, probs)}``."""
        B = batch.size
        counts = np.zeros(B, dtype=np.int64)
        ids: list[np.ndarray | None] = [None] * B
        lvl: list[np.ndarray | None] = [None] * B
        src_parts, dst_parts, wk_parts, p_parts, l_parts = [], [], [], [], []
        for i in range(B):
            if i not in per_instance:
                continue
            stored, probs = per_instance[i]
            counts[i] = len(stored)
            ids[i] = stored
            k = batch.levels[i].level[stored]
            lvl[i] = k
            s_vl, d_vl, wk_e = batch.edge_vl_gather(i, stored)
            src_parts.append(s_vl)
            dst_parts.append(d_vl)
            wk_parts.append(wk_e)
            p_parts.append(probs)
            l_parts.append(batch.l_off[i] + k)
        off = _offsets(counts)
        # guarded: layout rebuilds are per-phase, not per-tick, but the
        # field sums still must cost nothing when no trace is active
        _sp = obs.current_span()
        if _sp is not None:
            _sp.event(
                "solver.batch_layout",
                instances=B,
                active=len(per_instance),
                stored=int(counts.sum()),
            )
        cat_f = lambda parts: (
            np.concatenate(parts) if parts else np.empty(0, dtype=np.float64)
        )
        return cls(
            off=off,
            ids=ids,
            lvl=lvl,
            src_vl=_concat_i64(src_parts),
            dst_vl=_concat_i64(dst_parts),
            wk=cat_f(wk_parts),
            probs=cat_f(p_parts),
            l_idx=_concat_i64(l_parts),
            counts=counts,
            off_list=off.tolist(),
        )
