"""Structural results on the matching dual: Theorems 22 and 23.

* :func:`uncross_to_laminar` -- Theorem 22: any optimal LP2 dual can be
  rewritten, preserving objective and feasibility, so that the support
  of ``z`` is a *laminar family*.  The two uncrossing moves (even and
  odd intersection) are applied until no crossing pair remains.
* :func:`layered_from_flat` -- Algorithm 7: transform a feasible flat
  dual (LP11) into a feasible *layered* dual (LP10) whose objective
  grows by at most ``(1 + eps)`` -- the constructive half of Theorem 23
  (``β̃ <= (1+eps) β̂``), which is what makes the constant-width layered
  relaxation LP5 legitimate.
* :func:`optimal_flat_dual` -- exact LP2/LP11 optimal dual extracted
  from the HiGHS marginals of the primal LP (small graphs; feeds the
  two transforms and experiment E11).
"""

from __future__ import annotations

import numpy as np

from repro.core.levels import LevelDecomposition
from repro.core.relaxations import LayeredDual
from repro.matching.exact import enumerate_odd_sets
from repro.util.graph import Graph

__all__ = [
    "is_laminar",
    "uncross_to_laminar",
    "layered_from_flat",
    "optimal_flat_dual",
]


def is_laminar(sets: list[tuple[int, ...]]) -> bool:
    """True iff every pair of sets is nested or disjoint."""
    fs = [frozenset(U) for U in sets]
    for a in range(len(fs)):
        for b in range(a + 1, len(fs)):
            inter = fs[a] & fs[b]
            if inter and inter != fs[a] and inter != fs[b]:
                return False
    return True


def uncross_to_laminar(
    graph: Graph,
    x: np.ndarray,
    z: dict[tuple[int, ...], float],
    max_steps: int = 10_000,
) -> tuple[np.ndarray, dict[tuple[int, ...], float]]:
    """Theorem 22 uncrossing.  Preserves feasibility and objective.

    Crossing pairs ``A, B`` (``A ∩ B not in {∅, A, B}``) are resolved:

    * ``||A ∩ B||_b`` even: shift ``min(zA, zB)`` onto ``A-B`` and
      ``B-A`` and raise ``x_i`` for ``i in A ∩ B``;
    * odd: shift onto ``A ∪ B`` and ``A ∩ B``.

    Termination follows the paper's three-tier potential; the step cap
    is a safety net for degenerate float input.
    """
    x = np.asarray(x, dtype=np.float64).copy()
    z = {tuple(sorted(U)): float(v) for U, v in z.items() if v > 1e-12}
    b = graph.b

    def size_b(U: tuple[int, ...]) -> int:
        return int(b[list(U)].sum())

    for _ in range(max_steps):
        keys = [U for U, v in z.items() if v > 1e-12]
        crossing = None
        for ai in range(len(keys)):
            for bi in range(ai + 1, len(keys)):
                A, B = frozenset(keys[ai]), frozenset(keys[bi])
                inter = A & B
                if inter and inter != A and inter != B:
                    crossing = (keys[ai], keys[bi])
                    break
            if crossing:
                break
        if crossing is None:
            break
        Ak, Bk = crossing
        A, B = frozenset(Ak), frozenset(Bk)
        zv = min(z[Ak], z[Bk])
        z[Ak] -= zv
        z[Bk] -= zv
        inter = tuple(sorted(A & B))
        if size_b(inter) % 2 == 0:
            for part in (tuple(sorted(A - B)), tuple(sorted(B - A))):
                if part:
                    z[part] = z.get(part, 0.0) + zv
            x[list(inter)] += zv
        else:
            union = tuple(sorted(A | B))
            z[union] = z.get(union, 0.0) + zv
            if len(inter) >= 1:
                z[inter] = z.get(inter, 0.0) + zv
        # singleton "odd sets" cover no edge (no edge has both endpoints
        # equal), so their z can be dropped outright: feasibility is
        # untouched and the objective can only decrease
        z = {U: v for U, v in z.items() if v > 1e-12 and len(U) >= 2}
    return x, z


def layered_from_flat(
    levels: LevelDecomposition,
    x_flat: np.ndarray,
    z_flat: dict[tuple[int, ...], float],
) -> LayeredDual:
    """Algorithm 7: feasible LP10 point from a feasible LP11 point.

    Input is in *rescaled* units (cover ``ŵ_k`` per level-k edge).
    Steps: (1) fold large sets into vertex duals (cap at ``ŵ_L``);
    (2) ``x_i(k) = min(ŵ_k, x_i)``; (3) distribute each laminar set's
    ``ẑ_U`` across levels bottom-up with the saturation counter.
    """
    g = levels.graph
    eps = levels.eps
    L = levels.num_levels
    wk = levels.level_weight(np.arange(L))
    w_top = float(wk[-1])
    max_small = 4.0 / eps

    x_hat = np.asarray(x_flat, dtype=np.float64).copy()
    z_hat: dict[tuple[int, ...], float] = {}
    for U, v in z_flat.items():
        if v <= 0:
            continue
        if int(g.b[list(U)].sum()) > max_small:
            # Step 1: remove large sets -- fold z/2 into members' x
            x_hat[list(U)] = np.minimum(x_hat[list(U)] + v / 2.0, w_top)
        else:
            z_hat[tuple(sorted(U))] = z_hat.get(tuple(sorted(U)), 0.0) + v

    dual = LayeredDual(levels)
    # Step 2: x_i(k) = min(ŵ_k, x_i)
    dual.x = np.minimum(wk[None, :], x_hat[:, None]).astype(np.float64)

    # Steps 3-16: assign z_{U, l} in decreasing ||U||_b order, tracking
    # per-vertex saturation sum_{l <= k} z (shared inside each laminar set)
    assigned = np.zeros((g.n, L), dtype=np.float64)  # cumulative z at (i, <=k)
    for U in sorted(z_hat, key=lambda U: -int(g.b[list(U)].sum())):
        remaining = z_hat[U]
        members = list(U)
        for k in range(L):
            if remaining <= 1e-15:
                break
            already = float(assigned[members[0], k])  # equal across members
            cap = float(wk[k]) - already
            if cap <= 0:
                continue
            put = min(remaining, cap)
            dual.z[(U, k)] = dual.z.get((U, k), 0.0) + put
            assigned[members, k:] += put
            remaining -= put
    return dual


def optimal_flat_dual(
    graph: Graph, odd_set_cap: int | None = None
) -> tuple[float, np.ndarray, dict[tuple[int, ...], float]]:
    """Exact LP2 optimal dual via HiGHS marginals (small graphs).

    Returns ``(optimal value, x, z)`` with ``z`` keyed by odd sets.
    """
    from scipy.optimize import linprog

    m, n = graph.m, graph.n
    inc = np.zeros((n, m))
    inc[graph.src, np.arange(m)] += 1.0
    inc[graph.dst, np.arange(m)] += 1.0
    rows = [inc]
    rhs = list(graph.b.astype(float))
    odd_sets = enumerate_odd_sets(graph.b, max_size_b=odd_set_cap)
    for U in odd_sets:
        members = np.zeros(n, dtype=bool)
        members[list(U)] = True
        row = np.zeros(m)
        row[members[graph.src] & members[graph.dst]] = 1.0
        rows.append(row[None, :])
        rhs.append(float(int(graph.b[list(U)].sum()) // 2))
    A_ub = np.vstack(rows)
    res = linprog(
        c=-graph.weight,
        A_ub=A_ub,
        b_ub=np.asarray(rhs),
        bounds=[(0, None)] * m,
        method="highs",
    )
    if not res.success:
        raise RuntimeError(f"LP failed: {res.message}")
    duals = -np.asarray(res.ineqlin.marginals)
    x = duals[:n]
    z = {
        U: float(duals[n + t]) for t, U in enumerate(odd_sets) if duals[n + t] > 1e-9
    }
    return float(-res.fun), x, z
