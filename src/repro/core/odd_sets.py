"""Odd-set separation: Lemmas 16, 24 and 25 (Padberg-Rao style).

The MicroOracle must find, per level ``l``, a *maximal collection of
mutually disjoint dense small odd sets* ``K(l)`` -- odd sets whose
internal mass ``sum q_ij`` nearly equals half their vertex mass
``sum q̂_i`` (Lemma 24 conditions (i)/(ii)).

Construction of Lemma 24: build the auxiliary multigraph ``H`` on
``V ∪ {s}`` with

* ``floor(q_ij * 8 eps^-3)`` parallel edges between ``i`` and ``j``;
* edges ``(i, s)`` raising ``deg(i)`` to ``ceil(q̂_i * 8 eps^-3)``
  (feasible because (A2) ``sum_j q_ij <= q̂_i``).

A set ``U`` (s ∉ U) has ``cut_H(U) = sum_i deg(i) - 2 * internal(U)``,
so "cut <= kappa = floor(8 eps^-3)" is exactly "internal mass >= half
the vertex mass minus ~1" -- condition (i).  Minimum odd cuts are found
Padberg-Rao style [36]: some Gomory-Hu tree edge of ``H`` induces the
minimum odd cut.  We iterate: extract all odd GH-tree cuts below the
threshold, greedily keep a disjoint subfamily, merge them into ``s``,
and repeat until no small odd cut remains -- yielding the maximal
disjoint collection of Lemma 25.

Parity convention: ``U`` is *odd* iff ``||U||_b = sum_{i in U} b_i`` is
odd (the b-matching odd sets O).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.util.validation import check_epsilon

__all__ = ["OddSetFamily", "find_dense_odd_sets", "odd_cut_value"]


@dataclass
class OddSetFamily:
    """A disjoint family of odd sets with their H-cut values."""

    sets: list[tuple[int, ...]]
    cut_values: list[float]

    def __len__(self) -> int:
        return len(self.sets)

    def covered_vertices(self) -> set[int]:
        out: set[int] = set()
        for U in self.sets:
            out.update(U)
        return out


def odd_cut_value(
    U: tuple[int, ...] | list[int],
    q_hat_scaled: np.ndarray,
    internal_weight: float,
) -> float:
    """``cut_H(U) = sum_{i in U} deg_H(i) - 2 * internal_H(U)``."""
    members = list(U)
    return float(q_hat_scaled[members].sum() - 2.0 * internal_weight)


def _build_h_graph(
    n: int,
    src: np.ndarray,
    dst: np.ndarray,
    q: np.ndarray,
    q_hat: np.ndarray,
    eps: float,
):
    """Discretized auxiliary graph H as a networkx weighted graph.

    Returns ``(H, kappa, deg_scaled)`` where ``s`` is node ``n``.
    """
    import networkx as nx

    K = 8.0 * eps**-3
    kappa = int(np.floor(K))
    ew = np.floor(q * K).astype(np.int64)
    H = nx.Graph()
    H.add_nodes_from(range(n + 1))
    deg = np.zeros(n, dtype=np.int64)
    for a, b, w in zip(src, dst, ew):
        if w > 0:
            a, b = int(a), int(b)
            if H.has_edge(a, b):
                H[a][b]["weight"] += int(w)
            else:
                H.add_edge(a, b, weight=int(w))
            deg[a] += w
            deg[b] += w
    target = np.ceil(q_hat * K).astype(np.int64)
    s_node = n
    for i in range(n):
        slack = int(target[i] - deg[i])
        if slack > 0:
            H.add_edge(i, s_node, weight=slack)
    return H, kappa, target


def find_dense_odd_sets(
    n: int,
    b: np.ndarray,
    src: np.ndarray,
    dst: np.ndarray,
    q: np.ndarray,
    q_hat: np.ndarray,
    eps: float,
    max_size_b: float | None = None,
    max_iterations: int = 16,
) -> OddSetFamily:
    """Lemma 24: maximal disjoint collection of dense small odd sets.

    Parameters
    ----------
    q, q_hat:
        Edge scores ``q_ij >= 0`` and vertex scores ``q̂_i`` satisfying
        (A2) ``sum_j q_ij <= q̂_i`` (checked loosely).
    max_size_b:
        Optional cap on ``||U||_b`` (the paper's ``O_s`` uses ``4/eps``);
        bigger sets are discarded even if their cut is small, matching
        assumption (A3) that such sets cannot be dense.
    """
    import networkx as nx

    eps = check_epsilon(eps)
    b = np.asarray(b, dtype=np.int64)
    q = np.asarray(q, dtype=np.float64)
    q_hat = np.asarray(q_hat, dtype=np.float64)
    if max_size_b is None:
        max_size_b = 4.0 / eps

    H, kappa, _deg = _build_h_graph(n, src, dst, q, q_hat, eps)
    s_node = n
    alive = np.ones(n, dtype=bool)  # vertices not yet absorbed into a set
    family = OddSetFamily(sets=[], cut_values=[])

    for _ in range(max_iterations):
        # components of H \ {s} that are relevant
        if H.number_of_edges() == 0:
            break
        try:
            tree = nx.gomory_hu_tree(H, capacity="weight")
        except nx.NetworkXError:
            break
        # candidate cuts: each GH tree edge splits the vertex set; take
        # the side not containing s
        candidates: list[tuple[float, tuple[int, ...]]] = []
        tree_edges = list(tree.edges(data=True))
        for a, c, data in tree_edges:
            cutval = float(data["weight"])
            if cutval > kappa:
                continue
            # side of `a` when the tree edge is removed
            tree.remove_edge(a, c)
            side = nx.node_connected_component(tree, a)
            tree.add_edge(a, c, weight=cutval)
            if s_node in side:
                side = set(tree.nodes) - side
            side.discard(s_node)
            U = tuple(sorted(v for v in side if v < n and alive[v]))
            if len(U) < 2:
                continue
            sb = int(b[list(U)].sum())
            if sb % 2 == 0 or sb < 3:
                continue
            if sb > max_size_b:
                continue
            candidates.append((cutval, U))
        if not candidates:
            break
        candidates.sort(key=lambda t: t[0])
        used: set[int] = set()
        picked_any = False
        for cutval, U in candidates:
            if any(v in used for v in U):
                continue
            family.sets.append(U)
            family.cut_values.append(cutval)
            used.update(U)
            picked_any = True
        if not picked_any:
            break
        # absorb the picked sets into s and re-run (maximality loop)
        for v in used:
            alive[v] = False
            if H.has_node(v):
                for nb in list(H.neighbors(v)):
                    if nb == v:
                        continue
                    w = H[v][nb]["weight"]
                    if nb != s_node:
                        if H.has_edge(nb, s_node):
                            H[nb][s_node]["weight"] += w
                        else:
                            H.add_edge(nb, s_node, weight=w)
                H.remove_node(v)
    return family
