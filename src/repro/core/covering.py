"""Fractional covering solver (Plotkin–Shmoys–Tardos; Theorem 5 + Cor. 6).

Solves decision systems ``{Ax >= c, x in P}`` where ``P`` is accessed
through an optimization oracle.  The framework:

* maintain ``lambda = min_l (Ax)_l / c_l`` and exponential multipliers
  ``u_l = exp(-alpha (Ax)_l / c_l) / c_l`` with
  ``alpha = O(lambda_t^-1 eps^-1 ln(M/eps))``;
* repeatedly ask the oracle for ``x̃ in P`` with
  ``u^T A x̃ >= (1 - eps/2) u^T c``  (Corollary 6's relaxed contract);
* take the step ``x <- (1-sigma) x + sigma x̃`` with
  ``sigma = eps / (4 alpha rho)`` where ``rho`` is the width
  ``max_{x in P} max_l (Ax)_l / c_l``;
* a phase ends when ``lambda`` doubles (or reaches ``1 - 3 eps``).

If the oracle ever fails, the current ``u`` is an explicit infeasibility
certificate: ``u^T A x < u^T c`` for all ``x in P``.

This module is the *generic, dense* implementation used on explicit
LPs (tests, E11); the matching solver reuses the same multiplier and
step formulas over its structured dual state.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.util.validation import check_epsilon

__all__ = ["CoveringResult", "covering_multipliers", "solve_fractional_covering"]


@dataclass
class CoveringResult:
    """Outcome of the covering solver.

    ``feasible`` means ``Ax >= (1 - 3 eps) c`` was reached; otherwise
    ``certificate`` holds the dual multipliers ``u`` witnessing that the
    oracle (hence the system) failed.
    """

    feasible: bool
    x: np.ndarray
    lam: float
    iterations: int
    phases: int
    certificate: np.ndarray | None = None


def covering_multipliers(
    ratios: np.ndarray, c: np.ndarray, alpha: float
) -> np.ndarray:
    """``u_l = exp(-alpha * ratios_l) / c_l`` with overflow-safe shifting.

    Multipliers are invariant (up to harmless global scale) under a
    constant shift of ``alpha * ratios``, so we subtract the minimum
    before exponentiating.
    """
    ratios = np.asarray(ratios, dtype=np.float64)
    shifted = alpha * (ratios - ratios.min())
    return np.exp(-shifted) / np.asarray(c, dtype=np.float64)


def solve_fractional_covering(
    A: np.ndarray,
    c: np.ndarray,
    oracle: Callable[[np.ndarray], np.ndarray | None],
    x0: np.ndarray,
    eps: float,
    rho: float,
    max_iterations: int = 200_000,
) -> CoveringResult:
    """Run Theorem 5 on a dense system.

    Parameters
    ----------
    A, c:
        Constraint matrix (M x N, nonnegative) and RHS (positive).
    oracle:
        ``oracle(u)`` returns ``x̃ in P`` maximizing (approximately)
        ``u^T A x̃``, or ``None`` to assert that no ``x̃ in P`` attains
        ``u^T A x̃ >= (1 - eps/2) u^T c``.
    x0:
        Initial point in ``P`` with ``A x0 >= (1 - eps0) c`` for some
        ``eps0 < 1`` (Theorem 5's altered initial condition).
    rho:
        Width bound of ``P`` w.r.t. the system.
    """
    eps = check_epsilon(eps)
    A = np.asarray(A, dtype=np.float64)
    c = np.asarray(c, dtype=np.float64)
    M = A.shape[0]
    x = np.asarray(x0, dtype=np.float64).copy()

    def lam_of(xv: np.ndarray) -> float:
        return float((A @ xv / c).min())

    lam = lam_of(x)
    target = 1.0 - 3.0 * eps
    iterations = 0
    phases = 0
    while lam < target and iterations < max_iterations:
        phases += 1
        lam_t = max(lam, 1e-12)
        alpha = 2.0 * np.log(max(M, 2) / eps) / (lam_t * eps)
        sigma = eps / (4.0 * alpha * rho)
        phase_goal = min(max(2.0 * lam_t, target), target)
        while lam < phase_goal and iterations < max_iterations:
            iterations += 1
            ratios = A @ x / c
            u = covering_multipliers(ratios, c, alpha)
            x_t = oracle(u)
            if x_t is None:
                return CoveringResult(
                    feasible=False,
                    x=x,
                    lam=lam,
                    iterations=iterations,
                    phases=phases,
                    certificate=u,
                )
            x = (1.0 - sigma) * x + sigma * np.asarray(x_t, dtype=np.float64)
            lam = lam_of(x)
    return CoveringResult(
        feasible=lam >= target,
        x=x,
        lam=lam,
        iterations=iterations,
        phases=phases,
    )
