"""Approximation certificates: rigorous dual upper bounds.

The solver's claim "this matching is (1-eps)-approximate" must be
auditable.  :func:`certify` converts the layered dual state into an
explicit LP2-feasible point (in original weight units) whose objective
is, by weak duality, an upper bound on the maximum b-matching weight:

* collapse layers: ``x_i = scale * max_k x_i(k)``,
  ``z_U = scale * sum_l z_{U,l}``;
* rescale multiplicatively by ``f = 1 / lambda`` so every *live* edge
  constraint holds exactly (``lambda`` is the minimum coverage ratio);
* add ``scale/2`` to every vertex so the *dropped* (below-threshold)
  edges -- whose weight is under ``scale`` -- are covered too; this
  costs ``B * scale / 2 <= (eps/2) OPT`` by the discretization choice.

Feasibility of the resulting point is *checked numerically edge by
edge* (:func:`repro.matching.verify.verify_dual_upper_bound`), so the
returned bound never depends on the analysis being right.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.relaxations import LayeredDual
from repro.matching.structures import BMatching
from repro.matching.verify import verify_dual_upper_bound

__all__ = ["Certificate", "MatchingResult", "certify"]


@dataclass
class Certificate:
    """A verified dual upper bound on the maximum b-matching weight.

    ``x`` / ``z`` are the *verified* feasible point (rescaled by
    ``scale_factor`` and padded so dropped edges are covered);
    ``dual_x`` / ``dual_z`` keep the raw collapsed LP2 point in
    original units, before the feasibility rescale.  Warm starts reuse
    the raw point: re-deriving it from the verified one would compound
    the rescale/padding across generations.
    """

    upper_bound: float
    lambda_min: float
    dual_objective_rescaled: float
    scale_factor: float
    x: np.ndarray
    z: dict[tuple[int, ...], float]
    dual_x: np.ndarray | None = None
    dual_z: dict[tuple[int, ...], float] | None = None

    def certified_ratio(self, primal_weight: float) -> float:
        """Lower bound on the true approximation ratio of ``primal_weight``."""
        if self.upper_bound <= 0:
            return 1.0 if primal_weight <= 0 else float("inf")
        return primal_weight / self.upper_bound


def certify(dual: LayeredDual) -> Certificate:
    """Produce (and verify) an upper bound from the current dual state."""
    levels = dual.levels
    g = levels.graph
    lam = dual.lambda_min()
    # lambda is measured against the rounded-down nominal weights ŵ_k;
    # true weights can exceed them by (1+eps), plus a float-safety nudge.
    f = (1.0 + levels.eps) * (1.0 + 1e-9) / max(lam, 1e-12)
    xs, zs = dual.lp2_certificate()
    x_cert = f * xs + 0.5 * levels.scale
    z_cert = {U: f * v for U, v in zs.items() if v > 0}
    bound = verify_dual_upper_bound(g, x_cert, z_cert)
    return Certificate(
        upper_bound=bound,
        lambda_min=lam,
        dual_objective_rescaled=dual.objective(),
        scale_factor=f,
        x=x_cert,
        z=z_cert,
        dual_x=xs,
        dual_z=zs,
    )


@dataclass
class MatchingResult:
    """Everything a solver run produces.

    Attributes
    ----------
    matching:
        The best integral b-matching found.
    certificate:
        Verified dual upper bound (weak-duality certificate).
    rounds:
        Adaptive sampling rounds consumed (the paper's headline count).
    lambda_min:
        Final covering ratio of the dual.
    history:
        Per-round records (primal value, beta, lambda, route counts).
    resources:
        Ledger snapshot (rounds, refinements, oracle calls, space).
    """

    matching: BMatching
    certificate: Certificate
    rounds: int
    lambda_min: float
    beta_final: float
    history: list[dict] = field(default_factory=list)
    resources: dict = field(default_factory=dict)

    @property
    def weight(self) -> float:
        return self.matching.weight()

    @property
    def certified_ratio(self) -> float:
        return self.certificate.certified_ratio(self.weight)

    def summary(self) -> dict:
        return {
            "weight": self.weight,
            "upper_bound": self.certificate.upper_bound,
            "certified_ratio": self.certified_ratio,
            "rounds": self.rounds,
            "lambda": self.lambda_min,
            **self.resources,
        }
