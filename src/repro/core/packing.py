"""Fractional packing solver (Theorem 7 + Corollary 8).

The mirror image of :mod:`repro.core.covering`: decision systems
``{A_p x <= d, x in P_p}`` with multipliers
``z_r = exp(alpha' (A_p x)_r / d_r) / d_r`` and a *minimization* oracle.
Theorem 4 runs this machinery with ``delta = eps/6`` over the inner
packing system Modified-Sparse, using the MicroOracle (through the
Lagrangian glue of Lemma 10) as Oracle-P.

The generic dense version below is used directly in tests and E11; the
matching solver instantiates the same formulas over its structured
state.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.util.validation import check_epsilon

__all__ = ["PackingResult", "packing_multipliers", "solve_fractional_packing"]


@dataclass
class PackingResult:
    """Outcome of the packing solver.

    ``feasible`` means ``A_p x <= (1 + 6 delta) d`` was reached.
    """

    feasible: bool
    x: np.ndarray
    lam: float
    iterations: int
    phases: int


def packing_multipliers(ratios: np.ndarray, d: np.ndarray, alpha: float) -> np.ndarray:
    """``z_r = exp(alpha * ratios_r) / d_r`` with overflow-safe shifting."""
    ratios = np.asarray(ratios, dtype=np.float64)
    shifted = alpha * (ratios - ratios.max())
    return np.exp(shifted) / np.asarray(d, dtype=np.float64)


def solve_fractional_packing(
    Ap: np.ndarray,
    d: np.ndarray,
    oracle: Callable[[np.ndarray], np.ndarray | None],
    x0: np.ndarray,
    delta: float,
    rho: float,
    max_iterations: int = 200_000,
) -> PackingResult:
    """Run Theorem 7 on a dense system.

    ``oracle(z)`` returns ``x̃ in P_p`` (approximately) minimizing
    ``z^T A_p x̃`` -- Corollary 8 only needs
    ``z^T A_p x̃ <= (1 + delta/2) z^T d``; returning ``None`` aborts (the
    inner system is infeasible, which in the dual-primal stack never
    happens because ``x = 0`` is always available).
    """
    delta = check_epsilon(delta)
    Ap = np.asarray(Ap, dtype=np.float64)
    d = np.asarray(d, dtype=np.float64)
    M = Ap.shape[0]
    x = np.asarray(x0, dtype=np.float64).copy()

    def lam_of(xv: np.ndarray) -> float:
        return float((Ap @ xv / d).max())

    lam = lam_of(x)
    target = 1.0 + 6.0 * delta
    iterations = 0
    phases = 0
    while lam > target and iterations < max_iterations:
        phases += 1
        lam_t = max(lam, 1e-12)
        # alpha' = O((lam^p_t)^-1 delta^-1 ln(M'/delta)) as in Theorem 7
        alpha = 2.0 * np.log(max(M, 2) / delta) / (max(1.0, lam_t) * delta)
        sigma = delta / (4.0 * alpha * rho)
        phase_goal = max(lam_t / 2.0, target)
        while lam > phase_goal and iterations < max_iterations:
            iterations += 1
            ratios = Ap @ x / d
            z = packing_multipliers(ratios, d, alpha)
            x_t = oracle(z)
            if x_t is None:
                return PackingResult(
                    feasible=False, x=x, lam=lam, iterations=iterations, phases=phases
                )
            x = (1.0 - sigma) * x + sigma * np.asarray(x_t, dtype=np.float64)
            lam = lam_of(x)
    return PackingResult(
        feasible=lam <= target, x=x, lam=lam, iterations=iterations, phases=phases
    )
