"""LP relaxations of matching as first-class objects (LP1 -- LP11).

Two roles:

1. **Dual state of the solver.**  :class:`LayeredDual` holds the
   variables of the layered penalty dual LP5/LP10 -- per-(vertex, level)
   costs ``x_i(k)`` and per-(odd set, level) penalties ``z_{U,l}`` --
   with vectorized evaluation of edge coverage, the minimum coverage
   ratio ``lambda``, the dual objective, and the Po/Pi width boxes.

2. **Width measurement (experiment E6).**  :func:`covering_width_lp2`
   and :func:`covering_width_lp4` *measure* the width parameter of the
   standard dual (LP2) versus the penalty dual (LP4) on a concrete
   graph by solving the per-edge maximization with an LP.  The paper's
   point -- the penalty box ``2 x_i + sum_U z_U <= 3`` caps the width at
   an absolute constant 6, while LP2's width grows with the instance --
   becomes a measurable table.

All quantities here are in *rescaled* units (weights ``ŵ_k = (1+eps)^k``
of the level decomposition); conversion to original units multiplies by
``levels.scale``.
"""

from __future__ import annotations

import numpy as np

from repro.core.levels import LevelDecomposition
from repro.util.graph import Graph

__all__ = [
    "LayeredDual",
    "z_cover_add",
    "blend_z_dicts",
    "covering_width_lp2",
    "covering_width_lp4",
    "PENALTY_WIDTH_BOUND",
]


def z_cover_add(
    graph: Graph,
    levels: LevelDecomposition,
    ids: np.ndarray,
    z: dict,
    cov_seg: np.ndarray,
) -> np.ndarray:
    """Odd-set contribution to the edge coverage of the given edge ids.

    The z-half of :meth:`LayeredDual.edge_cover`, shared with the
    batched engine (which applies it per instance on segments of its
    concatenated buffers); one implementation keeps the bit-parity
    contract in one place.
    """
    k = levels.level[ids]
    out = cov_seg
    for (U, ell), val in z.items():
        if val == 0.0:
            continue
        members = np.zeros(graph.n, dtype=bool)
        members[list(U)] = True
        inside = members[graph.src[ids]] & members[graph.dst[ids]] & (k >= ell)
        if inside.any():
            out = out + np.where(inside, val, 0.0)
    return out


def blend_z_dicts(self_z: dict, other_z: dict, sigma: float) -> dict:
    """The z-half of :meth:`LayeredDual.blend` (shared with the engine)."""
    keys = set(self_z) | set(other_z)
    newz: dict = {}
    for key in keys:
        v = (1.0 - sigma) * self_z.get(key, 0.0) + sigma * other_z.get(key, 0.0)
        if v > 1e-15:
            newz[key] = v
    return newz

#: Analytic width bound of the penalty dual LP4/LP5: the box constraint
#: ``2 x_i(k) + sum_{l<=k} z <= 3 ŵ_k`` forces every edge's coverage to be
#: at most ``6 ŵ_k`` -- independent of every problem parameter.
PENALTY_WIDTH_BOUND = 6.0


class LayeredDual:
    """Variables of the layered penalty dual (LP5 / LP10).

    ``x`` is logically a dense ``(n, L)`` table (rows = vertices, cols =
    levels); ``z`` maps ``(U, l)`` -- ``U`` a sorted vertex tuple, ``l``
    a level -- to a nonnegative penalty.

    Storage is *level-blocked*: internally the table lives transposed as
    ``_xb`` with shape ``(L, n)`` so that :meth:`x_block` hands out the
    level-``k`` slice as one row and the blockwise reductions
    (:meth:`lambda_min`, :meth:`vertex_costs`, :meth:`po_ratio`, ...)
    touch one ``O(n)`` block at a time instead of materializing
    ``(n, L)`` or ``O(m)`` temporaries.  The :attr:`x` property exposes
    the classic ``(n, L)`` orientation as a *write-through view*, so
    callers that scatter into ``dual.x`` (warm starts, the batched
    engine's shared-buffer aliasing) keep their exact semantics.  Every
    reduction here is order-insensitive (elementwise ufuncs, min/max),
    so results are bit-identical to the dense layout.
    """

    def __init__(
        self,
        levels: LevelDecomposition,
        x: np.ndarray | None = None,
        z: dict[tuple[tuple[int, ...], int], float] | None = None,
    ) -> None:
        self.levels = levels
        n = levels.graph.n
        L = levels.num_levels
        if x is None:
            self._xb = np.zeros((L, n), dtype=np.float64)
        else:
            xa = np.asarray(x, dtype=np.float64)
            if xa.shape != (n, L):
                raise ValueError(f"x must be shape {(n, L)}")
            # transposed *view*: a float64 input (e.g. a DualBatch plane)
            # stays aliased, exactly as the dense layout did
            self._xb = xa.T
        self.z: dict[tuple[tuple[int, ...], int], float] = {} if z is None else z

    @property
    def x(self) -> np.ndarray:
        """The ``(n, L)`` orientation of the state (write-through view)."""
        return self._xb.T

    @x.setter
    def x(self, value: np.ndarray) -> None:
        xa = np.asarray(value, dtype=np.float64)
        n = self.levels.graph.n
        L = self.levels.num_levels
        if xa.shape != (n, L):
            raise ValueError(f"x must be shape {(n, L)}")
        self._xb = xa.T

    def x_block(self, k: int) -> np.ndarray:
        """Level-``k`` block ``x_.(k)`` as an ``(n,)`` view (writes through)."""
        return self._xb[k]

    @classmethod
    def _wrap(cls, levels: LevelDecomposition, x: np.ndarray) -> "LayeredDual":
        """Wrap a known-good ``(n, L)`` float64 array without re-validation.

        Hot-path constructor for the batched engine, which mints one
        dual per oracle step; semantics identical to ``LayeredDual(
        levels, x)`` for conforming ``x``.
        """
        d = cls.__new__(cls)
        d.levels = levels
        d._xb = x.T
        d.z = {}
        return d

    # ------------------------------------------------------------------
    # Coverage of the edge constraints {Ax >= c}
    # ------------------------------------------------------------------
    def edge_cover(self, edge_ids: np.ndarray | None = None) -> np.ndarray:
        """LHS of the edge constraint for each (live) edge:

        ``x_i(k) + x_j(k) + sum_{l <= k} sum_{U ∋ i,j} z_{U,l}``.
        """
        lv = self.levels
        g = lv.graph
        ids = lv.live_edges() if edge_ids is None else np.asarray(edge_ids)
        k = lv.level[ids]
        cov = self.x[g.src[ids], k] + self.x[g.dst[ids], k]
        if self.z:
            cov = z_cover_add(g, lv, ids, self.z, cov)
        return cov

    def edge_ratios(self, edge_ids: np.ndarray | None = None) -> np.ndarray:
        """Coverage divided by the constraint RHS ``ŵ_k``."""
        lv = self.levels
        ids = lv.live_edges() if edge_ids is None else np.asarray(edge_ids)
        k = lv.level[ids]
        return self.edge_cover(ids) / lv.level_weight(k)

    def _live_ratio_chunks(self):
        """Yield the live-edge coverage ratios in edge-order chunks.

        Replaces the ``flatnonzero(level >= 0)`` + full-column gather of
        the dense path with O(chunk)-resident slices, so file-backed
        graphs are never materialized and no ``O(m)`` id array is
        allocated.  Per-edge floats are identical to the dense path:
        the cover is the same elementwise gather-add, and ``ŵ_k`` is
        read from the same elementwise power table.
        """
        lv = self.levels
        g = lv.graph
        level = lv.level
        wk = np.asarray(lv.level_weight(np.arange(lv.num_levels, dtype=np.int64)))
        x = self.x
        chunk = int(getattr(g, "chunk_edges", 0) or 65536)
        for start in range(0, level.shape[0], chunk):
            stop = min(start + chunk, level.shape[0])
            k = level[start:stop]
            live = k >= 0
            if not live.any():
                continue
            kl = k[live]
            cov = (
                x[np.asarray(g.src[start:stop])[live], kl]
                + x[np.asarray(g.dst[start:stop])[live], kl]
            )
            if self.z:
                ids = np.flatnonzero(live) + start
                cov = z_cover_add(g, lv, ids, self.z, cov)
            yield cov / wk[kl]

    def lambda_min(self) -> float:
        """``lambda = min_e (Ax)_e / c_e`` over live edges (1.0 if none)."""
        best = np.inf
        found = False
        for ratios in self._live_ratio_chunks():
            found = True
            best = min(best, float(ratios.min()))
        return float(best) if found else 1.0

    def live_ratio_max(self) -> float:
        """``max_e (Ax)_e / c_e`` over live edges (0.0 if none)."""
        best = -np.inf
        found = False
        for ratios in self._live_ratio_chunks():
            found = True
            best = max(best, float(ratios.max()))
        return float(best) if found else 0.0

    # ------------------------------------------------------------------
    # Objective and width boxes
    # ------------------------------------------------------------------
    def vertex_costs(self) -> np.ndarray:
        """``x_i = max_k x_i(k)`` -- each vertex pays its worst level."""
        out = self._xb[0].copy()
        for k in range(1, self._xb.shape[0]):
            np.maximum(out, self._xb[k], out=out)
        return out

    def objective(self) -> float:
        """Rescaled dual objective ``sum b_i x_i + sum_U,l floor(.)z_{U,l}``."""
        g = self.levels.graph
        val = float((g.b * self.vertex_costs()).sum())
        for (U, _ell), zv in self.z.items():
            val += zv * (int(g.b[list(U)].sum()) // 2)
        return val

    def z_load(self) -> np.ndarray:
        """Per-(vertex, level) odd-set load ``sum_{l <= k} sum_{U ∋ i} z_{U,l}``.

        Shape (n, L); entry (i, k) is the penalty mass covering vertex i
        at level k.  This is the quantity the Po/Pi boxes cap.
        """
        n = self.levels.graph.n
        L = self.levels.num_levels
        load = np.zeros((n, L), dtype=np.float64)
        for (U, ell), val in self.z.items():
            if val == 0.0 or ell >= L:
                continue
            load[list(U), ell:] += val
        return load

    def z_load_block(self, k: int) -> np.ndarray:
        """Level-``k`` column of :meth:`z_load` as one ``(n,)`` block."""
        load = np.zeros(self.levels.graph.n, dtype=np.float64)
        for (U, ell), val in self.z.items():
            if val == 0.0 or ell > k:
                continue
            load[list(U)] += val
        return load

    def _box_ratio(self, cap: np.ndarray) -> float:
        """Max of ``(2 x_i(k) + z-load) / cap_k``, one level block at a time."""
        L = self.levels.num_levels
        if self.levels.graph.n == 0 or L == 0:
            return 0.0
        best = -np.inf
        for k in range(L):
            lhs = 2.0 * self._xb[k] + self.z_load_block(k)
            best = max(best, float((lhs / cap[k]).max()))
        return best

    def po_ratio(self) -> float:
        """Max of ``(2 x_i(k) + z-load) / (3 ŵ_k)`` -- the outer box Po.

        Values <= 1 mean ``Po x <= qo``; the solver keeps iterates within
        ``Po x <= 2 qo`` (ratio <= 2).
        """
        L = self.levels.num_levels
        wk = self.levels.level_weight(np.arange(L))
        return self._box_ratio(3.0 * wk)

    def pi_ratio(self) -> float:
        """Max of the same LHS against the inner box ``(24/eps + 24/eps^2) ŵ_k``."""
        L = self.levels.num_levels
        eps = self.levels.eps
        wk = self.levels.level_weight(np.arange(L))
        return self._box_ratio((24.0 / eps + 24.0 / eps**2) * wk)

    # ------------------------------------------------------------------
    # Updates
    # ------------------------------------------------------------------
    def blend(self, other: "LayeredDual", sigma: float) -> None:
        """In-place convex step ``self <- (1-sigma) self + sigma other``.

        This is the covering framework's ``x <- (1-sigma)x + sigma x̃``.
        Applied one level block at a time (elementwise, so identical to
        the whole-table update bit for bit).
        """
        a = 1.0 - sigma
        xb, ob = self._xb, other._xb
        for k in range(xb.shape[0]):
            row = xb[k]
            row *= a
            row += sigma * ob[k]
        self.z = blend_z_dicts(self.z, other.z, sigma)

    def enforce_q(self) -> None:
        """Project into ``Q = {x_i >= x_i(l)}`` -- trivially satisfied since
        we define ``x_i = max_l x_i(l)``; kept for interface clarity."""

    def copy(self) -> "LayeredDual":
        d = LayeredDual.__new__(LayeredDual)
        d.levels = self.levels
        d._xb = self._xb.copy()
        d.z = dict(self.z)
        return d

    # ------------------------------------------------------------------
    # LP2-style certificate extraction
    # ------------------------------------------------------------------
    def lp2_certificate(self) -> tuple[np.ndarray, dict[tuple[int, ...], float]]:
        """Collapse layers to LP2 variables in *original* weight units.

        ``x_i = scale * max_k x_i(k)``; ``z_U = scale * sum_l z_{U,l}``.
        The result may be slightly infeasible (dropped edges, rounding);
        callers rescale by the max violation to obtain a rigorous upper
        bound (see :mod:`repro.core.certificates`).
        """
        scale = self.levels.scale
        xs = scale * self.vertex_costs()
        zs: dict[tuple[int, ...], float] = {}
        for (U, _ell), val in self.z.items():
            zs[U] = zs.get(U, 0.0) + scale * val
        return xs, zs


# ----------------------------------------------------------------------
# Width measurement (experiment E6)
# ----------------------------------------------------------------------
def covering_width_lp2(graph: Graph, beta: float, odd_sets: list[tuple[int, ...]] | None = None) -> float:
    """Measured width of the standard dual LP2 as a covering system.

    The decision system is ``{x_i + x_j + sum_{U ∋ i,j} z_U >= w_ij}``
    over the polytope ``P = {b^T x + sum floor(||U||_b/2) z_U <= beta,
    x, z >= 0}``.  The width is
    ``rho = max_e max_{(x,z) in P} cover_e / w_e`` -- computed exactly:
    put the whole budget on the cheapest variable covering ``e``.
    """
    odd_sets = odd_sets or []
    rho = 0.0
    for e in range(graph.m):
        i, j, w = int(graph.src[e]), int(graph.dst[e]), float(graph.weight[e])
        # cheapest objective cost per unit of coverage of edge e
        best = max(1.0 / graph.b[i], 1.0 / graph.b[j])  # x_i or x_j
        for U in odd_sets:
            if i in U and j in U:
                cost = float(int(graph.b[list(U)].sum()) // 2)
                if cost > 0:
                    best = max(best, 1.0 / cost)
        rho = max(rho, beta * best / w)
    return rho


def covering_width_lp4(graph: Graph, box_slack: float = 2.0) -> float:
    """Measured width of the penalty dual on a concrete graph.

    The decision system covers edge ``e`` by ``x_i + x_j + sum z_U``
    subject to the per-vertex penalty boxes
    ``2 x_i + sum_{U ∋ i} z_U <= box_slack * 3 w`` (the solver operates
    within ``Po x <= 2 qo``, hence ``box_slack = 2``).

    The per-edge maximum of ``x_i + x_j + z`` under
    ``2 x_i + z <= 3sw`` and ``2 x_j + z <= 3sw`` is exactly ``3sw``
    (any unit of ``z`` displaces half a unit of each ``x``), so the
    width is the *constant* ``3 * box_slack`` for every edge of every
    graph -- the paper's "independent of any problem parameters".
    Returns 0 for edgeless graphs so tables stay honest.
    """
    return 3.0 * box_slack if graph.m else 0.0
