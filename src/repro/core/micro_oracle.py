"""The MicroOracle for matching (Algorithm 5, Lemmas 13-14, Section 3.1).

Given a *sparsified* support (edge ids with multiplier values ``us``),
per-(vertex, level) packing multipliers ``zeta``, the current budget
``beta`` and a Lagrange multiplier ``rho``, the oracle returns one of:

* **A dual step** (part ii): a sparse layered-dual vector ``x̃``
  (``x_i(k)`` mass from the *violated-vertex route*, or ``z_{U,l}`` mass
  from the *odd-set route*) satisfying the Lagrangian inequality of
  LP8/LagInner and the sparsifier-consistency property ``G(us, x)``.
* **A witness** (part i): a feasible solution of LP7 on the support,
  certifying (through Lemma 13 / Theorem 23) that the support already
  contains an integral b-matching of weight ``(1 - 2 eps) beta`` -- the
  signal that the *primal* side should harvest the sample.

The three branches follow Algorithm 5 literally:

1. ``Γ(V) >= eps γ / 24`` -- violated vertices absorb the mass: return
   ``x`` supported on ``Viol(V)`` (step 6-7).
2. else lift ``ζ̄`` and hunt dense odd sets per level (Lemma 16);
   ``Γ(Os) >= eps γ' / 24`` -- odd sets absorb the mass: return ``z``
   supported on the disjoint families ``K(l)`` (steps 16-18).
3. else both contributions are small: the remaining multiplier mass
   *is* an LP7 feasible point after the ``ζ̂`` bump -- return the witness
   ``y = (1-eps/4) beta / ((1+eps/2) γ) us`` (step 21).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.levels import LevelDecomposition
from repro.core.odd_sets import find_dense_odd_sets
from repro.core.relaxations import LayeredDual
from repro.util.validation import check_epsilon

__all__ = [
    "OracleDualStep",
    "OracleWitness",
    "micro_oracle",
    "SupportVector",
    "BatchMicroContext",
]


@dataclass
class SupportVector:
    """Sparse multiplier vector over a sampled edge set.

    ``edge_ids`` index the source graph; every edge carries its single
    level (Lemma 14's "at most one k such that us_ijk != 0" -- our levels
    partition the edges, so this holds by construction).
    """

    edge_ids: np.ndarray
    values: np.ndarray

    def __post_init__(self) -> None:
        self.edge_ids = np.asarray(self.edge_ids, dtype=np.int64)
        self.values = np.asarray(self.values, dtype=np.float64)


@dataclass
class OracleDualStep:
    """Part (ii): a sparse dual direction x̃ plus diagnostics."""

    dual: LayeredDual
    route: str  # "zero" | "vertex" | "oddset"
    gamma: float
    gamma_prime: float | None = None


@dataclass
class OracleWitness:
    """Part (i): LP7 feasible point on the support.

    ``y`` maps edge id -> fractional value; ``mu`` is the (n, L) penalty
    matrix; Lemma 13 turns this into an integral matching of weight
    ``(1 - 2 eps) beta`` using only support edges.
    """

    y: dict[int, float]
    mu: np.ndarray
    gamma: float
    lp7_value: float


def _vertex_level_mass(
    levels: LevelDecomposition, support: SupportVector
) -> np.ndarray:
    """``s[i, k] = sum_{j : (i,j) in support, level k} us_ij`` (n x L)."""
    g = levels.graph
    n, L = g.n, levels.num_levels
    s = np.zeros((n, L), dtype=np.float64)
    ids = support.edge_ids
    k = levels.level[ids]
    np.add.at(s, (g.src[ids], k), support.values)
    np.add.at(s, (g.dst[ids], k), support.values)
    return s


def micro_oracle(
    levels: LevelDecomposition,
    support: SupportVector,
    zeta: np.ndarray,
    beta: float,
    rho: float,
    eps: float | None = None,
    odd_sets: bool = True,
) -> OracleDualStep | OracleWitness:
    """Run Algorithm 5.

    Parameters
    ----------
    zeta:
        Packing multipliers, shape ``(n, L)`` (zeros where unused).
    beta:
        Current dual budget (rescaled units).
    rho:
        Lagrange multiplier ``% > 0`` from Lemma 10's search.
    odd_sets:
        Disable to run the bipartite-only oracle (no z mass; the paper
        notes the proof "for bipartite graphs" ends before the odd-set
        stage).
    """
    eps = check_epsilon(eps if eps is not None else levels.eps)
    g = levels.graph
    n, L = g.n, levels.num_levels
    wk = levels.level_weight(np.arange(L))  # ŵ_k

    s = _vertex_level_mass(levels, support)
    zeta = np.asarray(zeta, dtype=np.float64)
    if zeta.shape != (n, L):
        raise ValueError(f"zeta must be shape {(n, L)}")

    lvl_of_edge = levels.level[support.edge_ids]
    us_mass_per_level = np.zeros(L, dtype=np.float64)
    np.add.at(us_mass_per_level, lvl_of_edge, support.values)

    # Step 1: gamma = sum_k ŵ_k (us-mass_k - 3 rho sum_i zeta_ik)
    gamma = float((wk * (us_mass_per_level - 3.0 * rho * zeta.sum(axis=0))).sum())
    if gamma <= 0.0:
        return OracleDualStep(dual=LayeredDual(levels), route="zero", gamma=gamma)

    # Step 2: net[i,k] and Pos(i); Delta(i, l) for all l, vectorized
    net = s - 2.0 * rho * zeta
    pos_net = np.maximum(net, 0.0)
    weighted = wk[None, :] * pos_net  # ŵ_k * net+  (n x L)
    prefix = np.cumsum(weighted, axis=1)  # sum_{k <= l} ŵ_k net+
    total = pos_net.sum(axis=1, keepdims=True)
    suffix_counts = total - np.cumsum(pos_net, axis=1)  # sum_{k > l} net+
    delta = prefix + wk[None, :] * suffix_counts  # Delta(i, l)

    # Step 3: k*_i = largest l with Delta(i,l) > gamma b_i ŵ_l / beta
    thresh = (gamma / beta) * g.b[:, None].astype(np.float64) * wk[None, :]
    exceeds = delta > thresh
    k_star = np.where(
        exceeds.any(axis=1), L - 1 - np.argmax(exceeds[:, ::-1], axis=1), -1
    )

    # Step 4: Viol(V), Gamma(V)
    viol = np.flatnonzero(k_star >= 0)
    gamma_v = float(delta[viol, k_star[viol]].sum()) if len(viol) else 0.0

    # Step 5-8: vertex route
    if gamma_v >= eps * gamma / 24.0:
        step = LayeredDual(levels)
        for i in viol:
            ks = int(k_star[i])
            pos_mask = pos_net[i] > 0
            lvls = np.flatnonzero(pos_mask)
            lo = lvls[lvls <= ks]
            hi = lvls[lvls > ks]
            step.x[i, lo] = gamma * wk[lo] / gamma_v
            step.x[i, hi] = gamma * wk[ks] / gamma_v
        return OracleDualStep(dual=step, route="vertex", gamma=gamma)

    # Step 9: lift zeta for violated vertices
    zeta_bar = zeta.copy()
    for i in viol:
        ks = int(k_star[i])
        mask = (np.arange(L) <= ks) & (pos_net[i] > 0)
        zeta_bar[i, mask] = s[i, mask] / (2.0 * rho)

    # Step 10: gamma'
    gamma_p = float((wk * (us_mass_per_level - 3.0 * rho * zeta_bar.sum(axis=0))).sum())

    return _oddset_witness_stage(
        levels,
        support,
        lvl_of_edge,
        us_mass_per_level,
        zeta_bar,
        gamma,
        gamma_p,
        beta,
        rho,
        eps,
        odd_sets,
        wk,
    )


def _oddset_witness_stage(
    levels: LevelDecomposition,
    support: SupportVector,
    lvl_of_edge: np.ndarray,
    us_mass_per_level: np.ndarray,
    zeta_bar: np.ndarray,
    gamma: float,
    gamma_p: float,
    beta: float,
    rho: float,
    eps: float,
    odd_sets: bool,
    wk: np.ndarray,
) -> OracleDualStep | OracleWitness:
    """Steps 11-21 of Algorithm 5: odd-set route, else LP7 witness.

    Shared tail of the scalar and batched oracles: the batched engine
    reaches this stage rarely (most evaluations resolve through the
    vertex or zero route), so it runs per instance on views of the
    batch buffers -- the same code, hence bit-identical outcomes.
    """
    g = levels.graph
    n = g.n

    # Steps 11-15: per-level dense odd sets
    families: dict[int, list[tuple[tuple[int, ...], float]]] = {}
    gamma_os = 0.0
    if odd_sets and n >= 3:
        ids = support.edge_ids
        vals = support.values
        # cumulative edge mass over levels >= l is just "edges with
        # level >= l" since each edge lives at exactly one level
        active_levels = sorted(set(int(k) for k in np.unique(lvl_of_edge)), reverse=True)
        scale = (1.0 - eps / 4.0) * beta / gamma
        zeta_bar_cum_rev = np.cumsum(zeta_bar[:, ::-1], axis=1)[:, ::-1]
        taken_vertices: set[int] = set()
        for ell in active_levels:
            sel = lvl_of_edge >= ell
            if not sel.any():
                continue
            e_ids = ids[sel]
            e_val = vals[sel]
            q = scale * e_val
            q_hat = g.b.astype(np.float64) + 2.0 * scale * rho * zeta_bar_cum_rev[:, ell]
            fam = find_dense_odd_sets(
                n,
                g.b,
                g.src[e_ids],
                g.dst[e_ids],
                q,
                q_hat,
                eps,
                max_size_b=4.0 / eps,
            )
            kept: list[tuple[tuple[int, ...], float]] = []
            for U in fam.sets:
                if any(v in taken_vertices for v in U):
                    continue
                # verify Equation (4): Delta(U, l) >= gamma floor(.)/((1-eps/4) beta)
                members = np.zeros(n, dtype=bool)
                members[list(U)] = True
                inside = members[g.src[e_ids]] & members[g.dst[e_ids]]
                delta_u = float(e_val[inside].sum()) - rho * float(
                    zeta_bar_cum_rev[list(U), ell].sum()
                )
                need = (gamma / ((1.0 - eps / 4.0) * beta)) * (
                    int(g.b[list(U)].sum()) // 2
                )
                if delta_u >= need:
                    kept.append((U, delta_u))
                    taken_vertices.update(U)
            if kept:
                families[ell] = kept
                gamma_os += wk[ell] * sum(d for _, d in kept)

    # Steps 16-18: odd-set route
    if odd_sets and gamma_os >= eps * gamma_p / 24.0 and gamma_os > 0:
        step = LayeredDual(levels)
        for ell, kept in families.items():
            for U, _d in kept:
                step.z[(U, int(ell))] = gamma_p * float(wk[ell]) / gamma_os
        return OracleDualStep(
            dual=step, route="oddset", gamma=gamma, gamma_prime=gamma_p
        )

    # Steps 20-21: witness -- bump zeta-hat and emit LP7 point
    zeta_hat = zeta_bar.copy()
    for ell, kept in families.items():
        for U, _d in kept:
            zeta_hat[list(U), ell] += g.b[list(U)] * gamma / (2.0 * rho * beta)
    y_scale = (1.0 - eps / 4.0) * beta / ((1.0 + eps / 2.0) * gamma)
    y = {
        int(e): y_scale * float(v)
        for e, v in zip(support.edge_ids, support.values)
        if v > 0
    }
    mu = y_scale * rho * zeta_hat
    lp7_value = float(
        (
            wk
            * (
                us_mass_per_level * y_scale
                - 3.0 * (y_scale * rho * zeta_hat).sum(axis=0)
            )
        ).sum()
    )
    return OracleWitness(y=y, mu=mu, gamma=gamma, lp7_value=lp7_value)


# ----------------------------------------------------------------------
# Batched evaluation (Algorithm 5 over a batch of instances)
# ----------------------------------------------------------------------
class BatchMicroContext:
    """Per-inner-step context for batched Algorithm 5 evaluations.

    One context is built per lockstep inner step of
    :meth:`~repro.core.matching_solver.DualPrimalMatchingSolver.
    solve_many`: the quantities that are constant across a Lagrangian
    search -- the support scatter ``s``, the per-level support mass and
    ``zeta``'s column sums -- are computed once, and each
    :meth:`evaluate` call runs the per-``rho`` remainder of Algorithm 5
    for a subset of instances on concatenated buffers.  The packing
    load ``z^T Po x`` of every returned dual step is computed here too
    (one batched gather), so the caller's Lagrangian search needs no
    further array work.

    Bit-parity with :func:`micro_oracle` is maintained by the
    discipline documented in :mod:`repro.core.batch`: elementwise math
    is batched, ordered scatters keep per-instance order, reductions
    and scans run on contiguous per-instance views -- or, for the
    per-row scans (``cumsum``) and row sums, on *runs* of consecutive
    same-``L`` instances, whose stacked ``(rows, L)`` views scan each
    row independently and identically.  The odd-set and witness stages
    (rarely reached) call the *same* :func:`_oddset_witness_stage`
    helper as the scalar oracle, per instance, on views of the batch
    buffers.
    """

    def __init__(
        self,
        batch,
        active: list[int],
        stored,
        support_vals: np.ndarray,
        zeta: np.ndarray,
        zmul: np.ndarray,
        hik_idx: np.ndarray,
        hik_off: np.ndarray,
        beta: dict[int, float],
        use_odd: dict[int, bool],
        eps: float,
    ):
        self.batch = batch
        self.active = list(active)
        self.stored = stored
        self.support_vals = support_vals
        self.zeta = zeta
        self.zmul = zmul
        self.hik_idx = hik_idx
        self.hik_off = hik_off
        self.hik_counts = np.diff(hik_off)
        self.beta = beta
        self.use_odd = use_odd
        self.eps = eps

        # s[i, k] scatter: all src contributions first, then all dst, as
        # in _vertex_level_mass -- bincount over the concatenated index
        # array accumulates sequentially in exactly that order (and is
        # considerably faster than np.add.at)
        self.s = np.bincount(
            np.concatenate([stored.src_vl, stored.dst_vl]),
            weights=np.concatenate([support_vals, support_vals]),
            minlength=int(batch.vl_off[-1]),
        )
        self.us_mass = np.bincount(
            stored.l_idx, weights=support_vals, minlength=int(batch.l_off[-1])
        )

        zsum = np.zeros(int(batch.l_off[-1]), dtype=np.float64)
        for i in self.active:
            batch.l_view(zsum, i)[:] = batch.vl_view(zeta, i).sum(axis=0)
        self.zsum = zsum

        # reusable scratch (values are rewritten wholesale every call)
        nvl = int(batch.vl_off[-1])
        self._net = np.empty(nvl)
        self._prefix = np.empty(nvl)
        self._cs = np.empty(nvl)
        self._row_tot = np.zeros(int(batch.v_off[-1]))

    # ------------------------------------------------------------------
    def evaluate(self, sub: list[int], rho: dict[int, float]):
        """Run Algorithm 5 at multiplier ``rho[i]`` for each ``i`` in ``sub``.

        Returns ``(results, po)``: ``results[i]`` is the
        ``OracleDualStep | OracleWitness`` and ``po[i]`` the packing
        load of the step (absent for witnesses).  Buffers are sized by
        the compact batch; segments of instances outside ``sub`` hold
        stale values and are never read.
        """
        b = self.batch
        B = b.size
        out: dict[int, OracleDualStep | OracleWitness] = {}
        po: dict[int, float] = {}

        from repro.core.batch import expand

        rho_b = np.zeros(B, dtype=np.float64)
        for i in sub:
            rho_b[i] = rho[i]

        # Step 1: gamma per instance
        rho3_l = expand(3.0 * rho_b, b.L)
        prod_l = b.wk_l * (self.us_mass - rho3_l * self.zsum)
        loff = b.l_off_list
        gamma: dict[int, float] = {}
        go: list[int] = []
        for i in sub:
            gamma[i] = float(prod_l[loff[i] : loff[i + 1]].sum())
            if gamma[i] <= 0.0:
                out[i] = OracleDualStep(
                    dual=LayeredDual(b.levels[i]), route="zero", gamma=gamma[i]
                )
                # reference: (zeta[has_ik] * (2*0 + 0)[has_ik]).sum() == 0.0
                po[i] = 0.0
            else:
                go.append(i)
        if not go:
            return out, po

        # Step 2: net, Pos, Delta(i, l).  Row scans and row sums run per
        # *run* of consecutive same-L instances (identical per-row
        # rounding, far fewer numpy calls than per-instance views).
        # ``zeta`` is zero outside the has_ik cells and ``s - 2 rho * 0``
        # is bitwise ``s``, so the dense subtraction reduces to a copy
        # plus a scatter at the has_ik cells.
        net = self._net
        prefix, cs = self._prefix, self._cs
        rho2_hik = expand(2.0 * rho_b, self.hik_counts)
        np.multiply(rho2_hik, self.zmul, out=rho2_hik)
        np.copyto(net, self.s)
        net[self.hik_idx] = self.s[self.hik_idx] - rho2_hik
        pos_net = np.maximum(net, 0.0, out=net)  # net is not reused below
        np.multiply(b.wk_vl, pos_net, out=prefix)
        row_tot = self._row_tot
        for lo, hi, rlo, rhi, L in b.vl_runs:
            wv = prefix[lo:hi].reshape(-1, L)
            np.cumsum(wv, axis=1, out=wv)  # in-place scan == out-of-place
            pv = pos_net[lo:hi].reshape(-1, L)
            pv.sum(axis=1, out=row_tot[rlo:rhi])
            np.cumsum(pv, axis=1, out=cs[lo:hi].reshape(-1, L))
        # suffix and delta reuse the cs buffer: suffix = tot - cs,
        # delta = prefix + wk * suffix
        delta = cs
        np.subtract(expand(row_tot, b.row_len), cs, out=delta)
        np.multiply(b.wk_vl, delta, out=delta)
        np.add(prefix, delta, out=delta)

        # Step 3: k*_i as the last level exceeding the threshold
        gb = np.zeros(B, dtype=np.float64)
        for i in go:
            gb[i] = gamma[i] / self.beta[i]
        thresh = expand(gb, b.vl_count)
        np.multiply(thresh, b.b_vl, out=thresh)
        np.multiply(thresh, b.wk_vl, out=thresh)
        exceeds = delta > thresh
        e_idx = np.where(exceeds, b.col_vl, np.int32(-1))
        k_star_row = np.maximum.reduceat(e_idx, b.row_off[:-1])

        # Step 4: Viol(V), Gamma(V) -- one global scan, split per instance
        viol_rows = np.flatnonzero(k_star_row >= 0)
        bounds = np.searchsorted(viol_rows, b.v_off)
        gathered = delta[b.row_off[viol_rows] + k_star_row[viol_rows]]
        gamma_v: dict[int, float] = {}
        vertex_set: list[int] = []
        rest: list[int] = []
        for i in go:
            lo, hi = int(bounds[i]), int(bounds[i + 1])
            gv = float(gathered[lo:hi].sum()) if hi > lo else 0.0
            gamma_v[i] = gv
            if gv >= self.eps * gamma[i] / 24.0:
                vertex_set.append(i)
            else:
                rest.append(i)

        # Steps 5-8: vertex route (batched over the choosing instances)
        pos_mask = pos_net > 0.0
        ks_vl = expand(k_star_row, b.row_len)
        viol_vl = ks_vl >= 0
        step_x = None
        if vertex_set:
            ks_clip = np.maximum(k_star_row, 0)
            wk_ks_row = b.wk_l[b.l_off[b.row_inst] + ks_clip]
            wk_ks_vl = expand(wk_ks_row, b.row_len)
            gamma_arr = np.zeros(B, dtype=np.float64)
            gv_arr = np.ones(B, dtype=np.float64)
            for i in vertex_set:
                gamma_arr[i] = gamma[i]
                gv_arr[i] = gamma_v[i]
            wk_eff = np.where(b.col_vl <= ks_vl, b.wk_vl, wk_ks_vl)
            val = expand(gamma_arr, b.vl_count)
            np.multiply(val, wk_eff, out=val)
            with np.errstate(divide="ignore", invalid="ignore"):
                np.divide(val, expand(gv_arr, b.vl_count), out=val)
            mask = pos_mask & viol_vl
            # step values: val where masked, else 0 -- val is finite and
            # nonnegative, so the boolean multiply equals np.where
            np.multiply(val, mask, out=val)
            step_x = val
            # packing load of the z-free steps, one batched gather:
            # reference po_of computes (zeta[has_ik] * (2 x̃)[has_ik]).sum()
            po_flat = step_x[self.hik_idx]
            np.multiply(po_flat, 2.0, out=po_flat)
            np.multiply(po_flat, self.zmul, out=po_flat)
            for i in vertex_set:
                d = LayeredDual._wrap(b.levels[i], b.vl_view(step_x, i).copy())
                out[i] = OracleDualStep(dual=d, route="vertex", gamma=gamma[i])
                po[i] = float(
                    po_flat[self.hik_off[i] : self.hik_off[i + 1]].sum()
                )
        if not rest:
            return out, po

        # Step 9: lift zeta for violated vertices of the remaining instances
        inst_rest = np.zeros(B, dtype=bool)
        inst_rest[rest] = True
        rest_vl = expand(inst_rest, b.vl_count)
        cond = (b.col_vl <= ks_vl) & viol_vl & rest_vl & pos_mask
        with np.errstate(divide="ignore", invalid="ignore"):
            lifted = self.s / expand(2.0 * rho_b, b.vl_count)
        zeta_bar = np.where(cond, lifted, self.zeta)

        # Steps 10-21 per instance (rare): same helper as the scalar path
        for i in rest:
            lv = b.levels[i]
            zb = b.vl_view(zeta_bar, i)
            wk_i = b.l_view(b.wk_l, i)
            us_i = b.l_view(self.us_mass, i)
            rho_i = float(rho_b[i])
            gamma_p = float((wk_i * (us_i - 3.0 * rho_i * zb.sum(axis=0))).sum())
            sl = slice(int(self.stored.off[i]), int(self.stored.off[i + 1]))
            support_i = SupportVector(self.stored.ids[i], self.support_vals[sl])
            res = _oddset_witness_stage(
                lv,
                support_i,
                self.stored.lvl[i],
                us_i,
                zb,
                gamma[i],
                gamma_p,
                self.beta[i],
                rho_i,
                self.eps,
                self.use_odd[i],
                wk_i,
            )
            out[i] = res
            if isinstance(res, OracleDualStep):
                po[i] = self._po_single(i, res)
        return out, po

    # ------------------------------------------------------------------
    def _po_single(self, i: int, step: OracleDualStep) -> float:
        """Reference ``po_of`` for one (possibly z-carrying) step."""
        b = self.batch
        if step.dual.z:
            sload = step.dual.z_load()
            lhs = 2.0 * step.dual.x + sload
        else:
            lhs = 2.0 * step.dual.x
        hik_local = self.hik_idx[self.hik_off[i] : self.hik_off[i + 1]] - b.vl_off[i]
        zmul_seg = self.zmul[self.hik_off[i] : self.hik_off[i + 1]]
        return float((zmul_seg * lhs.ravel()[hik_local]).sum())
