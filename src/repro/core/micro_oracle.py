"""The MicroOracle for matching (Algorithm 5, Lemmas 13-14, Section 3.1).

Given a *sparsified* support (edge ids with multiplier values ``us``),
per-(vertex, level) packing multipliers ``zeta``, the current budget
``beta`` and a Lagrange multiplier ``rho``, the oracle returns one of:

* **A dual step** (part ii): a sparse layered-dual vector ``x̃``
  (``x_i(k)`` mass from the *violated-vertex route*, or ``z_{U,l}`` mass
  from the *odd-set route*) satisfying the Lagrangian inequality of
  LP8/LagInner and the sparsifier-consistency property ``G(us, x)``.
* **A witness** (part i): a feasible solution of LP7 on the support,
  certifying (through Lemma 13 / Theorem 23) that the support already
  contains an integral b-matching of weight ``(1 - 2 eps) beta`` -- the
  signal that the *primal* side should harvest the sample.

The three branches follow Algorithm 5 literally:

1. ``Γ(V) >= eps γ / 24`` -- violated vertices absorb the mass: return
   ``x`` supported on ``Viol(V)`` (step 6-7).
2. else lift ``ζ̄`` and hunt dense odd sets per level (Lemma 16);
   ``Γ(Os) >= eps γ' / 24`` -- odd sets absorb the mass: return ``z``
   supported on the disjoint families ``K(l)`` (steps 16-18).
3. else both contributions are small: the remaining multiplier mass
   *is* an LP7 feasible point after the ``ζ̂`` bump -- return the witness
   ``y = (1-eps/4) beta / ((1+eps/2) γ) us`` (step 21).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.levels import LevelDecomposition
from repro.core.odd_sets import find_dense_odd_sets
from repro.core.relaxations import LayeredDual
from repro.kernels import OracleScratch
from repro.kernels import dual_scatter as _k_dual_scatter
from repro.kernels import index_scatter as _k_index_scatter
from repro.kernels import oracle_eval as _k_oracle_eval
from repro.util.validation import check_epsilon

__all__ = [
    "OracleDualStep",
    "OracleWitness",
    "micro_oracle",
    "SupportVector",
    "BatchMicroContext",
]


@dataclass
class SupportVector:
    """Sparse multiplier vector over a sampled edge set.

    ``edge_ids`` index the source graph; every edge carries its single
    level (Lemma 14's "at most one k such that us_ijk != 0" -- our levels
    partition the edges, so this holds by construction).
    """

    edge_ids: np.ndarray
    values: np.ndarray

    def __post_init__(self) -> None:
        self.edge_ids = np.asarray(self.edge_ids, dtype=np.int64)
        self.values = np.asarray(self.values, dtype=np.float64)


@dataclass
class OracleDualStep:
    """Part (ii): a sparse dual direction x̃ plus diagnostics."""

    dual: LayeredDual
    route: str  # "zero" | "vertex" | "oddset"
    gamma: float
    gamma_prime: float | None = None


@dataclass
class OracleWitness:
    """Part (i): LP7 feasible point on the support.

    ``y`` maps edge id -> fractional value; ``mu`` is the (n, L) penalty
    matrix; Lemma 13 turns this into an integral matching of weight
    ``(1 - 2 eps) beta`` using only support edges.
    """

    y: dict[int, float]
    mu: np.ndarray
    gamma: float
    lp7_value: float


def _vertex_level_mass(
    levels: LevelDecomposition, support: SupportVector
) -> np.ndarray:
    """``s[i, k] = sum_{j : (i,j) in support, level k} us_ij`` (n x L)."""
    g = levels.graph
    n, L = g.n, levels.num_levels
    ids = support.edge_ids
    k = levels.level[ids] % L  # negative (dropped) levels wrap as add.at did
    vals = np.ascontiguousarray(support.values, dtype=np.float64)
    flat = _k_dual_scatter(g.src[ids] * L + k, g.dst[ids] * L + k, vals, n * L)
    return flat.reshape(n, L)


class _ScalarOracleLayout:
    """One-instance batch layout driving the fused Algorithm 5 kernel.

    :func:`micro_oracle` and :meth:`BatchMicroContext.evaluate` share
    one dispatched ``oracle_eval`` kernel; the scalar path wraps its
    ``(n, L)`` instance as a batch of size one.  Cached on the
    ``LevelDecomposition`` (rebuilt if the shape changes) since every
    inner step of a solve reuses it, scratch included.
    """

    def __init__(self, levels: LevelDecomposition):
        g = levels.graph
        n, L = g.n, levels.num_levels
        nvl = n * L
        self.size = 1
        self.L = np.array([L], dtype=np.int64)
        self.l_off = np.array([0, L], dtype=np.int64)
        self.l_off_list = [0, L]
        self.v_off = np.array([0, n], dtype=np.int64)
        self.vl_off = np.array([0, nvl], dtype=np.int64)
        self.vl_count = np.array([nvl], dtype=np.int64)
        self.row_off = np.arange(n + 1, dtype=np.int64) * L
        self.row_len = np.full(n, L, dtype=np.int64)
        self.row_inst = np.zeros(n, dtype=np.int64)
        self.vl_runs = [(0, nvl, 0, n, L)]
        self.wk_l = np.ascontiguousarray(
            levels.level_weight(np.arange(L)), dtype=np.float64
        )
        self.wk_vl = np.tile(self.wk_l, n)
        self.b_vl = np.repeat(g.b.astype(np.float64), L)
        self.col_vl = np.tile(np.arange(L, dtype=np.int64), n).astype(np.int32)
        self.scratch = OracleScratch(
            nvl=nvl, nv=n, nl=L, B=1, max_L=L, max_rows=n, max_hik=nvl
        )


def _scalar_layout(levels: LevelDecomposition) -> _ScalarOracleLayout:
    lay = getattr(levels, "_kernel_layout", None)
    g = levels.graph
    if lay is None or lay.row_len.size != g.n or int(lay.L[0]) != levels.num_levels:
        lay = _ScalarOracleLayout(levels)
        levels._kernel_layout = lay
    return lay


def micro_oracle(
    levels: LevelDecomposition,
    support: SupportVector,
    zeta: np.ndarray,
    beta: float,
    rho: float,
    eps: float | None = None,
    odd_sets: bool = True,
) -> OracleDualStep | OracleWitness:
    """Run Algorithm 5.

    Parameters
    ----------
    zeta:
        Packing multipliers, shape ``(n, L)`` (zeros where unused).
    beta:
        Current dual budget (rescaled units).
    rho:
        Lagrange multiplier ``% > 0`` from Lemma 10's search.
    odd_sets:
        Disable to run the bipartite-only oracle (no z mass; the paper
        notes the proof "for bipartite graphs" ends before the odd-set
        stage).
    """
    eps = check_epsilon(eps if eps is not None else levels.eps)
    g = levels.graph
    n, L = g.n, levels.num_levels

    zeta = np.asarray(zeta, dtype=np.float64)
    if zeta.shape != (n, L):
        raise ValueError(f"zeta must be shape {(n, L)}")

    lay = _scalar_layout(levels)
    wk = lay.wk_l  # ŵ_k

    ids = support.edge_ids
    vals = np.ascontiguousarray(support.values, dtype=np.float64)
    lvl_of_edge = levels.level[ids]
    kk = lvl_of_edge % L  # negative (dropped) levels wrap as add.at did
    s_flat = _k_dual_scatter(g.src[ids] * L + kk, g.dst[ids] * L + kk, vals, n * L)
    us_mass_per_level = _k_index_scatter(kk, vals, L)

    # Steps 1-8 run in the fused kernel on a batch of one; the packing
    # multipliers enter as their nonzero cells (zeta is exactly zero
    # elsewhere, and s - 2 rho * 0 is bitwise s).
    zr = np.ascontiguousarray(zeta).ravel()
    hik_idx = np.flatnonzero(zr != 0.0)
    zmul = zr[hik_idx]
    hik_off = np.array([0, hik_idx.size], dtype=np.int64)
    hik_counts = np.array([hik_idx.size], dtype=np.int64)

    sc = lay.scratch
    sc.rho[0] = rho
    sc.beta[0] = beta
    res = _k_oracle_eval(
        lay, s_flat, us_mass_per_level, zeta.sum(axis=0), hik_idx, hik_off,
        hik_counts, zmul, [0], sc.rho, sc.beta, eps, sc,
    )

    gamma = float(res.gamma[0])
    route = int(res.route[0])
    if route == 0:
        return OracleDualStep(dual=LayeredDual(levels), route="zero", gamma=gamma)
    if route == 1:
        step = LayeredDual._wrap(levels, res.step_x.reshape(n, L).copy())
        return OracleDualStep(dual=step, route="vertex", gamma=gamma)

    # Step 9: lift zeta for violated vertices
    s = s_flat.reshape(n, L)
    pos_net = res.pos_net.reshape(n, L)
    k_star = res.k_star_row
    viol = np.flatnonzero(k_star >= 0)
    zeta_bar = zeta.copy()
    for i in viol:
        ks = int(k_star[i])
        mask = (np.arange(L) <= ks) & (pos_net[i] > 0)
        zeta_bar[i, mask] = s[i, mask] / (2.0 * rho)

    # Step 10: gamma'
    gamma_p = float((wk * (us_mass_per_level - 3.0 * rho * zeta_bar.sum(axis=0))).sum())

    return _oddset_witness_stage(
        levels,
        support,
        lvl_of_edge,
        us_mass_per_level,
        zeta_bar,
        gamma,
        gamma_p,
        beta,
        rho,
        eps,
        odd_sets,
        wk,
    )


def _oddset_witness_stage(
    levels: LevelDecomposition,
    support: SupportVector,
    lvl_of_edge: np.ndarray,
    us_mass_per_level: np.ndarray,
    zeta_bar: np.ndarray,
    gamma: float,
    gamma_p: float,
    beta: float,
    rho: float,
    eps: float,
    odd_sets: bool,
    wk: np.ndarray,
) -> OracleDualStep | OracleWitness:
    """Steps 11-21 of Algorithm 5: odd-set route, else LP7 witness.

    Shared tail of the scalar and batched oracles: the batched engine
    reaches this stage rarely (most evaluations resolve through the
    vertex or zero route), so it runs per instance on views of the
    batch buffers -- the same code, hence bit-identical outcomes.
    """
    g = levels.graph
    n = g.n

    # Steps 11-15: per-level dense odd sets
    families: dict[int, list[tuple[tuple[int, ...], float]]] = {}
    gamma_os = 0.0
    if odd_sets and n >= 3:
        ids = support.edge_ids
        vals = support.values
        # cumulative edge mass over levels >= l is just "edges with
        # level >= l" since each edge lives at exactly one level
        active_levels = sorted(set(int(k) for k in np.unique(lvl_of_edge)), reverse=True)
        scale = (1.0 - eps / 4.0) * beta / gamma
        zeta_bar_cum_rev = np.cumsum(zeta_bar[:, ::-1], axis=1)[:, ::-1]
        taken_vertices: set[int] = set()
        for ell in active_levels:
            sel = lvl_of_edge >= ell
            if not sel.any():
                continue
            e_ids = ids[sel]
            e_val = vals[sel]
            q = scale * e_val
            q_hat = g.b.astype(np.float64) + 2.0 * scale * rho * zeta_bar_cum_rev[:, ell]
            fam = find_dense_odd_sets(
                n,
                g.b,
                g.src[e_ids],
                g.dst[e_ids],
                q,
                q_hat,
                eps,
                max_size_b=4.0 / eps,
            )
            kept: list[tuple[tuple[int, ...], float]] = []
            for U in fam.sets:
                if any(v in taken_vertices for v in U):
                    continue
                # verify Equation (4): Delta(U, l) >= gamma floor(.)/((1-eps/4) beta)
                members = np.zeros(n, dtype=bool)
                members[list(U)] = True
                inside = members[g.src[e_ids]] & members[g.dst[e_ids]]
                delta_u = float(e_val[inside].sum()) - rho * float(
                    zeta_bar_cum_rev[list(U), ell].sum()
                )
                need = (gamma / ((1.0 - eps / 4.0) * beta)) * (
                    int(g.b[list(U)].sum()) // 2
                )
                if delta_u >= need:
                    kept.append((U, delta_u))
                    taken_vertices.update(U)
            if kept:
                families[ell] = kept
                gamma_os += wk[ell] * sum(d for _, d in kept)

    # Steps 16-18: odd-set route
    if odd_sets and gamma_os >= eps * gamma_p / 24.0 and gamma_os > 0:
        step = LayeredDual(levels)
        for ell, kept in families.items():
            for U, _d in kept:
                step.z[(U, int(ell))] = gamma_p * float(wk[ell]) / gamma_os
        return OracleDualStep(
            dual=step, route="oddset", gamma=gamma, gamma_prime=gamma_p
        )

    # Steps 20-21: witness -- bump zeta-hat and emit LP7 point
    zeta_hat = zeta_bar.copy()
    for ell, kept in families.items():
        for U, _d in kept:
            zeta_hat[list(U), ell] += g.b[list(U)] * gamma / (2.0 * rho * beta)
    y_scale = (1.0 - eps / 4.0) * beta / ((1.0 + eps / 2.0) * gamma)
    y = {
        int(e): y_scale * float(v)
        for e, v in zip(support.edge_ids, support.values)
        if v > 0
    }
    mu = y_scale * rho * zeta_hat
    lp7_value = float(
        (
            wk
            * (
                us_mass_per_level * y_scale
                - 3.0 * (y_scale * rho * zeta_hat).sum(axis=0)
            )
        ).sum()
    )
    return OracleWitness(y=y, mu=mu, gamma=gamma, lp7_value=lp7_value)


# ----------------------------------------------------------------------
# Batched evaluation (Algorithm 5 over a batch of instances)
# ----------------------------------------------------------------------
class BatchMicroContext:
    """Per-inner-step context for batched Algorithm 5 evaluations.

    One context is built per lockstep inner step of
    :meth:`~repro.core.matching_solver.DualPrimalMatchingSolver.
    solve_many`: the quantities that are constant across a Lagrangian
    search -- the support scatter ``s``, the per-level support mass and
    ``zeta``'s column sums -- are computed once, and each
    :meth:`evaluate` call runs the per-``rho`` remainder of Algorithm 5
    for a subset of instances on concatenated buffers.  The packing
    load ``z^T Po x`` of every returned dual step is computed here too
    (one batched gather), so the caller's Lagrangian search needs no
    further array work.

    Bit-parity with :func:`micro_oracle` is maintained by the
    discipline documented in :mod:`repro.core.batch`: elementwise math
    is batched, ordered scatters keep per-instance order, reductions
    and scans run on contiguous per-instance views -- or, for the
    per-row scans (``cumsum``) and row sums, on *runs* of consecutive
    same-``L`` instances, whose stacked ``(rows, L)`` views scan each
    row independently and identically.  The odd-set and witness stages
    (rarely reached) call the *same* :func:`_oddset_witness_stage`
    helper as the scalar oracle, per instance, on views of the batch
    buffers.
    """

    def __init__(
        self,
        batch,
        active: list[int],
        stored,
        support_vals: np.ndarray,
        zeta: np.ndarray,
        zmul: np.ndarray,
        hik_idx: np.ndarray,
        hik_off: np.ndarray,
        beta: dict[int, float],
        use_odd: dict[int, bool],
        eps: float,
        hik_counts: np.ndarray | None = None,
    ):
        self.batch = batch
        self.active = list(active)
        self.stored = stored
        self.support_vals = support_vals
        self.zeta = zeta
        self.zmul = zmul
        self.hik_idx = hik_idx
        self.hik_off = hik_off
        self.hik_counts = np.diff(hik_off) if hik_counts is None else hik_counts
        self.beta = beta
        self.use_odd = use_odd
        self.eps = eps

        # s[i, k] scatter: all src contributions first, then all dst, as
        # in _vertex_level_mass (the dispatched kernel keeps that order).
        # The VL-sized scratch is cached on the batch: the previous
        # tick's context (the only holder of the returned buffer) is
        # dead by the time the next one is built.
        s_buf = getattr(batch, "_s_scratch", None)
        if s_buf is None or s_buf.size != int(batch.vl_off[-1]):
            s_buf = np.zeros(int(batch.vl_off[-1]), dtype=np.float64)
            batch._s_scratch = s_buf
        self.s = _k_dual_scatter(
            stored.src_vl, stored.dst_vl, support_vals, int(batch.vl_off[-1]),
            out=s_buf,
        )
        self.us_mass = _k_index_scatter(
            stored.l_idx, support_vals, int(batch.l_off[-1])
        )

        # zeta's per-level column sums.  For L >= 2 numpy reduces an
        # (n, L) plane over axis 0 by sequential row accumulation, which
        # is bit-identical to index_scatter's data-order adds, so the
        # whole batch collapses into one kernel call (cells of
        # non-evaluated instances land in segments the oracle never
        # reads).  L == 1 planes would take numpy's pairwise contiguous
        # reduction instead, so that (unused in practice) shape keeps
        # the per-instance reference loop.
        if batch.size and int(batch.L.min()) >= 2:
            lidx = getattr(batch, "_l_idx_vl", None)
            if lidx is None:
                from repro.core.batch import expand

                lidx = expand(batch.l_off[:-1], batch.vl_count) + batch.col_vl
                lidx = np.ascontiguousarray(lidx, dtype=np.int64)
                batch._l_idx_vl = lidx
            zsum = _k_index_scatter(lidx, zeta, int(batch.l_off[-1]))
        else:
            zsum = np.zeros(int(batch.l_off[-1]), dtype=np.float64)
            for i in self.active:
                batch.l_view(zsum, i)[:] = batch.vl_view(zeta, i).sum(axis=0)
        self.zsum = zsum

        # reusable kernel scratch (rewritten wholesale every evaluation);
        # cached on the batch layout so the per-tick contexts of one
        # lockstep round share one allocation -- only the hik-sized
        # buffer can force a regrow when zeta's support widens
        need_hik = int(self.hik_counts.max()) if batch.size else 0
        sc = getattr(batch, "_oracle_scratch", None)
        if sc is None or sc.pobuf.shape[0] < max(1, need_hik):
            sc = OracleScratch.for_batch(batch, hik_off)
            batch._oracle_scratch = sc
        self._scratch = sc

    # ------------------------------------------------------------------
    def evaluate(self, sub: list[int], rho: dict[int, float]):
        """Run Algorithm 5 at multiplier ``rho[i]`` for each ``i`` in ``sub``.

        Returns ``(results, po)``: ``results[i]`` is the
        ``OracleDualStep | OracleWitness`` and ``po[i]`` the packing
        load of the step (absent for witnesses).  Buffers are sized by
        the compact batch; segments of instances outside ``sub`` hold
        stale values and are never read.
        """
        b = self.batch
        B = b.size
        out: dict[int, OracleDualStep | OracleWitness] = {}
        po: dict[int, float] = {}

        from repro.core.batch import expand

        # Steps 1-8 run in the dispatched fused kernel; this method only
        # fills the per-call multiplier buffers, assembles the results by
        # route, and runs the rare odd-set/witness tail.
        sc = self._scratch
        rho_b = sc.rho
        rho_b.fill(0.0)
        for i in sub:
            rho_b[i] = rho[i]
        beta_b = sc.beta
        beta_b.fill(1.0)
        for i in sub:
            beta_b[i] = self.beta[i]

        res = _k_oracle_eval(
            b, self.s, self.us_mass, self.zsum, self.hik_idx, self.hik_off,
            self.hik_counts, self.zmul, sub, rho_b, beta_b, self.eps, sc,
        )

        rest: list[int] = []
        for i in sub:
            r = int(res.route[i])
            if r == 0:
                out[i] = OracleDualStep(
                    dual=LayeredDual(b.levels[i]),
                    route="zero",
                    gamma=float(res.gamma[i]),
                )
                # reference: (zeta[has_ik] * (2*0 + 0)[has_ik]).sum() == 0.0
                po[i] = 0.0
            elif r == 1:
                d = LayeredDual._wrap(b.levels[i], b.vl_view(res.step_x, i).copy())
                out[i] = OracleDualStep(
                    dual=d, route="vertex", gamma=float(res.gamma[i])
                )
                po[i] = float(res.po[i])
            else:
                rest.append(i)
        if not rest:
            return out, po

        # Step 9: lift zeta for violated vertices of the remaining instances
        pos_mask = res.pos_net > 0.0
        ks_vl = expand(res.k_star_row, b.row_len)
        viol_vl = ks_vl >= 0
        inst_rest = np.zeros(B, dtype=bool)
        inst_rest[rest] = True
        rest_vl = expand(inst_rest, b.vl_count)
        cond = (b.col_vl <= ks_vl) & viol_vl & rest_vl & pos_mask
        with np.errstate(divide="ignore", invalid="ignore"):
            lifted = self.s / expand(2.0 * rho_b, b.vl_count)
        zeta_bar = np.where(cond, lifted, self.zeta)

        # Steps 10-21 per instance (rare): same helper as the scalar path
        for i in rest:
            lv = b.levels[i]
            zb = b.vl_view(zeta_bar, i)
            wk_i = b.l_view(b.wk_l, i)
            us_i = b.l_view(self.us_mass, i)
            rho_i = float(rho_b[i])
            gamma_p = float((wk_i * (us_i - 3.0 * rho_i * zb.sum(axis=0))).sum())
            sl = slice(int(self.stored.off[i]), int(self.stored.off[i + 1]))
            support_i = SupportVector(self.stored.ids[i], self.support_vals[sl])
            tail = _oddset_witness_stage(
                lv,
                support_i,
                self.stored.lvl[i],
                us_i,
                zb,
                float(res.gamma[i]),
                gamma_p,
                self.beta[i],
                rho_i,
                self.eps,
                self.use_odd[i],
                wk_i,
            )
            out[i] = tail
            if isinstance(tail, OracleDualStep):
                po[i] = self._po_single(i, tail)
        return out, po

    # ------------------------------------------------------------------
    def _po_single(self, i: int, step: OracleDualStep) -> float:
        """Reference ``po_of`` for one (possibly z-carrying) step."""
        b = self.batch
        if step.dual.z:
            sload = step.dual.z_load()
            lhs = 2.0 * step.dual.x + sload
        else:
            lhs = 2.0 * step.dual.x
        hik_local = self.hik_idx[self.hik_off[i] : self.hik_off[i + 1]] - b.vl_off[i]
        zmul_seg = self.zmul[self.hik_off[i] : self.hik_off[i + 1]]
        return float((zmul_seg * lhs.ravel()[hik_local]).sum())
