"""The MicroOracle for matching (Algorithm 5, Lemmas 13-14, Section 3.1).

Given a *sparsified* support (edge ids with multiplier values ``us``),
per-(vertex, level) packing multipliers ``zeta``, the current budget
``beta`` and a Lagrange multiplier ``rho``, the oracle returns one of:

* **A dual step** (part ii): a sparse layered-dual vector ``x̃``
  (``x_i(k)`` mass from the *violated-vertex route*, or ``z_{U,l}`` mass
  from the *odd-set route*) satisfying the Lagrangian inequality of
  LP8/LagInner and the sparsifier-consistency property ``G(us, x)``.
* **A witness** (part i): a feasible solution of LP7 on the support,
  certifying (through Lemma 13 / Theorem 23) that the support already
  contains an integral b-matching of weight ``(1 - 2 eps) beta`` -- the
  signal that the *primal* side should harvest the sample.

The three branches follow Algorithm 5 literally:

1. ``Γ(V) >= eps γ / 24`` -- violated vertices absorb the mass: return
   ``x`` supported on ``Viol(V)`` (step 6-7).
2. else lift ``ζ̄`` and hunt dense odd sets per level (Lemma 16);
   ``Γ(Os) >= eps γ' / 24`` -- odd sets absorb the mass: return ``z``
   supported on the disjoint families ``K(l)`` (steps 16-18).
3. else both contributions are small: the remaining multiplier mass
   *is* an LP7 feasible point after the ``ζ̂`` bump -- return the witness
   ``y = (1-eps/4) beta / ((1+eps/2) γ) us`` (step 21).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.levels import LevelDecomposition
from repro.core.odd_sets import find_dense_odd_sets
from repro.core.relaxations import LayeredDual
from repro.util.validation import check_epsilon

__all__ = ["OracleDualStep", "OracleWitness", "micro_oracle", "SupportVector"]


@dataclass
class SupportVector:
    """Sparse multiplier vector over a sampled edge set.

    ``edge_ids`` index the source graph; every edge carries its single
    level (Lemma 14's "at most one k such that us_ijk != 0" -- our levels
    partition the edges, so this holds by construction).
    """

    edge_ids: np.ndarray
    values: np.ndarray

    def __post_init__(self) -> None:
        self.edge_ids = np.asarray(self.edge_ids, dtype=np.int64)
        self.values = np.asarray(self.values, dtype=np.float64)


@dataclass
class OracleDualStep:
    """Part (ii): a sparse dual direction x̃ plus diagnostics."""

    dual: LayeredDual
    route: str  # "zero" | "vertex" | "oddset"
    gamma: float
    gamma_prime: float | None = None


@dataclass
class OracleWitness:
    """Part (i): LP7 feasible point on the support.

    ``y`` maps edge id -> fractional value; ``mu`` is the (n, L) penalty
    matrix; Lemma 13 turns this into an integral matching of weight
    ``(1 - 2 eps) beta`` using only support edges.
    """

    y: dict[int, float]
    mu: np.ndarray
    gamma: float
    lp7_value: float


def _vertex_level_mass(
    levels: LevelDecomposition, support: SupportVector
) -> np.ndarray:
    """``s[i, k] = sum_{j : (i,j) in support, level k} us_ij`` (n x L)."""
    g = levels.graph
    n, L = g.n, levels.num_levels
    s = np.zeros((n, L), dtype=np.float64)
    ids = support.edge_ids
    k = levels.level[ids]
    np.add.at(s, (g.src[ids], k), support.values)
    np.add.at(s, (g.dst[ids], k), support.values)
    return s


def micro_oracle(
    levels: LevelDecomposition,
    support: SupportVector,
    zeta: np.ndarray,
    beta: float,
    rho: float,
    eps: float | None = None,
    odd_sets: bool = True,
) -> OracleDualStep | OracleWitness:
    """Run Algorithm 5.

    Parameters
    ----------
    zeta:
        Packing multipliers, shape ``(n, L)`` (zeros where unused).
    beta:
        Current dual budget (rescaled units).
    rho:
        Lagrange multiplier ``% > 0`` from Lemma 10's search.
    odd_sets:
        Disable to run the bipartite-only oracle (no z mass; the paper
        notes the proof "for bipartite graphs" ends before the odd-set
        stage).
    """
    eps = check_epsilon(eps if eps is not None else levels.eps)
    g = levels.graph
    n, L = g.n, levels.num_levels
    wk = levels.level_weight(np.arange(L))  # ŵ_k

    s = _vertex_level_mass(levels, support)
    zeta = np.asarray(zeta, dtype=np.float64)
    if zeta.shape != (n, L):
        raise ValueError(f"zeta must be shape {(n, L)}")

    lvl_of_edge = levels.level[support.edge_ids]
    us_mass_per_level = np.zeros(L, dtype=np.float64)
    np.add.at(us_mass_per_level, lvl_of_edge, support.values)

    # Step 1: gamma = sum_k ŵ_k (us-mass_k - 3 rho sum_i zeta_ik)
    gamma = float((wk * (us_mass_per_level - 3.0 * rho * zeta.sum(axis=0))).sum())
    if gamma <= 0.0:
        return OracleDualStep(dual=LayeredDual(levels), route="zero", gamma=gamma)

    # Step 2: net[i,k] and Pos(i); Delta(i, l) for all l, vectorized
    net = s - 2.0 * rho * zeta
    pos_net = np.maximum(net, 0.0)
    weighted = wk[None, :] * pos_net  # ŵ_k * net+  (n x L)
    prefix = np.cumsum(weighted, axis=1)  # sum_{k <= l} ŵ_k net+
    total = pos_net.sum(axis=1, keepdims=True)
    suffix_counts = total - np.cumsum(pos_net, axis=1)  # sum_{k > l} net+
    delta = prefix + wk[None, :] * suffix_counts  # Delta(i, l)

    # Step 3: k*_i = largest l with Delta(i,l) > gamma b_i ŵ_l / beta
    thresh = (gamma / beta) * g.b[:, None].astype(np.float64) * wk[None, :]
    exceeds = delta > thresh
    k_star = np.where(
        exceeds.any(axis=1), L - 1 - np.argmax(exceeds[:, ::-1], axis=1), -1
    )

    # Step 4: Viol(V), Gamma(V)
    viol = np.flatnonzero(k_star >= 0)
    gamma_v = float(delta[viol, k_star[viol]].sum()) if len(viol) else 0.0

    # Step 5-8: vertex route
    if gamma_v >= eps * gamma / 24.0:
        step = LayeredDual(levels)
        for i in viol:
            ks = int(k_star[i])
            pos_mask = pos_net[i] > 0
            lvls = np.flatnonzero(pos_mask)
            lo = lvls[lvls <= ks]
            hi = lvls[lvls > ks]
            step.x[i, lo] = gamma * wk[lo] / gamma_v
            step.x[i, hi] = gamma * wk[ks] / gamma_v
        return OracleDualStep(dual=step, route="vertex", gamma=gamma)

    # Step 9: lift zeta for violated vertices
    zeta_bar = zeta.copy()
    for i in viol:
        ks = int(k_star[i])
        mask = (np.arange(L) <= ks) & (pos_net[i] > 0)
        zeta_bar[i, mask] = s[i, mask] / (2.0 * rho)

    # Step 10: gamma'
    gamma_p = float((wk * (us_mass_per_level - 3.0 * rho * zeta_bar.sum(axis=0))).sum())

    # Steps 11-15: per-level dense odd sets
    families: dict[int, list[tuple[tuple[int, ...], float]]] = {}
    gamma_os = 0.0
    if odd_sets and n >= 3:
        ids = support.edge_ids
        vals = support.values
        # cumulative edge mass over levels >= l is just "edges with
        # level >= l" since each edge lives at exactly one level
        active_levels = sorted(set(int(k) for k in np.unique(lvl_of_edge)), reverse=True)
        scale = (1.0 - eps / 4.0) * beta / gamma
        zeta_bar_cum_rev = np.cumsum(zeta_bar[:, ::-1], axis=1)[:, ::-1]
        taken_vertices: set[int] = set()
        for ell in active_levels:
            sel = lvl_of_edge >= ell
            if not sel.any():
                continue
            e_ids = ids[sel]
            e_val = vals[sel]
            q = scale * e_val
            q_hat = g.b.astype(np.float64) + 2.0 * scale * rho * zeta_bar_cum_rev[:, ell]
            fam = find_dense_odd_sets(
                n,
                g.b,
                g.src[e_ids],
                g.dst[e_ids],
                q,
                q_hat,
                eps,
                max_size_b=4.0 / eps,
            )
            kept: list[tuple[tuple[int, ...], float]] = []
            for U in fam.sets:
                if any(v in taken_vertices for v in U):
                    continue
                # verify Equation (4): Delta(U, l) >= gamma floor(.)/((1-eps/4) beta)
                members = np.zeros(n, dtype=bool)
                members[list(U)] = True
                inside = members[g.src[e_ids]] & members[g.dst[e_ids]]
                delta_u = float(e_val[inside].sum()) - rho * float(
                    zeta_bar_cum_rev[list(U), ell].sum()
                )
                need = (gamma / ((1.0 - eps / 4.0) * beta)) * (
                    int(g.b[list(U)].sum()) // 2
                )
                if delta_u >= need:
                    kept.append((U, delta_u))
                    taken_vertices.update(U)
            if kept:
                families[ell] = kept
                gamma_os += wk[ell] * sum(d for _, d in kept)

    # Steps 16-18: odd-set route
    if odd_sets and gamma_os >= eps * gamma_p / 24.0 and gamma_os > 0:
        step = LayeredDual(levels)
        for ell, kept in families.items():
            for U, _d in kept:
                step.z[(U, int(ell))] = gamma_p * float(wk[ell]) / gamma_os
        return OracleDualStep(
            dual=step, route="oddset", gamma=gamma, gamma_prime=gamma_p
        )

    # Steps 20-21: witness -- bump zeta-hat and emit LP7 point
    zeta_hat = zeta_bar.copy()
    for ell, kept in families.items():
        for U, _d in kept:
            zeta_hat[list(U), ell] += g.b[list(U)] * gamma / (2.0 * rho * beta)
    y_scale = (1.0 - eps / 4.0) * beta / ((1.0 + eps / 2.0) * gamma)
    y = {
        int(e): y_scale * float(v)
        for e, v in zip(support.edge_ids, support.values)
        if v > 0
    }
    mu = y_scale * rho * zeta_hat
    lp7_value = float(
        (
            wk
            * (
                us_mass_per_level * y_scale
                - 3.0 * (y_scale * rho * zeta_hat).sum(axis=0)
            )
        ).sum()
    )
    return OracleWitness(y=y, mu=mu, gamma=gamma, lp7_value=lp7_value)
