"""The headline solver: Algorithms 1 and 2 for weighted nonbipartite
b-matching under resource constraints (Theorem 15).

One outer round = one *adaptive sampling round* (the O(p/eps) resource):

1. Evaluate the exponential multipliers ``u`` of the covering framework
   on the current dual (Corollary 6's formula).
2. Build a chain of ``O(eps^-1 log gamma)`` deferred u-sparsifiers with
   promise slack ``gamma = n^{1/(2p)}`` -- a single access to the data.
3. Harvest the primal: run the offline (1 - a3)-approximate b-matching
   on the union of stored edges (Algorithm 2, step 5); ratchet ``beta``
   when the sample's matching beats the current budget.
4. Spend the chain: refine each deferred sparsifier with the *current*
   multipliers (valid while the drift stays within gamma), and for each
   refinement run inner dual steps -- packing multipliers ``zeta`` over
   the Po box, Lemma 10's Lagrangian search around the MicroOracle, and
   the covering blend ``x <- (1-sigma) x + sigma x̃``.  A witness from
   the oracle aborts the inner loop (the sample provably holds a large
   matching; the primal side of this round already captured it).
5. Stop when the verified certificate shows the matching is within the
   target, when ``lambda >= 1 - 3 eps`` (dual converged), or at the
   O(p/eps) round cap.

Fidelity note: the width/step constants (``alpha``, ``sigma``) follow
Theorem 5/Corollary 6; ``step_scale`` (default > 1) accelerates the
blend beyond the worst-case-safe constant, which DESIGN.md records as a
tuning substitution -- with ``faithful=True`` the exact constants are
used.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.certificates import Certificate, MatchingResult, certify
from repro.core.initial import build_initial_solution
from repro.core.lagrangian import LagrangianSearch
from repro.core.levels import LevelDecomposition, discretize
from repro.core.micro_oracle import (
    OracleDualStep,
    OracleWitness,
    SupportVector,
    micro_oracle,
)
from repro.core.packing import packing_multipliers
from repro.core.relaxations import PENALTY_WIDTH_BOUND, LayeredDual
from repro.core.witness import extract_witness_matching
from repro.matching.augmenting import local_search_matching
from repro.matching.exact import max_weight_bmatching_exact
from repro.matching.structures import BMatching
from repro.sparsify.deferred import DeferredSparsifierChain
from repro.util.graph import Graph
from repro.util.instrumentation import ResourceLedger
from repro.util.rng import make_rng, spawn
from repro.util.validation import check_epsilon

__all__ = ["SolverConfig", "DualPrimalMatchingSolver", "solve_matching"]


class _WitnessFound(Exception):
    """Internal control flow: the MicroOracle returned an LP7 witness."""

    def __init__(self, witness: OracleWitness):
        self.witness = witness


@dataclass
class SolverConfig:
    """Tunables of the dual-primal solver.

    Attributes
    ----------
    eps:
        Target approximation parameter (Theorem 15 gives 1 - O(eps)).
    p:
        Space/round tradeoff: central space ~ n^{1+1/p}, rounds ~ p/eps.
    chain_count:
        Deferred sparsifiers per round (defaults to ceil(ln gamma) with
        gamma = n^{1/(2p)}, floored at 2).
    inner_steps:
        Total dual (covering) steps per outer round, spread across the
        refined chain.  This is the *use-time* adaptivity the deferral
        buys: the paper allows O(eps^-2 log n) of these per sampling
        round.  ``None`` = auto budget ``ceil(2 ln(m/eps) / eps^2)``
        capped at ``inner_step_cap``.
    inner_step_cap:
        Hard cap on the auto inner budget (runtime guard).
    offline:
        "exact" (blossom / vertex-splitting) or "local" (greedy + 2-opt)
        offline subroutine for the sampled union.
    odd_sets:
        Enable the odd-set route of the MicroOracle ("auto" enables it
        whenever n >= 3; the bipartite instantiation can switch it off).
    step_scale:
        Multiplier on the covering step sigma (1.0 = faithful constants).
    faithful:
        Force all Theorem 5/7 constants (slower; used by fidelity tests).
    round_cap_factor:
        Outer rounds are capped at ``ceil(factor * p / eps)``.
    """

    eps: float = 0.1
    p: float = 2.0
    chain_count: int | None = None
    inner_steps: int | None = None
    inner_step_cap: int = 3000
    offline: str = "exact"
    odd_sets: str | bool = "auto"
    step_scale: float = 8.0
    faithful: bool = False
    round_cap_factor: float = 3.0
    seed: int | None = None
    target_gap: float | None = None  # stop when certified ratio >= 1 - gap

    def __post_init__(self) -> None:
        check_epsilon(self.eps)
        if self.p <= 1.0:
            raise ValueError("p must exceed 1 (space n^{1+1/p})")
        if self.offline not in ("exact", "local"):
            raise ValueError("offline must be 'exact' or 'local'")
        if self.faithful:
            self.step_scale = 1.0


class DualPrimalMatchingSolver:
    """Resource-constrained (1 - O(eps))-approximate b-matching solver."""

    def __init__(self, config: SolverConfig | None = None, **kwargs):
        if config is None:
            config = SolverConfig(**kwargs)
        elif kwargs:
            raise ValueError("pass either a config or keyword overrides, not both")
        self.config = config

    # ------------------------------------------------------------------
    def solve(self, graph: Graph) -> MatchingResult:
        cfg = self.config
        rng = make_rng(cfg.seed)
        ledger = ResourceLedger()
        eps = cfg.eps

        if graph.m == 0:
            levels = discretize(graph, eps) if graph.m else None
            empty = BMatching.empty(graph)
            cert = Certificate(
                upper_bound=0.0,
                lambda_min=1.0,
                dual_objective_rescaled=0.0,
                scale_factor=1.0,
                x=np.zeros(graph.n),
                z={},
            )
            return MatchingResult(
                matching=empty,
                certificate=cert,
                rounds=0,
                lambda_min=1.0,
                beta_final=0.0,
                resources=ledger.snapshot(),
            )

        levels = discretize(graph, eps)
        live = levels.live_edges()
        gamma = max(np.e, graph.n ** (1.0 / (2.0 * cfg.p)))
        chain_count = cfg.chain_count
        if chain_count is None:
            chain_count = max(2, int(np.ceil(np.log(gamma))))
        round_cap = max(2, int(np.ceil(cfg.round_cap_factor * cfg.p / eps)))
        use_odd = (
            graph.n >= 3 if cfg.odd_sets == "auto" else bool(cfg.odd_sets)
        )
        target_gap = cfg.target_gap if cfg.target_gap is not None else eps

        # --- initial solution (Lemmas 12/20/21): one O(p)-round block ---
        init = build_initial_solution(
            levels, p=cfg.p, seed=rng, ledger=ledger, sampled=False
        )
        ledger.tick_sampling_round("initial per-level maximal matchings")
        dual = init.dual
        best = init.merged
        beta = max(init.beta0, self._rescaled_value(levels, best), 1e-12)

        # Po rows that exist: (i, k) with a live level-k edge at i
        has_ik = self._incidence_mask(levels)
        wk = levels.level_weight(np.arange(levels.num_levels))

        history: list[dict] = []
        lam = dual.lambda_min()
        m_live = max(2, len(live))
        rounds = 0

        inner_budget = cfg.inner_steps
        if inner_budget is None:
            inner_budget = min(
                cfg.inner_step_cap,
                int(np.ceil(2.0 * np.log(m_live / eps) / eps**2)),
            )

        while rounds < round_cap:
            rounds += 1
            # ---- multipliers u on all live edges (Corollary 6) ----
            lam = dual.lambda_min()
            lam_t = max(lam, eps / 512.0)
            alpha = 2.0 * np.log(m_live / eps) / (lam_t * eps)
            u = self._multipliers(levels, dual, live, alpha)
            ledger.tick_sampling_round("deferred sparsifier chain")

            # ---- deferred chain: one data access ----
            promise = np.zeros(graph.m)
            promise[live] = u
            chain = self._build_chain(
                graph,
                promise,
                gamma=gamma,
                xi=max(eps, 0.2),
                count=chain_count,
                rng=rng,
                ledger=ledger,
            )

            # ---- primal harvest (Algorithm 2, step 5) ----
            pool = np.union1d(chain.union_edge_ids(), best.edge_ids)
            candidate = self._offline_match(graph, pool)
            if candidate.weight() > best.weight():
                best = candidate
            beta_prime = self._rescaled_value(levels, best)
            if beta_prime > beta / (1.0 + eps):
                beta = beta_prime * (1.0 + eps)

            # ---- dual steps over the refined chain (use-time adaptivity):
            # each inner step re-refines the stored edges against the
            # *current* multipliers (a local computation -- the deferral),
            # runs the Lagrangian-wrapped MicroOracle, and blends with the
            # effective-width covering step.
            witness_seen = False
            routes = {"vertex": 0, "oddset": 0, "zero": 0}
            per_sparsifier = max(1, inner_budget // max(1, len(chain)))
            for q in range(len(chain)):
                sp = chain[q]
                stored = sp.stored_edge_ids
                probs = sp.stored_probs
                stored_live = levels.level[stored] >= 0
                stored = stored[stored_live]
                probs = probs[stored_live]
                if len(stored) == 0:
                    continue
                for _ in range(per_sparsifier):
                    u_stored = self._multipliers(levels, dual, stored, alpha)
                    support = SupportVector(stored, u_stored / probs)
                    ledger.tick_refinement()
                    step = self._inner_step(
                        levels, dual, support, has_ik, wk, beta, eps, use_odd, ledger
                    )
                    if step is None or isinstance(step, OracleWitness):
                        witness_seen = True
                        if isinstance(step, OracleWitness):
                            # Lemma 13: the support provably holds a large
                            # matching -- extract it and fold into the primal
                            harvested, _report = extract_witness_matching(
                                levels,
                                step,
                                beta,
                                eps=eps,
                                offline=self.config.offline,
                                strict=False,
                            )
                            if harvested.weight() > best.weight():
                                best = harvested
                        break
                    routes[step.route] += 1
                    if step.route == "zero":
                        break
                    # effective width of this particular step (Theorem 5
                    # only needs 0 <= A x̃ <= rho c for the step taken)
                    rho_step = max(
                        PENALTY_WIDTH_BOUND,
                        float(step.dual.edge_ratios(live).max()),
                    )
                    sigma = min(
                        0.5, cfg.step_scale * eps / (4.0 * alpha * rho_step)
                    )
                    dual.blend(step.dual, sigma)
                    lam = dual.lambda_min()
                    if lam >= 2.0 * lam_t and lam < 1.0 - 3.0 * eps:
                        # phase boundary (Theorem 5): refresh alpha
                        lam_t = max(lam, eps / 512.0)
                        alpha = 2.0 * np.log(m_live / eps) / (lam_t * eps)
                    if lam >= 1.0 - 3.0 * eps:
                        break
                if witness_seen or lam >= 1.0 - 3.0 * eps:
                    break
            lam = dual.lambda_min()
            cert = certify(dual)
            history.append(
                {
                    "round": rounds,
                    "primal": best.weight(),
                    "beta_rescaled": beta,
                    "lambda": lam,
                    "upper_bound": cert.upper_bound,
                    "witness": witness_seen,
                    **routes,
                }
            )
            if cert.certified_ratio(best.weight()) >= 1.0 - target_gap:
                break
            if lam >= 1.0 - 3.0 * eps:
                break

        cert = certify(dual)
        return MatchingResult(
            matching=best,
            certificate=cert,
            rounds=rounds,
            lambda_min=lam,
            beta_final=beta,
            history=history,
            resources=ledger.snapshot(),
        )

    # ------------------------------------------------------------------
    def _build_chain(
        self,
        graph: Graph,
        promise: np.ndarray,
        gamma: float,
        xi: float,
        count: int,
        rng: np.random.Generator,
        ledger: ResourceLedger,
    ):
        """One sampling round's deferred chain.

        Overridable execution binding: the default samples directly from
        the in-memory edge arrays; the semi-streaming subclass
        (:class:`repro.streaming.streaming_matching.
        SemiStreamingMatchingSolver`) rebuilds the same object from a
        single pass over an edge stream.  Any replacement must expose
        ``__len__``, ``__getitem__ -> {stored_edge_ids, stored_probs}``
        and ``union_edge_ids()``.
        """
        return DeferredSparsifierChain(
            graph,
            promise,
            gamma=gamma,
            xi=xi,
            count=count,
            seed=rng,
            ledger=ledger,
        )

    # ------------------------------------------------------------------
    @staticmethod
    def _rescaled_value(levels: LevelDecomposition, matching: BMatching) -> float:
        """Matching value in rescaled units (dropped edges contribute 0)."""
        lv = levels.level[matching.edge_ids]
        livemask = lv >= 0
        return float(
            (
                levels.level_weight(lv[livemask])
                * matching.multiplicity[livemask]
            ).sum()
        )

    @staticmethod
    def _incidence_mask(levels: LevelDecomposition) -> np.ndarray:
        g = levels.graph
        mask = np.zeros((g.n, levels.num_levels), dtype=bool)
        live = levels.live_edges()
        k = levels.level[live]
        mask[g.src[live], k] = True
        mask[g.dst[live], k] = True
        return mask

    @staticmethod
    def _multipliers(
        levels: LevelDecomposition,
        dual: LayeredDual,
        live: np.ndarray,
        alpha: float,
    ) -> np.ndarray:
        """Corollary 6 multipliers over the live edges (shift-normalized)."""
        ratios = dual.edge_ratios(live)
        shifted = alpha * (ratios - ratios.min())
        np.clip(shifted, 0.0, 60.0, out=shifted)
        return np.exp(-shifted) / levels.level_weight(levels.level[live])

    @staticmethod
    def _full_vector(m: int, ids: np.ndarray, values: np.ndarray) -> np.ndarray:
        out = np.zeros(m)
        out[ids] = values
        return out

    def _offline_match(self, graph: Graph, pool: np.ndarray) -> BMatching:
        """Offline subroutine on the sampled union (Algorithm 2, step 5)."""
        sub = graph.edge_subgraph(pool)
        if self.config.offline == "exact":
            sub_match = max_weight_bmatching_exact(sub)
        else:
            sub_match = local_search_matching(sub)
        return BMatching(graph, pool[sub_match.edge_ids], sub_match.multiplicity)

    def _inner_step(
        self,
        levels: LevelDecomposition,
        dual: LayeredDual,
        support: SupportVector,
        has_ik: np.ndarray,
        wk: np.ndarray,
        beta: float,
        eps: float,
        use_odd: bool,
        ledger: ResourceLedger,
    ) -> OracleDualStep | None:
        """One packing-guided dual step; None when a witness fires.

        Builds the packing multipliers over the Po box, runs Lemma 10's
        Lagrangian search around the MicroOracle, and returns the Inner
        solution.
        """
        n, L = has_ik.shape
        # Po ratios on existing rows: (2 x_i(k) + z-load) / (3 ŵ_k)
        load = dual.z_load()
        po_lhs = 2.0 * dual.x + load
        po_rhs = np.broadcast_to(3.0 * wk[None, :], has_ik.shape)
        ratios = np.where(has_ik, po_lhs / po_rhs, -np.inf)
        delta = eps / 6.0
        alpha_p = 2.0 * np.log(max(int(has_ik.sum()), 2) / delta) / delta
        flat = ratios[has_ik]
        zmul = packing_multipliers(flat, po_rhs[has_ik], alpha_p)
        zeta = np.zeros((n, L))
        zeta[has_ik] = zmul

        usc = float((support.values * wk[levels.level[support.edge_ids]]).sum())
        qo_budget = float((zeta[has_ik] * po_rhs[has_ik]).sum())
        if usc <= 0 or qo_budget <= 0:
            return OracleDualStep(dual=LayeredDual(levels), route="zero", gamma=0.0)

        def micro(rho: float):
            ledger.tick_oracle()
            out = micro_oracle(
                levels, support, zeta, beta, rho, eps=eps, odd_sets=use_odd
            )
            if isinstance(out, OracleWitness):
                raise _WitnessFound(out)
            return out

        def po_of(step: OracleDualStep) -> float:
            sload = step.dual.z_load()
            lhs = 2.0 * step.dual.x + sload
            return float((zeta[has_ik] * lhs[has_ik]).sum())

        def combine(a: OracleDualStep, b: OracleDualStep, s1: float, s2: float):
            mixed = a.dual.copy()
            mixed.x *= s1
            for key in list(mixed.z):
                mixed.z[key] *= s1
            other = b.dual
            mixed.x += s2 * other.x
            for key, v in other.z.items():
                mixed.z[key] = mixed.z.get(key, 0.0) + s2 * v
            return OracleDualStep(
                dual=mixed, route=a.route if s1 >= s2 else b.route, gamma=a.gamma
            )

        search = LagrangianSearch(
            micro_oracle=micro,
            po_of=po_of,
            combine=combine,
            qo_budget=qo_budget,
            usc=usc,
            eps=eps,
        )
        try:
            outcome = search.run()
        except _WitnessFound as wf:
            return wf.witness
        return outcome.x


def solve_matching(graph: Graph, eps: float = 0.1, **kwargs) -> MatchingResult:
    """One-call convenience wrapper around the solver."""
    return DualPrimalMatchingSolver(SolverConfig(eps=eps, **kwargs)).solve(graph)
