"""The headline solver: Algorithms 1 and 2 for weighted nonbipartite
b-matching under resource constraints (Theorem 15).

One outer round = one *adaptive sampling round* (the O(p/eps) resource):

1. Evaluate the exponential multipliers ``u`` of the covering framework
   on the current dual (Corollary 6's formula).
2. Build a chain of ``O(eps^-1 log gamma)`` deferred u-sparsifiers with
   promise slack ``gamma = n^{1/(2p)}`` -- a single access to the data.
3. Harvest the primal: run the offline (1 - a3)-approximate b-matching
   on the union of stored edges (Algorithm 2, step 5); ratchet ``beta``
   when the sample's matching beats the current budget.
4. Spend the chain: refine each deferred sparsifier with the *current*
   multipliers (valid while the drift stays within gamma), and for each
   refinement run inner dual steps -- packing multipliers ``zeta`` over
   the Po box, Lemma 10's Lagrangian search around the MicroOracle, and
   the covering blend ``x <- (1-sigma) x + sigma x̃``.  A witness from
   the oracle aborts the inner loop (the sample provably holds a large
   matching; the primal side of this round already captured it).
5. Stop when the verified certificate shows the matching is within the
   target, when ``lambda >= 1 - 3 eps`` (dual converged), or at the
   O(p/eps) round cap.

Fidelity note: the width/step constants (``alpha``, ``sigma``) follow
Theorem 5/Corollary 6; ``step_scale`` (default > 1) accelerates the
blend beyond the worst-case-safe constant, which DESIGN.md records as a
tuning substitution -- with ``faithful=True`` the exact constants are
used.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

import numpy as np

from repro import obs
from repro.core.certificates import Certificate, MatchingResult, certify
from repro.core.initial import build_initial_solution
from repro.core.lagrangian import LagrangianSearch
from repro.core.levels import LevelDecomposition, discretize
from repro.core.micro_oracle import (
    OracleDualStep,
    OracleWitness,
    SupportVector,
    micro_oracle,
)
from repro.core.packing import packing_multipliers
from repro.core.relaxations import PENALTY_WIDTH_BOUND, LayeredDual, blend_z_dicts
from repro.kernels import blend as _k_blend
from repro.kernels import gather_add2 as _k_gather_add2
from repro.kernels import seg_ratio_max as _k_seg_ratio_max
from repro.kernels import tick_pack_arg as _k_tick_pack_arg
from repro.kernels import tick_pack_post as _k_tick_pack_post
from repro.kernels import tick_stored_post as _k_tick_stored_post
from repro.kernels import tick_stored_shift as _k_tick_stored_shift
from repro.core.witness import extract_witness_matching
from repro.matching.augmenting import local_search_matching
from repro.matching.exact import max_weight_bmatching_exact
from repro.matching.structures import BMatching
from repro.sparsify.deferred import DeferredSparsifierChain
from repro.util.deprecation import warn_legacy
from repro.util.graph import Graph, edge_key
from repro.util.instrumentation import ResourceLedger
from repro.util.rng import make_rng, spawn
from repro.util.validation import check_epsilon

__all__ = [
    "SolverConfig",
    "WarmStart",
    "DualPrimalMatchingSolver",
    "solve_matching",
    "solve_many",
]


class _WitnessFound(Exception):
    """Internal control flow: the MicroOracle returned an LP7 witness."""

    def __init__(self, witness: OracleWitness):
        self.witness = witness


def _empty_result(graph: Graph, ledger: ResourceLedger) -> MatchingResult:
    """Trivial result for an edgeless instance (shared by solve/solve_many)."""
    empty = BMatching.empty(graph)
    cert = Certificate(
        upper_bound=0.0,
        lambda_min=1.0,
        dual_objective_rescaled=0.0,
        scale_factor=1.0,
        x=np.zeros(graph.n),
        z={},
    )
    return MatchingResult(
        matching=empty,
        certificate=cert,
        rounds=0,
        lambda_min=1.0,
        beta_final=0.0,
        resources=ledger.snapshot(),
    )


def _combine_steps(
    a: OracleDualStep, b: OracleDualStep, s1: float, s2: float
) -> OracleDualStep:
    """Convex combination ``s1 a + s2 b`` of two oracle steps (Lemma 10)."""
    mixed = a.dual.copy()
    mixed.x *= s1
    for key in list(mixed.z):
        mixed.z[key] *= s1
    other = b.dual
    mixed.x += s2 * other.x
    for key, v in other.z.items():
        mixed.z[key] = mixed.z.get(key, 0.0) + s2 * v
    return OracleDualStep(
        dual=mixed, route=a.route if s1 >= s2 else b.route, gamma=a.gamma
    )


@dataclass
class SolverConfig:
    """Tunables of the dual-primal solver.

    Attributes
    ----------
    eps:
        Target approximation parameter (Theorem 15 gives 1 - O(eps)).
    p:
        Space/round tradeoff: central space ~ n^{1+1/p}, rounds ~ p/eps.
    chain_count:
        Deferred sparsifiers per round (defaults to ceil(ln gamma) with
        gamma = n^{1/(2p)}, floored at 2).
    inner_steps:
        Total dual (covering) steps per outer round, spread across the
        refined chain.  This is the *use-time* adaptivity the deferral
        buys: the paper allows O(eps^-2 log n) of these per sampling
        round.  ``None`` = auto budget ``ceil(2 ln(m/eps) / eps^2)``
        capped at ``inner_step_cap``.
    inner_step_cap:
        Hard cap on the auto inner budget (runtime guard).
    offline:
        "exact" (blossom / vertex-splitting) or "local" (greedy + 2-opt)
        offline subroutine for the sampled union.
    odd_sets:
        Enable the odd-set route of the MicroOracle ("auto" enables it
        whenever n >= 3; the bipartite instantiation can switch it off).
    step_scale:
        Multiplier on the covering step sigma (1.0 = faithful constants).
    faithful:
        Force all Theorem 5/7 constants (slower; used by fidelity tests).
    round_cap_factor:
        Outer rounds are capped at ``ceil(factor * p / eps)``.
    """

    eps: float = 0.1
    p: float = 2.0
    chain_count: int | None = None
    inner_steps: int | None = None
    inner_step_cap: int = 3000
    offline: str = "exact"
    odd_sets: str | bool = "auto"
    step_scale: float = 8.0
    faithful: bool = False
    round_cap_factor: float = 3.0
    seed: int | None = None
    target_gap: float | None = None  # stop when certified ratio >= 1 - gap

    def __post_init__(self) -> None:
        check_epsilon(self.eps)
        if self.p <= 1.0:
            raise ValueError("p must exceed 1 (space n^{1+1/p})")
        if self.offline not in ("exact", "local"):
            raise ValueError("offline must be 'exact' or 'local'")
        if self.faithful:
            self.step_scale = 1.0


@dataclass
class WarmStart:
    """Dual/primal carry-over from a previous solve on a *nearby* graph.

    The dynamic-session workload solves a slowly drifting instance over
    and over; restarting the covering framework from zero wastes the
    information the previous solve already paid for.  A ``WarmStart``
    carries the two reusable artifacts:

    Attributes
    ----------
    x:
        Per-vertex dual costs in *original* weight units -- a verified
        LP2-feasible point on the previous graph (the certificate's
        ``x`` vector).  Lifted into the new level decomposition it
        covers every surviving edge, so only edges touched by the edit
        burst can pull ``lambda`` below 1.
    pairs:
        The previous matching as ``(u, v, multiplicity)`` triples;
        surviving pairs are folded back in as the primal incumbent.

    Semantics: a warm start never changes *what* the solver guarantees
    -- the certificate of the returned result is re-verified edge by
    edge against the new graph -- but a warm-started solve is not
    bit-identical to a cold one (it may terminate with ``rounds=0``
    when the lifted dual already certifies the folded matching within
    ``target_gap``).  Callers that need bit-parity with the offline
    backend must solve cold (see ``docs/dynamic.md``).
    """

    x: np.ndarray
    pairs: list[tuple[int, int, int]]
    #: Fast-path acceptance gap.  ``None`` accepts at the config's own
    #: ``target_gap``; a session that *solves* tighter than it *serves*
    #: (slack) sets this to the serving gap, so every real solve banks
    #: certification margin for later warm queries to spend.
    accept_gap: float | None = None

    @classmethod
    def from_result(
        cls, result: MatchingResult, accept_gap: float | None = None
    ) -> "WarmStart":
        """Extract the carry-over from a previous :class:`MatchingResult`.

        Uses the certificate's *raw* collapsed dual (``dual_x``), not
        the verified/rescaled vector: the rescale factor and dropped-
        edge padding would compound generation over generation and sink
        the certified ratio of every warm descendant.
        """
        m = result.matching
        g = m.graph
        pairs = [
            (int(g.src[e]), int(g.dst[e]), int(mult))
            for e, mult in zip(m.edge_ids, m.multiplicity)
        ]
        cert = result.certificate
        x = cert.dual_x if cert.dual_x is not None else cert.x
        return cls(
            x=np.asarray(x, dtype=np.float64).copy(),
            pairs=pairs,
            accept_gap=accept_gap,
        )

    def fold_matching(self, graph: Graph) -> BMatching:
        """Surviving previous-matching edges as a b-matching on ``graph``.

        Pairs whose edge no longer exists are dropped; multiplicities
        are clipped to the remaining vertex capacities in deterministic
        (canonical edge key) order, so the result is always feasible.
        """
        if not self.pairs:
            return BMatching.empty(graph)
        keys = graph.edge_keys()
        order = np.argsort(keys, kind="stable")
        sorted_keys = keys[order]
        residual = graph.b.copy()
        taken: dict[int, int] = {}
        for u, v, mult in sorted(
            self.pairs, key=lambda t: (min(t[0], t[1]), max(t[0], t[1]))
        ):
            if not (0 <= u < graph.n and 0 <= v < graph.n) or u == v:
                continue
            key = int(edge_key(u, v, graph.n))
            pos = int(np.searchsorted(sorted_keys, key))
            if pos >= len(sorted_keys) or int(sorted_keys[pos]) != key:
                continue
            e = int(order[pos])
            take = min(int(mult), int(residual[graph.src[e]]), int(residual[graph.dst[e]]))
            if take > 0:
                taken[e] = taken.get(e, 0) + take
                residual[graph.src[e]] -= take
                residual[graph.dst[e]] -= take
        if not taken:
            return BMatching.empty(graph)
        ids = np.asarray(sorted(taken), dtype=np.int64)
        mult = np.asarray([taken[int(e)] for e in ids], dtype=np.int64)
        return BMatching(graph, ids, mult)


class _PoBox:
    """Precomputed layout of the live Po rows ``{(i, k) : has_ik}``.

    The inner step evaluates ``(2 x_i(k) + z-load) / (3 ŵ_k)`` on the
    live rows once per tick.  The dense formulation materializes three
    ``(n, L)`` temporaries per call; this layout walks the dual one
    level block at a time and scatters each block's values into their
    *row-major* flat positions, so the arrays handed to
    ``packing_multipliers`` and the budget/po_of reductions are
    bit-identical to ``ratios[has_ik]`` / ``po_rhs[has_ik]`` of the
    dense path while the per-tick working set drops to
    ``O(n + live rows)``.
    """

    def __init__(self, has_ik: np.ndarray, wk: np.ndarray, eps: float):
        n, L = has_ik.shape
        self.has_ik = has_ik
        self.shape = (n, L)
        idx = np.flatnonzero(has_ik.ravel())
        self.count = int(idx.size)
        rows = idx // L
        cols = idx % L
        rhs3 = 3.0 * np.asarray(wk, dtype=np.float64)
        self.rhs_flat = rhs3[cols]
        self._rhs3 = rhs3
        self._rows_by_level = [rows[cols == k] for k in range(L)]
        self._pos_by_level = [np.flatnonzero(cols == k) for k in range(L)]
        delta = eps / 6.0
        self.alpha_p = 2.0 * np.log(max(self.count, 2) / delta) / delta

    def flat_lhs(self, dual: LayeredDual) -> np.ndarray:
        """Row-major ``(2 x + z-load)[has_ik]``, one level block at a time."""
        out = np.empty(self.count, dtype=np.float64)
        for k, rows in enumerate(self._rows_by_level):
            if rows.size == 0:
                continue
            lhs = 2.0 * dual.x_block(k)[rows] + dual.z_load_block(k)[rows]
            out[self._pos_by_level[k]] = lhs
        return out

    def flat_ratios(self, dual: LayeredDual) -> np.ndarray:
        """Row-major Po ratios ``(2 x + z-load)[has_ik] / (3 ŵ_k)``."""
        out = self.flat_lhs(dual)
        out /= self.rhs_flat
        return out


class DualPrimalMatchingSolver:
    """Resource-constrained (1 - O(eps))-approximate b-matching solver."""

    def __init__(self, config: SolverConfig | None = None, **kwargs):
        if config is None:
            config = SolverConfig(**kwargs)
        elif kwargs:
            raise ValueError("pass either a config or keyword overrides, not both")
        self.config = config

    # ------------------------------------------------------------------
    def solve(
        self, graph: Graph, warm_start: WarmStart | None = None
    ) -> MatchingResult:
        """Solve one instance with Algorithms 1-2 (Theorem 15).

        Runs ``O(p / eps)`` adaptive sampling rounds; each round builds
        one deferred-sparsifier chain (a single access to the data),
        harvests the primal from the sampled union, and spends the chain
        on packing-guided dual steps around the MicroOracle.

        Parameters
        ----------
        graph:
            Weighted undirected instance; ``graph.b`` carries the
            per-vertex capacities (all ones = plain matching).  An
            edgeless graph short-circuits to an empty result.
        warm_start:
            Optional :class:`WarmStart` from a previous solve on a
            nearby graph.  The carried dual is lifted into this graph's
            level decomposition (capped at the penalty box, so it is
            always admissible) and joined with the Lemma-12 initial
            dual; surviving matched pairs seed the primal incumbent.
            If the lifted dual already *certifies* the incumbent within
            ``target_gap``, the solve returns immediately with
            ``rounds=0``.  With ``warm_start=None`` (the default) the
            trajectory is bit-identical to earlier releases.

        Returns
        -------
        MatchingResult
            The best integral b-matching found, a *verified* dual
            certificate (``certificate.upper_bound`` is checked edge by
            edge, so ``result.certified_ratio`` is a rigorous lower
            bound on the approximation ratio), per-round ``history``,
            and the resource-ledger snapshot (sampling rounds,
            refinements, oracle calls, space).

        Notes
        -----
        Deterministic given ``config.seed``.  This scalar path is the
        executable specification of the solver: :meth:`solve_many` is
        pinned bit-for-bit against it (``tests/test_solver_batch.py``).
        """
        cfg = self.config
        rng = make_rng(cfg.seed)
        ledger = ResourceLedger()
        eps = cfg.eps

        if graph.m == 0:
            return _empty_result(graph, ledger)

        levels = discretize(graph, eps)
        live_count = int(np.count_nonzero(levels.level >= 0))
        gamma = max(np.e, graph.n ** (1.0 / (2.0 * cfg.p)))
        chain_count = cfg.chain_count
        if chain_count is None:
            chain_count = max(2, int(np.ceil(np.log(gamma))))
        round_cap = max(2, int(np.ceil(cfg.round_cap_factor * cfg.p / eps)))
        use_odd = (
            graph.n >= 3 if cfg.odd_sets == "auto" else bool(cfg.odd_sets)
        )
        target_gap = cfg.target_gap if cfg.target_gap is not None else eps

        # --- initial solution (Lemmas 12/20/21): one O(p)-round block ---
        init = build_initial_solution(
            levels, p=cfg.p, seed=rng, ledger=ledger, sampled=False
        )
        ledger.tick_sampling_round("initial per-level maximal matchings")
        dual = init.dual
        best = init.merged
        beta = max(init.beta0, self._rescaled_value(levels, best), 1e-12)

        if warm_start is not None:
            # Fast path: lift the previous duals into a *copy* of the
            # initial dual and certify -- as-is and with the cover patch
            # (edges the edit burst left uncovered get both endpoints
            # raised to 0.5 ŵ_k; box-feasible, so the patched point is
            # admissible and its verified bound only pays the handful of
            # touched vertices).  If either certificate proves the
            # folded-and-greedily-completed incumbent within the target,
            # the burst was absorbed with zero sampling rounds.  On a
            # miss the solve proceeds from the *cold* initial dual (the
            # saturated warm point is a dead end for the covering
            # dynamics) keeping only the stronger primal incumbent.
            folded = self._greedy_complete(graph, warm_start.fold_matching(graph))
            # 2-opt repair (b = 1 only -- for general b the local search
            # ignores its seed and would just redo the greedy sweep): an
            # edit burst's heavy inserts land on saturated vertices,
            # where completion cannot reach them but a swap can --
            # exactly the weight the patched bound charges
            if bool(np.all(graph.b == 1)):
                swapped = local_search_matching(graph, rounds=2, seed_matching=folded)
                if swapped.weight() > folded.weight():
                    folded = swapped
            if folded.weight() > best.weight():
                best = folded
            beta = max(beta, self._rescaled_value(levels, best))
            gap = (
                warm_start.accept_gap
                if warm_start.accept_gap is not None
                else target_gap
            )
            warm_dual = dual.copy()
            self._apply_warm_start(levels, warm_dual, warm_start)
            cert0 = certify(warm_dual)
            patched = warm_dual.copy()
            self._cover_patch(levels, patched)
            cert1 = certify(patched)
            chosen = patched if cert1.upper_bound < cert0.upper_bound else warm_dual
            cert = cert1 if cert1.upper_bound < cert0.upper_bound else cert0
            if cert.certified_ratio(best.weight()) >= 1.0 - gap:
                # carry the UNPATCHED point forward (certify(warm_dual)
                # already collapsed it into cert0): the patch is a
                # per-query shim for whatever is currently uncovered;
                # folding it into the next generation's warm state would
                # accrete residue for long-deleted edges and sink every
                # descendant's certified ratio
                cert = replace(cert, dual_x=cert0.dual_x, dual_z=cert0.dual_z)
                return MatchingResult(
                    matching=best,
                    certificate=cert,
                    rounds=0,
                    lambda_min=chosen.lambda_min(),
                    beta_final=beta,
                    history=[],
                    resources=ledger.snapshot(),
                )

        # Po rows that exist: (i, k) with a live level-k edge at i
        has_ik = self._incidence_mask(levels)
        wk = levels.level_weight(np.arange(levels.num_levels))
        pobox = _PoBox(has_ik, wk, eps)

        history: list[dict] = []
        lam = dual.lambda_min()
        m_live = max(2, live_count)
        rounds = 0

        inner_budget = cfg.inner_steps
        if inner_budget is None:
            inner_budget = min(
                cfg.inner_step_cap,
                int(np.ceil(2.0 * np.log(m_live / eps) / eps**2)),
            )

        while rounds < round_cap:
            rounds += 1
            # ---- multipliers u on all live edges (Corollary 6) ----
            lam = dual.lambda_min()
            lam_t = max(lam, eps / 512.0)
            alpha = 2.0 * np.log(m_live / eps) / (lam_t * eps)
            promise = self._round_promise(levels, dual, alpha, lam)
            ledger.tick_sampling_round("deferred sparsifier chain")

            # ---- deferred chain: one data access ----
            chain = self._build_chain(
                graph,
                promise,
                gamma=gamma,
                xi=max(eps, 0.2),
                count=chain_count,
                rng=rng,
                ledger=ledger,
            )

            # ---- primal harvest (Algorithm 2, step 5) ----
            pool = np.union1d(chain.union_edge_ids(), best.edge_ids)
            candidate = self._offline_match(graph, pool)
            if candidate.weight() > best.weight():
                best = candidate
            beta_prime = self._rescaled_value(levels, best)
            if beta_prime > beta / (1.0 + eps):
                beta = beta_prime * (1.0 + eps)

            # ---- dual steps over the refined chain (use-time adaptivity):
            # each inner step re-refines the stored edges against the
            # *current* multipliers (a local computation -- the deferral),
            # runs the Lagrangian-wrapped MicroOracle, and blends with the
            # effective-width covering step.
            witness_seen = False
            routes = {"vertex": 0, "oddset": 0, "zero": 0}
            per_sparsifier = max(1, inner_budget // max(1, len(chain)))
            for q in range(len(chain)):
                sp = chain[q]
                stored = sp.stored_edge_ids
                probs = sp.stored_probs
                stored_live = levels.level[stored] >= 0
                stored = stored[stored_live]
                probs = probs[stored_live]
                if len(stored) == 0:
                    continue
                for _ in range(per_sparsifier):
                    u_stored = self._multipliers(levels, dual, stored, alpha)
                    support = SupportVector(stored, u_stored / probs)
                    ledger.tick_refinement()
                    step = self._inner_step(
                        levels, dual, support, pobox, wk, beta, eps, use_odd, ledger
                    )
                    if step is None or isinstance(step, OracleWitness):
                        witness_seen = True
                        if isinstance(step, OracleWitness):
                            # Lemma 13: the support provably holds a large
                            # matching -- extract it and fold into the primal
                            harvested, _report = extract_witness_matching(
                                levels,
                                step,
                                beta,
                                eps=eps,
                                offline=self.config.offline,
                                strict=False,
                            )
                            if harvested.weight() > best.weight():
                                best = harvested
                        break
                    routes[step.route] += 1
                    if step.route == "zero":
                        break
                    # effective width of this particular step (Theorem 5
                    # only needs 0 <= A x̃ <= rho c for the step taken)
                    rho_step = max(
                        PENALTY_WIDTH_BOUND,
                        step.dual.live_ratio_max(),
                    )
                    sigma = min(
                        0.5, cfg.step_scale * eps / (4.0 * alpha * rho_step)
                    )
                    dual.blend(step.dual, sigma)
                    lam = dual.lambda_min()
                    if lam >= 2.0 * lam_t and lam < 1.0 - 3.0 * eps:
                        # phase boundary (Theorem 5): refresh alpha
                        lam_t = max(lam, eps / 512.0)
                        alpha = 2.0 * np.log(m_live / eps) / (lam_t * eps)
                    if lam >= 1.0 - 3.0 * eps:
                        break
                if witness_seen or lam >= 1.0 - 3.0 * eps:
                    break
            lam = dual.lambda_min()
            cert = certify(dual)
            history.append(
                {
                    "round": rounds,
                    "primal": best.weight(),
                    "beta_rescaled": beta,
                    "lambda": lam,
                    "upper_bound": cert.upper_bound,
                    "witness": witness_seen,
                    **routes,
                }
            )
            ratio = cert.certified_ratio(best.weight())
            # guarded: field evaluation (weight sums) costs nothing
            # when no trace is active
            if obs.current_span() is not None:
                obs.span_event(
                    "solver.round",
                    round=rounds,
                    gap=max(0.0, 1.0 - ratio),
                    lam=lam,
                    primal=best.weight(),
                    oracle_calls=ledger.oracle_calls,
                    witness=witness_seen,
                )
            if ratio >= 1.0 - target_gap:
                break
            if lam >= 1.0 - 3.0 * eps:
                break

        cert = certify(dual)
        return MatchingResult(
            matching=best,
            certificate=cert,
            rounds=rounds,
            lambda_min=lam,
            beta_final=beta,
            history=history,
            resources=ledger.snapshot(),
        )

    # ------------------------------------------------------------------
    def _build_chain(
        self,
        graph: Graph,
        promise: np.ndarray,
        gamma: float,
        xi: float,
        count: int,
        rng: np.random.Generator,
        ledger: ResourceLedger,
    ):
        """One sampling round's deferred chain.

        Overridable execution binding: the default samples directly from
        the in-memory edge arrays; the semi-streaming subclass
        (:class:`repro.streaming.streaming_matching.
        SemiStreamingMatchingSolver`) rebuilds the same object from a
        single pass over an edge stream.  Any replacement must expose
        ``__len__``, ``__getitem__ -> {stored_edge_ids, stored_probs}``
        and ``union_edge_ids()``.
        """
        return DeferredSparsifierChain(
            graph,
            promise,
            gamma=gamma,
            xi=xi,
            count=count,
            seed=rng,
            ledger=ledger,
        )

    # ------------------------------------------------------------------
    def _round_promise(
        self, levels: LevelDecomposition, dual, alpha: float, lam: float
    ):
        """Round-start promise vector for the sparsifier chain.

        Default binding: materialize the dense per-edge array (0 on
        dropped edges, Corollary 6 multipliers on live ones).  The
        file-backed semi-streaming binding overrides this with a lazy
        per-chunk evaluator so no O(m) float column is ever resident;
        any replacement must support ``promise[edge_ids] -> values``
        with bit-identical floats.  ``lam`` is the round-start
        ``dual.lambda_min()`` -- bitwise equal to the live-ratio minimum
        the dense multipliers recompute -- handed down so a lazy binding
        can shift-normalize without an extra pass over the data.
        """
        live = levels.live_edges()
        u = self._multipliers(levels, dual, live, alpha)
        promise = np.zeros(levels.graph.m)
        promise[live] = u
        return promise

    # ------------------------------------------------------------------
    @staticmethod
    def _apply_warm_start(
        levels: LevelDecomposition, dual: LayeredDual, warm: WarmStart
    ) -> None:
        """Join the lifted previous dual into the initial dual, in place.

        The carried per-vertex costs (original units) are rescaled into
        every level and capped at ``1.5 ŵ_k`` -- the largest per-vertex
        value the penalty box ``2 x_i(k) + z-load <= 3 ŵ_k`` admits with
        ``z = 0`` -- then joined with the Lemma-12 initial dual by
        elementwise max.  Both points are box-feasible, the box is a
        per-(vertex, level) cap on ``x`` alone when ``z = 0``, and edge
        coverage is monotone in ``x``, so the join is box-feasible and
        covers at least as well as either input: every edge both graphs
        share stays covered to >= its old ratio.
        """
        x = np.asarray(warm.x, dtype=np.float64)
        n = levels.graph.n
        if x.shape != (n,):
            raise ValueError(f"warm-start x must have shape ({n},)")
        L = levels.num_levels
        wk = levels.level_weight(np.arange(L))
        lift = np.minimum(
            np.maximum(x, 0.0)[:, None] / levels.scale, 1.5 * wk[None, :]
        )
        np.maximum(dual.x, lift, out=dual.x)

    @staticmethod
    def _greedy_complete(graph: Graph, matching: BMatching) -> BMatching:
        """Extend a feasible b-matching greedily (heaviest edge first).

        The warm path's folded incumbent loses whatever the edit burst
        deleted and knows nothing about what it inserted; one O(m log m)
        greedy sweep over the remaining capacity recovers most of that
        weight before the fast-path certificate is checked.  Only adds
        edges, so feasibility and weight are monotone.
        """
        residual = graph.b.copy()
        loads = matching.vertex_loads()
        residual -= loads
        taken = {
            int(e): int(m)
            for e, m in zip(matching.edge_ids, matching.multiplicity)
        }
        order = np.argsort(-graph.weight, kind="stable")
        for e in order.tolist():
            i, j = graph.src[e], graph.dst[e]
            take = min(int(residual[i]), int(residual[j]))
            if take > 0:
                taken[e] = taken.get(e, 0) + take
                residual[i] -= take
                residual[j] -= take
        if not taken:
            return BMatching.empty(graph)
        ids = np.asarray(sorted(taken), dtype=np.int64)
        mult = np.asarray([taken[int(e)] for e in ids], dtype=np.int64)
        return BMatching(graph, ids, mult)

    @staticmethod
    def _cover_patch(levels: LevelDecomposition, dual: LayeredDual) -> None:
        """Raise both endpoints of every live edge to ``0.5 ŵ_k`` at its
        level, in place.

        After the patch every live edge is covered (``lambda >= 1``)
        and every entry still respects the ``x <= 1.5 ŵ_k`` box.  Used
        on a *copy* for the warm-start fast path only: it buys an
        immediately-verifiable certificate whose cost is the objective
        increase at the touched vertices, but it is a dead end for the
        covering dynamics (coverage is already saturated), so the
        iterated solve keeps the unpatched dual.
        """
        ids = levels.live_edges()
        if len(ids) == 0:
            return
        g = levels.graph
        k = levels.level[ids]
        half = 0.5 * levels.level_weight(k)
        np.maximum.at(dual.x, (g.src[ids], k), half)
        np.maximum.at(dual.x, (g.dst[ids], k), half)

    @staticmethod
    def _rescaled_value(levels: LevelDecomposition, matching: BMatching) -> float:
        """Matching value in rescaled units (dropped edges contribute 0)."""
        lv = levels.level[matching.edge_ids]
        livemask = lv >= 0
        return float(
            (
                levels.level_weight(lv[livemask])
                * matching.multiplicity[livemask]
            ).sum()
        )

    @staticmethod
    def _incidence_mask(levels: LevelDecomposition) -> np.ndarray:
        """Boolean (n, L) mask of the (vertex, level) rows with a live edge.

        Built from O(chunk)-resident edge slices (a boolean scatter is
        order-insensitive), so file-backed graphs never materialize and
        no O(m) live-id array is allocated.
        """
        g = levels.graph
        level = levels.level
        mask = np.zeros((g.n, levels.num_levels), dtype=bool)
        chunk = int(getattr(g, "chunk_edges", 0) or 65536)
        for start in range(0, level.shape[0], chunk):
            stop = min(start + chunk, level.shape[0])
            k = level[start:stop]
            livemask = k >= 0
            if not livemask.any():
                continue
            kl = k[livemask]
            mask[np.asarray(g.src[start:stop])[livemask], kl] = True
            mask[np.asarray(g.dst[start:stop])[livemask], kl] = True
        return mask

    @staticmethod
    def _multipliers(
        levels: LevelDecomposition,
        dual: LayeredDual,
        live: np.ndarray,
        alpha: float,
    ) -> np.ndarray:
        """Corollary 6 multipliers over the live edges (shift-normalized)."""
        ratios = dual.edge_ratios(live)
        shifted = alpha * (ratios - ratios.min())
        np.clip(shifted, 0.0, 60.0, out=shifted)
        return np.exp(-shifted) / levels.level_weight(levels.level[live])

    @staticmethod
    def _full_vector(m: int, ids: np.ndarray, values: np.ndarray) -> np.ndarray:
        out = np.zeros(m)
        out[ids] = values
        return out

    def _offline_match(self, graph: Graph, pool: np.ndarray) -> BMatching:
        """Offline subroutine on the sampled union (Algorithm 2, step 5)."""
        sub = graph.edge_subgraph(pool)
        if self.config.offline == "exact":
            sub_match = max_weight_bmatching_exact(sub)
        else:
            sub_match = local_search_matching(sub)
        return BMatching(graph, pool[sub_match.edge_ids], sub_match.multiplicity)

    def _inner_step(
        self,
        levels: LevelDecomposition,
        dual: LayeredDual,
        support: SupportVector,
        pobox: "_PoBox",
        wk: np.ndarray,
        beta: float,
        eps: float,
        use_odd: bool,
        ledger: ResourceLedger,
    ) -> OracleDualStep | None:
        """One packing-guided dual step; None when a witness fires.

        Builds the packing multipliers over the Po box (one level block
        at a time via the precomputed :class:`_PoBox` layout -- no
        per-tick ``(n, L)`` temporaries), runs Lemma 10's Lagrangian
        search around the MicroOracle, and returns the Inner solution.
        """
        n, L = pobox.shape
        flat = pobox.flat_ratios(dual)
        zmul = packing_multipliers(flat, pobox.rhs_flat, pobox.alpha_p)
        zeta = np.zeros((n, L))
        zeta[pobox.has_ik] = zmul

        usc = float((support.values * wk[levels.level[support.edge_ids]]).sum())
        qo_budget = float((zmul * pobox.rhs_flat).sum())
        if usc <= 0 or qo_budget <= 0:
            return OracleDualStep(dual=LayeredDual(levels), route="zero", gamma=0.0)

        def micro(rho: float):
            ledger.tick_oracle()
            out = micro_oracle(
                levels, support, zeta, beta, rho, eps=eps, odd_sets=use_odd
            )
            if isinstance(out, OracleWitness):
                raise _WitnessFound(out)
            return out

        def po_of(step: OracleDualStep) -> float:
            return float((zmul * pobox.flat_lhs(step.dual)).sum())

        search = LagrangianSearch(
            micro_oracle=micro,
            po_of=po_of,
            combine=_combine_steps,
            qo_budget=qo_budget,
            usc=usc,
            eps=eps,
        )
        try:
            outcome = search.run()
        except _WitnessFound as wf:
            return wf.witness
        return outcome.x


    # ------------------------------------------------------------------
    # Batched solving
    # ------------------------------------------------------------------
    def solve_many(
        self,
        graphs: list[Graph],
        seeds: list[int | None] | None = None,
    ) -> list[MatchingResult]:
        """Solve a batch of instances in lockstep (see :mod:`repro.core.batch`).

        Runs the same algorithm as :meth:`solve` for every instance --
        same RNG streams, same control flow, pinned bit-identical
        results -- but executes the elementwise array math of concurrent
        inner steps on concatenated buffers, amortizing numpy dispatch
        overhead across the batch.  See ``benchmarks/BENCH_solver.json``
        for the measured per-instance speedup.

        Parameters
        ----------
        graphs:
            Instances to solve.  They may be heterogeneous in size,
            weights and capacities.
        seeds:
            Optional per-instance seed overrides; entry ``i`` replaces
            ``config.seed`` for instance ``i``.

        Returns
        -------
        list[MatchingResult]
            ``results[i]`` equals ``solve(graphs[i])`` (with the same
            seed) value for value.
        """
        if seeds is not None and len(seeds) != len(graphs):
            raise ValueError("seeds must have one entry per graph")
        engine = _BatchEngine(self, graphs, seeds)
        return engine.run()

    def solve_requests(self, requests) -> list[MatchingResult]:
        """Batch-engine entry for externally assembled request groups.

        Serving-layer callers (the :mod:`repro.service` micro-batcher,
        the facade's grouped ``run_many``) coalesce independent
        concurrent requests sharing this solver's config into a list of
        :class:`~repro.core.batch.SolveRequest` and hand it here.  A
        singleton group skips batch-layout assembly entirely and runs
        the scalar reference path -- a request coalesced alone in a
        quiet serving window must not pay concatenated-buffer setup --
        which is safe because the engine is pinned bit-identical to
        :meth:`solve`.

        Returns
        -------
        list[MatchingResult]
            ``results[i]`` equals ``solve(requests[i].graph)`` under
            ``requests[i].seed`` (falling back to ``config.seed``),
            value for value.
        """
        requests = list(requests)
        if not requests:
            return []
        if len(requests) == 1:
            req = requests[0]
            cfg = (
                self.config
                if req.seed is None
                else replace(self.config, seed=req.seed)
            )
            return [DualPrimalMatchingSolver(cfg).solve(req.graph)]
        return self.solve_many(
            [req.graph for req in requests],
            seeds=[req.seed for req in requests],
        )


def solve_matching(graph: Graph, eps: float = 0.1, **kwargs) -> MatchingResult:
    """One-call (1 - O(eps))-approximate weighted b-matching (Theorem 15).

    Parameters
    ----------
    graph:
        Weighted undirected instance (``repro.util.graph.Graph``);
        ``graph.b`` holds the per-vertex capacities.
    eps:
        Target approximation parameter in ``(0, 1/2)``; the paper's
        guarantee is ``1 - O(eps)`` at ``O(p / eps)`` sampling rounds
        and ``O(n^{1+1/p})`` central space.
    **kwargs:
        Remaining :class:`SolverConfig` fields (``p``, ``seed``,
        ``offline``, ``inner_steps``, ``faithful``, ...).

    Returns
    -------
    MatchingResult
        See :meth:`DualPrimalMatchingSolver.solve`; ``result.weight`` is
        the matched weight and ``result.certified_ratio`` its verified
        approximation guarantee.

    Examples
    --------
    >>> import warnings
    >>> from repro.util.graph import Graph
    >>> g = Graph.from_edges(2, [(0, 1)], [7.0])
    >>> with warnings.catch_warnings():
    ...     warnings.simplefilter("ignore", DeprecationWarning)
    ...     solve_matching(g, eps=0.2, seed=0).weight
    7.0

    .. deprecated::
        Thin shim over ``repro.api.run(Problem(graph, config=...),
        backend="offline")``; results are pinned bit-identical.  New
        code should call the facade directly.
    """
    from repro.api import Problem, run

    warn_legacy(
        "repro.solve_matching",
        'repro.api.run(Problem(graph, config=SolverConfig(...)), backend="offline")',
    )
    problem = Problem(graph, config=SolverConfig(eps=eps, **kwargs))
    return run(problem, backend="offline").raw


def solve_many(
    graphs: list[Graph],
    eps: float = 0.1,
    seeds: list[int | None] | None = None,
    **kwargs,
) -> list[MatchingResult]:
    """One-call batched solving: ``solve_matching`` over many instances.

    Equivalent to ``[solve_matching(g, eps=eps, seed=seeds[i], **kwargs)
    for i, g in enumerate(graphs)]`` but executed by the lockstep batch
    engine -- identical results, much higher per-instance throughput at
    batch sizes >= 8 (see ``docs/performance.md``).

    .. deprecated::
        Thin shim over ``repro.api.run_many``; the facade routes
        homogeneous offline batches through the same lockstep engine.
    """
    from repro.api import Problem, run_many

    warn_legacy(
        "repro.solve_many",
        'repro.api.run_many([Problem(g, config=...) for g in graphs], '
        'backend="offline")',
    )
    if seeds is not None and len(seeds) != len(graphs):
        raise ValueError("seeds must have one entry per graph")
    base = SolverConfig(eps=eps, **kwargs)
    problems = []
    for i, g in enumerate(graphs):
        seed = seeds[i] if seeds is not None and seeds[i] is not None else base.seed
        problems.append(Problem(g, config=replace(base, seed=seed)))
    return [r.raw for r in run_many(problems, backend="offline")]


# ======================================================================
# The lockstep batch engine
# ======================================================================
_PHASE_ROUND_START = "round_start"
_PHASE_INNER = "inner"
_PHASE_ROUND_END = "round_end"
_PHASE_DONE = "done"


class _LagState:
    """Per-instance mirror of :class:`LagrangianSearch`'s control flow.

    Stages: ``init`` (evaluating the Lemma 10 starting multiplier),
    ``double`` (growing ``rho_hi`` until the Po budget holds),
    ``bisect`` (narrowing ``[rho_lo, rho_hi]``), then done.  The engine
    advances every searching instance one oracle evaluation per batched
    call, so per-instance evaluation sequences match the reference.
    """

    __slots__ = (
        "stage",
        "cap",
        "rho0",
        "tol",
        "rho_lo",
        "rho_hi",
        "rho_mid",
        "x_lo",
        "x_hi",
        "po_lo",
        "po_hi",
        "pending_rho",
        "invocations",
        "outcome",
    )

    def __init__(self, usc: float, qo_budget: float, eps: float):
        self.cap = (13.0 / 12.0) * qo_budget
        self.rho0 = 12.0 * usc / (13.0 * qo_budget)
        self.tol = self.rho0 * eps / 16.0
        self.rho_lo = usc / (16.0 * qo_budget)
        self.rho_hi = 0.0
        self.rho_mid = 0.0
        self.x_lo = None
        self.x_hi = None
        self.po_lo = 0.0
        self.po_hi = 0.0
        self.invocations = 0
        self.outcome = None
        self.stage = "init"
        self.pending_rho = self.rho_lo

    def advance(self, step: OracleDualStep, po: float, max_invocations: int = 80):
        """Feed one oracle result; sets ``pending_rho`` or ``outcome``."""
        self.invocations += 1
        self.pending_rho = None
        if self.stage == "init":
            self.x_lo, self.po_lo = step, po
            if po <= self.cap:
                self.outcome = step
                return
            self.rho_hi = max(self.rho0, self.rho_lo * 2.0)
            self.stage = "double"
            self.pending_rho = self.rho_hi
            return
        if self.stage == "double":
            self.x_hi, self.po_hi = step, po
            if po > self.cap:
                if self.invocations < max_invocations:
                    self.rho_hi *= 2.0
                    self.pending_rho = self.rho_hi
                else:
                    # degenerate; return the budget-respecting zero-equivalent
                    self.outcome = step
                return
            self.stage = "bisect"
            self._next_bisection(max_invocations)
            return
        # bisect
        if po > self.cap:
            self.rho_lo, self.x_lo, self.po_lo = self.rho_mid, step, po
        else:
            self.rho_hi, self.x_hi, self.po_hi = self.rho_mid, step, po
        self._next_bisection(max_invocations)

    def _next_bisection(self, max_invocations: int):
        if self.rho_hi - self.rho_lo > self.tol and self.invocations < max_invocations:
            self.rho_mid = 0.5 * (self.rho_lo + self.rho_hi)
            self.pending_rho = self.rho_mid
            return
        up1, up2 = self.po_lo, self.po_hi
        denom = up1 - up2
        if denom <= 1e-15:
            s1 = 0.0
        else:
            s1 = (self.cap - up2) / denom
        s1 = min(max(s1, 0.0), 1.0)
        s2 = 1.0 - s1
        self.outcome = _combine_steps(self.x_lo, self.x_hi, s1, s2)


class _InstanceState:
    """Everything one instance carries between lockstep ticks."""

    __slots__ = (
        "i",
        "slot",
        "graph",
        "levels",
        "rng",
        "ledger",
        "live",
        "m_live",
        "gamma_chain",
        "chain_count",
        "round_cap",
        "use_odd",
        "target_gap",
        "inner_budget",
        "alpha_p",
        "hik_local",
        "hik_count",
        "dual",
        "best",
        "beta",
        "history",
        "rounds",
        "lam",
        "lam_t",
        "alpha",
        "phase",
        "chain",
        "q",
        "step_in_q",
        "per_sparsifier",
        "witness_seen",
        "routes",
        "stored",
        "probs",
        "lag",
        "inner_outcome",
        "result",
    )


class _BatchEngine:
    """Lockstep executor behind :meth:`DualPrimalMatchingSolver.solve_many`.

    Every instance is an independent little state machine replaying the
    reference :meth:`~DualPrimalMatchingSolver.solve` loop (round setup,
    offline harvest and certification stay per-instance -- they carry
    the RNG stream and the networkx subroutines); what is batched is the
    hot inner path: stored-edge multipliers, packing multipliers,
    Algorithm 5 evaluations (via :class:`~repro.core.micro_oracle.
    BatchMicroContext`), the covering blend and the ``lambda`` scans.
    """

    def __init__(
        self,
        solver: DualPrimalMatchingSolver,
        graphs: list[Graph],
        seeds: list[int | None] | None,
    ):
        from repro.core.batch import GraphBatch

        self.solver = solver
        cfg = solver.config
        self.eps = cfg.eps
        self.results: list[MatchingResult | None] = [None] * len(graphs)
        self.index_map: list[int] = []  # batch position -> caller position
        nonempty: list[Graph] = []
        for pos, g in enumerate(graphs):
            if g.m == 0:
                self.results[pos] = _empty_result(g, ResourceLedger())
            else:
                self.index_map.append(pos)
                nonempty.append(g)
        if not nonempty:
            self.states = []
            return
        levels = [discretize(g, cfg.eps) for g in nonempty]

        def seed_of(pos: int):
            # a None entry (or no seeds list) falls back to config.seed,
            # matching what solve() would use for that instance
            if seeds is not None and seeds[pos] is not None:
                return seeds[pos]
            return cfg.seed

        self.states = [
            self._init_state(i, nonempty[i], levels[i], seed_of(self.index_map[i]))
            for i in range(len(nonempty))
        ]
        self.batch = None  # the *active* sub-batch, rebuilt on membership change
        self.dualb = None
        self.members: list[_InstanceState] = []
        self.layout = None
        self._members_stale = True
        self._layout_stale = True

    # ------------------------------------------------------------------
    def _rebuild_members(self) -> None:
        """Compact the batch to the instances that are still running.

        Finished instances would otherwise keep contributing dead
        segments to every elementwise buffer: a single straggler in a
        batch of 32 would pay the whole batch's array sizes per step.
        Membership changes are rare (one per finished instance), so the
        rebuild -- reassembling the concatenated layout and re-homing the
        per-instance dual planes into a fresh compact buffer -- amortizes
        to noise.  Values are untouched: the plane contents are copied
        verbatim and every view keeps its (n_i, L_i) contiguous layout.
        """
        from repro.core.batch import DualBatch, GraphBatch

        self.members = [st for st in self.states if st.phase != _PHASE_DONE]
        self._members_stale = False
        self._layout_stale = True
        if not self.members:
            self.batch = None
            self.dualb = None
            return
        b = GraphBatch(
            graphs=[st.graph for st in self.members],
            levels=[st.levels for st in self.members],
        )
        self.batch = b
        dualb = DualBatch(b)
        for slot, st in enumerate(self.members):
            st.slot = slot
            view = b.vl_view(dualb.x, slot)
            view[:] = st.dual.x
            dual = dualb.duals[slot]
            dual.z = st.dual.z
            st.dual = dual
            if dual.z:
                dualb.refresh_zload(slot)
        self.dualb = dualb
        # has_ik gather tables over the active members
        counts = np.array([len(st.hik_local) for st in self.members], dtype=np.int64)
        self.hik_off = np.zeros(len(self.members) + 1, dtype=np.int64)
        np.cumsum(counts, out=self.hik_off[1:])
        # self.members is non-empty here (the early return above)
        self.hik_idx = np.concatenate(
            [b.vl_off[st.slot] + st.hik_local for st in self.members]
        )
        self.po3_hik = b.po3_vl[self.hik_idx]
        self.alpha_p_hik = np.repeat(
            np.array([st.alpha_p for st in self.members]), counts
        )
        self.hik_counts = counts
        self.hik_off_list = self.hik_off.tolist()
        self._zeta_scratch = b.zeros_vl()
        self._active_flags = np.zeros(b.size, dtype=np.uint8)

    # ------------------------------------------------------------------
    def _init_state(self, i: int, graph: Graph, levels, seed) -> _InstanceState:
        """Replicates the pre-loop section of :meth:`solve` for instance i."""
        cfg = self.solver.config
        eps = self.eps
        st = _InstanceState()
        st.i = i
        st.slot = -1
        st.graph = graph
        st.levels = levels
        st.rng = make_rng(seed)
        st.ledger = ResourceLedger()

        st.live = levels.live_edges()
        st.gamma_chain = max(np.e, graph.n ** (1.0 / (2.0 * cfg.p)))
        chain_count = cfg.chain_count
        if chain_count is None:
            chain_count = max(2, int(np.ceil(np.log(st.gamma_chain))))
        st.chain_count = chain_count
        st.round_cap = max(2, int(np.ceil(cfg.round_cap_factor * cfg.p / eps)))
        st.use_odd = (
            graph.n >= 3 if cfg.odd_sets == "auto" else bool(cfg.odd_sets)
        )
        st.target_gap = cfg.target_gap if cfg.target_gap is not None else eps

        init = build_initial_solution(
            levels, p=cfg.p, seed=st.rng, ledger=st.ledger, sampled=False
        )
        st.ledger.tick_sampling_round("initial per-level maximal matchings")
        st.dual = init.dual
        st.best = init.merged
        st.beta = max(
            init.beta0,
            DualPrimalMatchingSolver._rescaled_value(levels, st.best),
            1e-12,
        )

        has_ik = DualPrimalMatchingSolver._incidence_mask(levels)
        st.hik_local = np.flatnonzero(has_ik.ravel())
        st.hik_count = int(has_ik.sum())
        delta = eps / 6.0
        st.alpha_p = 2.0 * np.log(max(st.hik_count, 2) / delta) / delta

        st.m_live = max(2, len(st.live))
        st.rounds = 0
        st.lam = 0.0
        st.lam_t = 0.0
        st.alpha = 0.0
        inner_budget = cfg.inner_steps
        if inner_budget is None:
            inner_budget = min(
                cfg.inner_step_cap,
                int(np.ceil(2.0 * np.log(st.m_live / eps) / eps**2)),
            )
        st.inner_budget = inner_budget
        st.history = []
        st.phase = _PHASE_ROUND_START
        st.chain = None
        st.result = None
        return st

    # ------------------------------------------------------------------
    def run(self) -> list[MatchingResult]:
        while True:
            progressed = True
            while progressed:
                progressed = False
                for st in self.states:
                    if st.phase == _PHASE_ROUND_START:
                        self._round_start(st)
                        progressed = True
                    elif st.phase == _PHASE_ROUND_END:
                        self._round_end(st)
                        progressed = True
            active = [st for st in self.states if st.phase == _PHASE_INNER]
            if not active:
                break
            if self._members_stale:
                self._rebuild_members()
            self._inner_tick(active)
        for st in self.states:
            self.results[self.index_map[st.i]] = st.result
        return self.results  # type: ignore[return-value]

    # ------------------------------------------------------------------
    def _round_start(self, st: _InstanceState) -> None:
        cfg = self.solver.config
        eps = self.eps
        if st.rounds >= st.round_cap:
            self._finalize(st)
            return
        st.rounds += 1
        st.lam = st.dual.lambda_min()
        st.lam_t = max(st.lam, eps / 512.0)
        st.alpha = 2.0 * np.log(st.m_live / eps) / (st.lam_t * eps)
        u = DualPrimalMatchingSolver._multipliers(st.levels, st.dual, st.live, st.alpha)
        st.ledger.tick_sampling_round("deferred sparsifier chain")

        promise = np.zeros(st.graph.m)
        promise[st.live] = u
        st.chain = self.solver._build_chain(
            st.graph,
            promise,
            gamma=st.gamma_chain,
            xi=max(eps, 0.2),
            count=st.chain_count,
            rng=st.rng,
            ledger=st.ledger,
        )

        pool = np.union1d(st.chain.union_edge_ids(), st.best.edge_ids)
        candidate = self.solver._offline_match(st.graph, pool)
        if candidate.weight() > st.best.weight():
            st.best = candidate
        beta_prime = DualPrimalMatchingSolver._rescaled_value(st.levels, st.best)
        if beta_prime > st.beta / (1.0 + eps):
            st.beta = beta_prime * (1.0 + eps)

        st.witness_seen = False
        st.routes = {"vertex": 0, "oddset": 0, "zero": 0}
        st.per_sparsifier = max(1, st.inner_budget // max(1, len(st.chain)))
        st.q = -1
        self._layout_stale = True
        if self._advance_sparsifier(st):
            st.phase = _PHASE_INNER
        else:
            st.phase = _PHASE_ROUND_END

    def _advance_sparsifier(self, st: _InstanceState) -> bool:
        """Move to the next sparsifier with live stored edges, if any."""
        self._layout_stale = True
        while st.q + 1 < len(st.chain):
            st.q += 1
            sp = st.chain[st.q]
            stored = sp.stored_edge_ids
            probs = sp.stored_probs
            stored_live = st.levels.level[stored] >= 0
            stored = stored[stored_live]
            probs = probs[stored_live]
            if len(stored) == 0:
                continue
            st.stored = stored
            st.probs = probs
            st.step_in_q = 0
            return True
        return False

    def _round_end(self, st: _InstanceState) -> None:
        eps = self.eps
        st.lam = st.dual.lambda_min()
        cert = certify(st.dual)
        st.history.append(
            {
                "round": st.rounds,
                "primal": st.best.weight(),
                "beta_rescaled": st.beta,
                "lambda": st.lam,
                "upper_bound": cert.upper_bound,
                "witness": st.witness_seen,
                **st.routes,
            }
        )
        ratio = cert.certified_ratio(st.best.weight())
        # guarded: field evaluation costs nothing when no trace is active
        if obs.current_span() is not None:
            obs.span_event(
                "solver.round",
                slot=st.slot,
                round=st.rounds,
                gap=max(0.0, 1.0 - ratio),
                lam=st.lam,
                primal=st.best.weight(),
                oracle_calls=st.ledger.oracle_calls,
                witness=st.witness_seen,
            )
        if ratio >= 1.0 - st.target_gap:
            self._finalize(st)
            return
        if st.lam >= 1.0 - 3.0 * eps:
            self._finalize(st)
            return
        st.phase = _PHASE_ROUND_START

    def _finalize(self, st: _InstanceState) -> None:
        cert = certify(st.dual)
        st.result = MatchingResult(
            matching=st.best,
            certificate=cert,
            rounds=st.rounds,
            lambda_min=st.lam,
            beta_final=st.beta,
            history=st.history,
            resources=st.ledger.snapshot(),
        )
        st.phase = _PHASE_DONE
        self._members_stale = True

    # ------------------------------------------------------------------
    def _inner_tick(self, active: list[_InstanceState]) -> None:
        """One lockstep inner step for every active instance.

        Mirrors one iteration of the reference ``for _ in
        range(per_sparsifier)`` loop for each instance, with the array
        math batched (see :mod:`repro.core.batch` for the parity rules).
        """
        from repro.core.batch import StoredBatchLayout, z_cover_add
        from repro.core.micro_oracle import BatchMicroContext

        cfg = self.solver.config
        eps = self.eps
        b = self.batch
        B = b.size

        # hot loop: one contextvar read when untraced, one bounded
        # event (ring-capped per span) when a trace is active
        _sp = obs.current_span()
        if _sp is not None:
            _sp.event("solver.tick", active=len(active), batch=B)

        if self._layout_stale or self.layout is None:
            self.layout = StoredBatchLayout.build(
                b, {st.slot: (st.stored, st.probs) for st in active}
            )
            self._layout_stale = False
        lay = self.layout
        st_counts = lay.counts
        soff = lay.off_list
        hoff = self.hik_off_list

        # ---- Corollary 6 multipliers over the stored edges ----
        # The elementwise chains run in the dispatched kernels; ``exp``
        # itself stays a shared numpy call between the pre/post halves so
        # both backends produce the same bits (libm exp differs).
        alphas = np.zeros(B)
        act = self._active_flags
        act.fill(0)
        for st in active:
            alphas[st.slot] = st.alpha
            act[st.slot] = 1
            st.ledger.tick_refinement()
        x = self.dualb.x
        cov = _k_gather_add2(x, lay.src_vl, lay.dst_vl)
        self._any_z = False
        for st in active:
            if st.dual.z:
                self._any_z = True
                sl = slice(soff[st.slot], soff[st.slot + 1])
                cov[sl] = z_cover_add(
                    st.graph, st.levels, lay.ids[st.slot], st.dual.z, cov[sl]
                )
        shifted = _k_tick_stored_shift(cov, lay.wk, lay.off, soff, st_counts, alphas)
        support_vals, usc_arr = _k_tick_stored_post(
            np.exp(-shifted), lay.wk, lay.probs, lay.off, soff
        )

        # ---- packing multipliers zeta over the Po box ----
        # gather-first: the Po ratios are only ever read at the has_ik
        # cells, so evaluate 2 x + zload there instead of over the plane
        arg = _k_tick_pack_arg(
            x,
            self.dualb.zload if self._any_z else None,
            self.hik_idx,
            self.po3_hik,
            self.alpha_p_hik,
            self.hik_off,
            hoff,
            self.hik_counts,
            act,
        )
        zeta = self._zeta_scratch
        zmul, qo_arr = _k_tick_pack_post(
            np.exp(arg), self.po3_hik, self.hik_idx, self.hik_off, hoff, zeta
        )

        searchers: list[_InstanceState] = []
        for st in active:
            s = st.slot
            st.inner_outcome = None
            st.lag = None
            usc = float(usc_arr[s])
            qo = float(qo_arr[s])
            if usc <= 0 or qo <= 0:
                st.inner_outcome = OracleDualStep(
                    dual=LayeredDual(st.levels), route="zero", gamma=0.0
                )
            else:
                st.lag = _LagState(usc, qo, eps)
                searchers.append(st)

        # ---- Lemma 10 searches in lockstep, batched Algorithm 5 ----
        if searchers:
            ctx = BatchMicroContext(
                b,
                [st.slot for st in searchers],
                lay,
                support_vals,
                zeta,
                zmul,
                self.hik_idx,
                self.hik_off,
                beta={st.slot: st.beta for st in searchers},
                use_odd={st.slot: st.use_odd for st in searchers},
                eps=eps,
                hik_counts=self.hik_counts,
            )
            pending = {st.slot: st for st in searchers}
            while pending:
                sub = list(pending)
                rho = {s: pending[s].lag.pending_rho for s in sub}
                for s in sub:
                    pending[s].ledger.tick_oracle()
                results, po = ctx.evaluate(sub, rho)
                nxt: dict[int, _InstanceState] = {}
                for s in sub:
                    st = pending[s]
                    out = results[s]
                    if isinstance(out, OracleWitness):
                        st.inner_outcome = out
                        continue
                    st.lag.advance(out, po[s])
                    if st.lag.outcome is not None:
                        st.inner_outcome = st.lag.outcome
                    else:
                        nxt[s] = st
                pending = nxt

        # ---- apply the outcomes ----
        blended: list[tuple[_InstanceState, OracleDualStep]] = []
        for st in active:
            out = st.inner_outcome
            if isinstance(out, OracleWitness):
                st.witness_seen = True
                harvested, _report = extract_witness_matching(
                    st.levels,
                    out,
                    st.beta,
                    eps=eps,
                    offline=cfg.offline,
                    strict=False,
                )
                if harvested.weight() > st.best.weight():
                    st.best = harvested
                st.phase = _PHASE_ROUND_END
                self._layout_stale = True
                continue
            st.routes[out.route] += 1
            if out.route == "zero":
                if not self._advance_sparsifier(st):
                    st.phase = _PHASE_ROUND_END
                continue
            blended.append((st, out))
        if not blended:
            return

        # ---- effective width, covering blend, lambda (batched) ----
        other = b.zeros_vl()
        for st, step in blended:
            b.vl_view(other, st.slot)[:] = step.dual.x
        part_idx = [st.slot for st, _ in blended]
        step_z = {st.slot: step.dual.z for st, step in blended}
        cov_s = self.dualb.cover_live(
            part_idx, x_buf=other, z_of=lambda s: step_z.get(s, {})
        )
        rho_max = _k_seg_ratio_max(cov_s, b.live_wk, b.live_off, part_idx)

        sigmas = np.zeros(B)
        for (st, step), rmx in zip(blended, rho_max):
            rho_step = max(PENALTY_WIDTH_BOUND, float(rmx))
            sigmas[st.slot] = min(
                0.5, cfg.step_scale * eps / (4.0 * st.alpha * rho_step)
            )
        _k_blend(x, other, sigmas, b.vl_off, b.vl_count)
        for st, step in blended:
            if st.dual.z or step.dual.z:
                self._blend_z(st, step.dual.z, float(sigmas[st.slot]))

        lams = self.dualb.lambda_min(part_idx)
        for (st, step), lam in zip(blended, lams):
            st.lam = float(lam)
            if st.lam >= 2.0 * st.lam_t and st.lam < 1.0 - 3.0 * eps:
                # phase boundary (Theorem 5): refresh alpha
                st.lam_t = max(st.lam, eps / 512.0)
                st.alpha = 2.0 * np.log(st.m_live / eps) / (st.lam_t * eps)
            if st.lam >= 1.0 - 3.0 * eps:
                st.phase = _PHASE_ROUND_END
                self._layout_stale = True
                continue
            st.step_in_q += 1
            if st.step_in_q >= st.per_sparsifier:
                if not self._advance_sparsifier(st):
                    st.phase = _PHASE_ROUND_END

    def _blend_z(self, st: _InstanceState, other_z: dict, sigma: float) -> None:
        """The z-half of ``LayeredDual.blend`` (x was blended batched)."""
        st.dual.z = blend_z_dicts(st.dual.z, other_z, sigma)
        self.dualb.refresh_zload(st.slot)
