"""Lagrangian binary search gluing MicroOracle to Oracle-P (Lemma 10).

The packing framework (Theorem 7) wants an Oracle-P solving **Inner**:

    z^T Po x <= (13/12) z^T qo   and   the covering condition Q(us, beta).

The MicroOracle only solves the *Lagrangian relaxation* **LagInner** for
a given multiplier ``rho > 0``:

    (us)^T A x - rho zeta^T Po x >= (1 - eps/16)[(us)^T c - rho zeta^T qo].

Lemma 10's reduction: if the solution at the invoked ``rho`` already
satisfies the Po budget we are done; ``x = 0`` is feasible for large
``rho``; otherwise binary-search ``rho`` down to an interval
``[rho1, rho2]`` of width ``<= rho0 * eps/16`` whose endpoints straddle
the budget, and return the convex combination ``s1 x̃1 + s2 x̃2`` that
meets the budget with equality -- the lemma's algebra shows it also
satisfies Inner's covering requirement.

The implementation is generic over the solution type ``X`` (the matching
solver passes :class:`~repro.core.relaxations.LayeredDual` objects);
callers supply ``po_of`` (evaluate ``z^T Po x``) and ``combine``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Generic, TypeVar

from repro.util.validation import check_epsilon, require

__all__ = ["LagrangianSearch", "LagrangianOutcome"]

X = TypeVar("X")


@dataclass
class LagrangianOutcome(Generic[X]):
    """Result of the Lemma 10 search.

    ``x`` satisfies Inner (budget + covering); ``invocations`` counts
    MicroOracle calls (the tau_i ledger); ``combined`` tells whether the
    two-point convex combination was needed.
    """

    x: X
    invocations: int
    combined: bool
    rho_interval: tuple[float, float]


class LagrangianSearch(Generic[X]):
    """Binary search over the Lagrange multiplier ``rho``.

    Parameters
    ----------
    micro_oracle:
        ``micro_oracle(rho) -> X`` solving LagInner at multiplier ``rho``
        (never fails: zeroing all variables is always admissible).
    po_of:
        Evaluate the packing load ``z^T Po x`` of a solution.
    combine:
        ``combine(x1, x2, s1, s2) -> X`` forming ``s1 x1 + s2 x2``.
    qo_budget:
        The packing budget ``z^T qo``.
    usc:
        The covering mass ``(us)^T c`` (used for ``rho0``).
    """

    def __init__(
        self,
        micro_oracle: Callable[[float], X],
        po_of: Callable[[X], float],
        combine: Callable[[X, X, float, float], X],
        qo_budget: float,
        usc: float,
        eps: float,
    ):
        self.micro_oracle = micro_oracle
        self.po_of = po_of
        self.combine = combine
        self.qo_budget = float(qo_budget)
        self.usc = float(usc)
        self.eps = check_epsilon(eps)
        require(self.qo_budget > 0, "packing budget must be positive")

    def run(self, max_invocations: int = 80) -> LagrangianOutcome[X]:
        eps = self.eps
        cap = (13.0 / 12.0) * self.qo_budget  # Upsilon
        rho0 = 12.0 * self.usc / (13.0 * self.qo_budget)
        invocations = 0

        # initial multiplier: rho = (us)^T c / (16 zeta^T qo) per Lemma 10
        rho_lo = self.usc / (16.0 * self.qo_budget)
        x_lo = self.micro_oracle(rho_lo)
        invocations += 1
        if self.po_of(x_lo) <= cap:
            return LagrangianOutcome(
                x=x_lo, invocations=invocations, combined=False, rho_interval=(rho_lo, rho_lo)
            )

        # x = 0 (any solution at rho >= rho0) satisfies the budget
        rho_hi = max(rho0, rho_lo * 2.0)
        x_hi = self.micro_oracle(rho_hi)
        invocations += 1
        while self.po_of(x_hi) > cap and invocations < max_invocations:
            rho_hi *= 2.0
            x_hi = self.micro_oracle(rho_hi)
            invocations += 1
        if self.po_of(x_hi) > cap:
            # degenerate; return the budget-respecting zero-equivalent
            return LagrangianOutcome(
                x=x_hi, invocations=invocations, combined=False, rho_interval=(rho_hi, rho_hi)
            )

        # narrow [rho_lo, rho_hi] until the interval is eps/16 * rho0 wide
        tol = rho0 * eps / 16.0
        while rho_hi - rho_lo > tol and invocations < max_invocations:
            mid = 0.5 * (rho_lo + rho_hi)
            x_mid = self.micro_oracle(mid)
            invocations += 1
            if self.po_of(x_mid) > cap:
                rho_lo, x_lo = mid, x_mid
            else:
                rho_hi, x_hi = mid, x_mid

        up1 = self.po_of(x_lo)  # > cap
        up2 = self.po_of(x_hi)  # <= cap
        denom = up1 - up2
        if denom <= 1e-15:
            s1 = 0.0
        else:
            s1 = (cap - up2) / denom
        s1 = min(max(s1, 0.0), 1.0)
        s2 = 1.0 - s1
        x = self.combine(x_lo, x_hi, s1, s2)
        return LagrangianOutcome(
            x=x, invocations=invocations, combined=True, rho_interval=(rho_lo, rho_hi)
        )
