"""The paper's contribution: dual-primal framework and the matching solver."""

from repro.core.certificates import Certificate, MatchingResult, certify
from repro.core.covering import (
    CoveringResult,
    covering_multipliers,
    solve_fractional_covering,
)
from repro.core.diagnostics import OddSetInventory, active_odd_sets, odd_set_budget
from repro.core.framework import AmenabilityReport, DualPrimalSystem, theorem1_driver
from repro.core.initial import InitialSolution, build_initial_solution
from repro.core.lagrangian import LagrangianOutcome, LagrangianSearch
from repro.core.laminar import (
    is_laminar,
    layered_from_flat,
    optimal_flat_dual,
    uncross_to_laminar,
)
from repro.core.levels import LevelDecomposition, discretize
from repro.core.lp_library import (
    LPSolution,
    solve_lp1,
    solve_lp2,
    solve_lp3,
    solve_lp4,
)
from repro.core.matching_solver import (
    DualPrimalMatchingSolver,
    SolverConfig,
    solve_many,
    solve_matching,
)
from repro.core.micro_oracle import (
    OracleDualStep,
    OracleWitness,
    SupportVector,
    micro_oracle,
)
from repro.core.odd_sets import OddSetFamily, find_dense_odd_sets, odd_cut_value
from repro.core.packing import (
    PackingResult,
    packing_multipliers,
    solve_fractional_packing,
)
from repro.core.witness import (
    WitnessReport,
    extract_witness_matching,
    lp7_feasibility_report,
)
from repro.core.relaxations import (
    PENALTY_WIDTH_BOUND,
    LayeredDual,
    covering_width_lp2,
    covering_width_lp4,
)

__all__ = [
    "LevelDecomposition",
    "discretize",
    "LayeredDual",
    "PENALTY_WIDTH_BOUND",
    "covering_width_lp2",
    "covering_width_lp4",
    "CoveringResult",
    "covering_multipliers",
    "solve_fractional_covering",
    "PackingResult",
    "packing_multipliers",
    "solve_fractional_packing",
    "LagrangianSearch",
    "LagrangianOutcome",
    "OddSetFamily",
    "find_dense_odd_sets",
    "odd_cut_value",
    "InitialSolution",
    "build_initial_solution",
    "OracleDualStep",
    "OracleWitness",
    "SupportVector",
    "micro_oracle",
    "Certificate",
    "MatchingResult",
    "certify",
    "DualPrimalSystem",
    "AmenabilityReport",
    "theorem1_driver",
    "DualPrimalMatchingSolver",
    "SolverConfig",
    "solve_matching",
    "solve_many",
    "is_laminar",
    "uncross_to_laminar",
    "layered_from_flat",
    "optimal_flat_dual",
    "WitnessReport",
    "extract_witness_matching",
    "lp7_feasibility_report",
    "LPSolution",
    "solve_lp1",
    "solve_lp2",
    "solve_lp3",
    "solve_lp4",
    "OddSetInventory",
    "active_odd_sets",
    "odd_set_budget",
]
