"""Lemma 13: turn an LP7 witness into an integral matching on the support.

Part (i) of the MicroOracle hands back a feasible point of LP7 living on
the sampled support ``E'``.  Lemma 13 says that such a point certifies
``β̃(E') >= (1-ε)β`` and hence (through Theorem 23's layered-relaxation
equivalence) the *integral* maximum b-matching restricted to ``E'`` has
weight at least ``(1-2ε)β`` -- so running any offline (1-ε')-approximate
matching on the support recovers it.

:func:`extract_witness_matching` performs exactly that materialization
and *checks the promised bound numerically*, returning both the matching
and a :class:`WitnessReport` stating whether the Lemma 13 inequality was
met (it must be, up to the offline oracle's own slack -- a failed check
indicates a bug upstream, not bad luck, and raises by default).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.levels import LevelDecomposition
from repro.core.micro_oracle import OracleWitness
from repro.matching.augmenting import local_search_matching
from repro.matching.exact import max_weight_bmatching_exact
from repro.matching.structures import BMatching
from repro.util.graph import Graph

__all__ = ["WitnessReport", "extract_witness_matching", "lp7_feasibility_report"]


@dataclass
class WitnessReport:
    """Outcome of a Lemma 13 extraction.

    ``promised`` is the rescaled weight Lemma 13 guarantees on the
    support -- ``(1 - 2 eps) * beta``; ``achieved`` is the rescaled
    weight of the extracted integral matching.
    """

    promised: float
    achieved: float
    support_edges: int
    lp7_value: float

    @property
    def met(self) -> bool:
        return self.achieved >= self.promised - 1e-9


def _rescaled_weight(levels: LevelDecomposition, matching: BMatching) -> float:
    lv = levels.level[matching.edge_ids]
    live = lv >= 0
    return float(
        (levels.level_weight(lv[live]) * matching.multiplicity[live]).sum()
    )


def extract_witness_matching(
    levels: LevelDecomposition,
    witness: OracleWitness,
    beta: float,
    eps: float | None = None,
    offline: str = "exact",
    strict: bool = True,
) -> tuple[BMatching, WitnessReport]:
    """Materialize the integral matching Lemma 13 promises.

    Parameters
    ----------
    witness:
        The LP7 point (edge values keyed by graph edge id).
    beta:
        The dual budget the witness was produced against (rescaled
        units).
    offline:
        "exact" (blossom / vertex splitting) or "local" (greedy+2opt) on
        the support subgraph.
    strict:
        Raise when the extracted weight misses the promise (the lemma is
        a theorem -- a miss means an implementation bug).  With
        ``strict=False`` callers can record the report instead.
    """
    g = levels.graph
    eps = levels.eps if eps is None else eps
    support_ids = np.asarray(sorted(witness.y), dtype=np.int64)
    support_ids = support_ids[levels.level[support_ids] >= 0]
    sub = g.edge_subgraph(support_ids)
    # run the offline oracle on nominal (rescaled) weights so the bound
    # is measured in the same units as beta
    sub_nominal = sub.copy()
    sub_nominal.weight = np.asarray(
        levels.level_weight(levels.level[support_ids]), dtype=np.float64
    )
    if offline == "exact":
        sub_match = max_weight_bmatching_exact(sub_nominal)
    else:
        sub_match = local_search_matching(sub_nominal)
    matching = BMatching(
        g, support_ids[sub_match.edge_ids], sub_match.multiplicity
    )
    report = WitnessReport(
        promised=(1.0 - 2.0 * eps) * beta,
        achieved=_rescaled_weight(levels, matching),
        support_edges=len(support_ids),
        lp7_value=witness.lp7_value,
    )
    if strict and not report.met:
        raise AssertionError(
            f"Lemma 13 violated: extracted {report.achieved:.6g} < "
            f"promised {report.promised:.6g} on {report.support_edges} edges"
        )
    return matching, report


def lp7_feasibility_report(
    levels: LevelDecomposition,
    witness: OracleWitness,
    tol: float = 1e-7,
) -> dict:
    """Numerically audit the witness against LP7's constraint families.

    Checks the per-(vertex, level) constraint
    ``sum_{j:(i,j) in E'_k} (y_ij - 2 mu_ik) <= y_i(k)`` with
    ``sum_k y_i(k) <= b_i`` -- folded together as in the Lemma 14 proof:
    for every vertex and every *set* of levels, the net demand is at
    most ``b_i``.  (Checking all 2^L subsets is equivalent to checking
    the positive parts, which is what we do.)  Odd-set families are
    checked by the oracle itself before emitting a witness; this report
    covers the vertex side that the extraction relies on.
    """
    g = levels.graph
    n, L = g.n, levels.num_levels
    net = np.zeros((n, L))
    for e, yv in witness.y.items():
        k = int(levels.level[e])
        if k < 0:
            continue
        net[g.src[e], k] += yv
        net[g.dst[e], k] += yv
    net -= 2.0 * witness.mu
    demand = np.maximum(net, 0.0).sum(axis=1)
    slack = g.b.astype(np.float64) - demand
    worst = float(slack.min()) if n else 0.0
    return {
        "vertex_feasible": bool(worst >= -tol),
        "worst_vertex_slack": worst,
        "total_y": float(sum(witness.y.values())),
        "total_mu": float(witness.mu.sum()),
    }
