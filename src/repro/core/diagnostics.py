"""Dual-state diagnostics: sparsity of the odd-set support (Section 1).

*"The number of such odd sets with z_U > 0 is at most
O(eps^-5 (log B)(log^2 n) log^2 (1/eps)).  This is useful to show that
the full O(n^{1+1/p}) space is not needed to define the value of the
multiplier for an edge, specially in distributed settings."*

:func:`active_odd_sets` inventories the current dual's z support;
:func:`odd_set_budget` is the paper's bound with an explicit constant;
the matching bench asserts the measured count sits far inside it.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.core.relaxations import LayeredDual

__all__ = ["OddSetInventory", "active_odd_sets", "odd_set_budget"]


@dataclass
class OddSetInventory:
    """Counts describing the z support of a layered dual."""

    active_pairs: int  # (U, level) pairs with z > 0
    distinct_sets: int  # distinct U
    max_set_size: int
    total_mass: float

    def words(self) -> int:
        """Words to ship the z support: members + one value per pair."""
        return self.active_pairs + self.distinct_sets * max(1, self.max_set_size)


def active_odd_sets(dual: LayeredDual, tol: float = 1e-12) -> OddSetInventory:
    """Inventory the nonzero z entries of a dual state."""
    seen: set[tuple[int, ...]] = set()
    pairs = 0
    max_size = 0
    mass = 0.0
    for (U, _ell), v in dual.z.items():
        if v <= tol:
            continue
        pairs += 1
        seen.add(U)
        max_size = max(max_size, len(U))
        mass += float(v)
    return OddSetInventory(
        active_pairs=pairs,
        distinct_sets=len(seen),
        max_set_size=max_size,
        total_mass=mass,
    )


def odd_set_budget(
    n: int, big_b: int, eps: float, constant: float = 1.0
) -> float:
    """The paper's O(eps^-5 (log B)(log^2 n) log^2(1/eps)) bound."""
    if not (0 < eps < 1):
        raise ValueError("eps must be in (0, 1)")
    log_b = max(1.0, math.log2(max(2, big_b)))
    log_n = max(1.0, math.log2(max(2, n)))
    log_e = max(1.0, math.log2(1.0 / eps))
    return constant * eps**-5 * log_b * log_n**2 * log_e**2
