"""Initial dual solution from per-level maximal b-matchings (Section 5).

Lemma 12 / Lemma 21: compute a maximal b-matching ``M_k`` for every
weight level ``Ê_k``; give every vertex that ``M_k`` *saturates* the dual
value ``x_i(k) = r ŵ_k`` with ``r = eps/256``.  Maximality means every
level-``k`` edge has a saturated endpoint, so every edge constraint is
covered to at least ``r ŵ_k = (1 - eps0) ŵ_k`` -- a valid starting point
for the covering framework with ``eps0 = 1 - eps/256``.

The accounting of Lemma 21 (groups of Definition 6, the blocking
argument of Claims 1-2) guarantees ``beta^b / a <= b^T x0 <= beta^b / 4``
with ``a = 2048 eps^-2`` -- i.e. the initial dual objective is within a
*fixed poly(1/eps) factor* of optimal, so ``O(eps^-1 log a)`` doubling
steps of ``beta`` suffice for the whole run (Theorem 3).

The per-level matchings are computed with the sampled O(p)-round
procedure of Lemma 20 (or a plain offline scan when resource accounting
is not needed), and their *merge* across groups (Definition 7) yields
the primal warm start ``M`` with ``weight(M) >= sum_t weight(M_Gt)/8``
(Claim 1).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.levels import LevelDecomposition
from repro.core.relaxations import LayeredDual
from repro.matching.maximal import maximal_bmatching, maximal_bmatching_sampled
from repro.matching.structures import BMatching
from repro.util.instrumentation import ResourceLedger
from repro.util.rng import make_rng, spawn

__all__ = ["InitialSolution", "build_initial_solution"]


@dataclass
class InitialSolution:
    """Initial dual + primal warm start.

    Attributes
    ----------
    dual:
        The layered dual ``x0`` (``z = 0``) in rescaled units.
    beta0:
        Rescaled dual objective ``b^T x0``.
    per_level:
        The maximal b-matchings ``{M_k}`` keyed by level.
    merged:
        The overall maximal b-matching ``M`` (primal warm start).
    r:
        The per-saturated-vertex rate actually used (``eps/256``).
    """

    dual: LayeredDual
    beta0: float
    per_level: dict[int, BMatching]
    merged: BMatching
    r: float


def build_initial_solution(
    levels: LevelDecomposition,
    p: float = 2.0,
    seed: int | np.random.Generator | None = None,
    ledger: ResourceLedger | None = None,
    sampled: bool = False,
) -> InitialSolution:
    """Construct the Lemma 12 initial solution.

    Parameters
    ----------
    sampled:
        Use the Lemma 20 O(p)-round sampling procedure per level (charges
        rounds/space to the ledger).  The offline scan gives the same
        object without the model accounting.
    """
    g = levels.graph
    eps = levels.eps
    rng = make_rng(seed)
    r = eps / 256.0

    dual = LayeredDual(levels)
    level_list = levels.nonempty_levels()
    children = spawn(rng, max(1, len(level_list)))

    if not sampled and getattr(g, "is_materialized", True) is False:
        # file-backed and not in RAM: the per-level greedy scans are
        # replayed from one chunked pass (same edge order per level,
        # so the matchings are bit-identical) instead of gathering a
        # per-level subgraph -- no O(m) id or column array is resident
        per_level = _per_level_matchings_chunked(levels)
    else:
        per_level = {}
        for idx, k in enumerate(level_list):
            ids = levels.edges_at(int(k))
            sub = g.edge_subgraph(ids)
            if sampled:
                mk_sub = maximal_bmatching_sampled(
                    sub, p=p, seed=children[idx], ledger=ledger
                )
            else:
                mk_sub = maximal_bmatching(sub)
            # translate back to parent edge ids
            per_level[int(k)] = BMatching(
                g, ids[mk_sub.edge_ids], mk_sub.multiplicity
            )

    for k, mk in per_level.items():
        saturated = np.flatnonzero(mk.vertex_loads() == g.b)
        if len(saturated):
            dual.x[saturated, int(k)] = r * levels.level_weight(int(k))

    beta0 = float((g.b * dual.vertex_costs()).sum())
    merged = _merge_by_groups(levels, per_level)
    return InitialSolution(
        dual=dual, beta0=beta0, per_level=per_level, merged=merged, r=r
    )


def _per_level_matchings_chunked(
    levels: LevelDecomposition,
) -> dict[int, BMatching]:
    """Per-level maximal b-matchings from one chunked pass over the edges.

    Replays exactly the greedy scan :func:`maximal_bmatching` performs on
    ``edge_subgraph(edges_at(k))``: for each level the edges arrive in
    ascending id order and each independent residual starts at ``b``, so
    the taken ids and multiplicities are bit-identical.  Resident state
    is one endpoint chunk plus an O(n) residual per nonempty level --
    never a level-wide id array or gathered column.
    """
    g = levels.graph
    chunk = int(getattr(g, "chunk_edges", 65536))
    lvl = levels.level
    level_list = [int(k) for k in levels.nonempty_levels()]
    residual = {k: g.b.copy() for k in level_list}
    taken: dict[int, tuple[list[int], list[int]]] = {
        k: ([], []) for k in level_list
    }
    for start in range(0, g.m, chunk):
        stop = min(start + chunk, g.m)
        lv_c = lvl[start:stop]
        src_c = np.asarray(g.src[start:stop])
        dst_c = np.asarray(g.dst[start:stop])
        for k in level_list:
            sel = np.flatnonzero(lv_c == k)
            if len(sel) == 0:
                continue
            res = residual[k]
            ids_k, mult_k = taken[k]
            for t in sel.tolist():
                i, j = src_c[t], dst_c[t]
                take = min(res[i], res[j])
                if take > 0:
                    ids_k.append(start + t)
                    mult_k.append(int(take))
                    res[i] -= take
                    res[j] -= take
    return {
        k: BMatching(
            g,
            np.asarray(taken[k][0], dtype=np.int64),
            np.asarray(taken[k][1], dtype=np.int64),
        )
        for k in level_list
    }


def _merge_by_groups(
    levels: LevelDecomposition, per_level: dict[int, BMatching]
) -> BMatching:
    """Definitions 6-7: merge per-level matchings, heaviest group first.

    Edges are added while residual capacity remains; the blocking
    argument (Claim 1) bounds the weight lost to earlier groups.
    """
    g = levels.graph
    residual = g.b.copy()
    taken: dict[int, int] = {}
    # iterate levels in descending order (groups are consecutive level
    # blocks, so descending levels == ascending group index)
    for k in sorted(per_level, reverse=True):
        mk = per_level[k]
        for e, mult in zip(mk.edge_ids, mk.multiplicity):
            i, j = g.src[e], g.dst[e]
            take = min(int(mult), int(residual[i]), int(residual[j]))
            if take > 0:
                taken[int(e)] = taken.get(int(e), 0) + take
                residual[i] -= take
                residual[j] -= take
    if not taken:
        return BMatching.empty(g)
    ids = np.asarray(sorted(taken), dtype=np.int64)
    mult = np.asarray([taken[int(e)] for e in ids], dtype=np.int64)
    return BMatching(g, ids, mult)
