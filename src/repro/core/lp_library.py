"""The paper's LP zoo as explicit, solvable objects (LP1 -- LP4).

Section 1 derives the penalty ("charged flexibility") formulations by a
chain of LP identities; this module materializes each named LP for
small graphs so the identities are *checkable equalities*, not prose:

* :func:`solve_lp1` -- the exact matching relaxation (primal).
* :func:`solve_lp2` -- its dual (vertex prices + odd-set penalties).
* :func:`solve_lp3` -- the penalty primal for unit weights: each vertex
  may be fractionally matched to ``b_i + 2 mu_i`` edges, the objective
  pays ``3 mu_i`` for the flexibility.
* :func:`solve_lp4` -- the penalty dual, whose box constraint
  ``2 x_i + sum_{U ∋ i} z_U <= 3`` caps the width at the absolute
  constant 6.

The testable identities (all verified in tests/E6):

* strong duality: LP1 = LP2 (with all odd sets enumerated);
* the penalty charge is free: LP3 = LP1 for unit weights (the paper's
  total-dual-integrality argument);
* LP4 = LP3 (duality) and the LP4 width is <= 6 on every instance.

Everything here is exponential in the odd-set enumeration and meant for
verification-scale graphs only; the solver never touches this module.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.matching.exact import enumerate_odd_sets
from repro.util.graph import Graph

__all__ = [
    "LPSolution",
    "solve_lp1",
    "solve_lp2",
    "solve_lp3",
    "solve_lp4",
]


@dataclass
class LPSolution:
    """Optimal value plus named variable blocks of one LP solve."""

    value: float
    variables: dict[str, np.ndarray]


def _linprog(c, A_ub, b_ub, bounds):
    from scipy.optimize import linprog

    res = linprog(c=c, A_ub=A_ub, b_ub=b_ub, bounds=bounds, method="highs")
    if not res.success:
        raise RuntimeError(f"LP solve failed: {res.message}")
    return res


def _odd_set_rows(graph: Graph, odd_sets, m):
    """Constraint rows ``sum_{(i,j) in U} y_ij`` per odd set."""
    rows = np.zeros((len(odd_sets), m))
    caps = np.zeros(len(odd_sets))
    for r, U in enumerate(odd_sets):
        members = np.zeros(graph.n, dtype=bool)
        members[list(U)] = True
        rows[r, members[graph.src] & members[graph.dst]] = 1.0
        caps[r] = float(int(graph.b[list(U)].sum()) // 2)
    return rows, caps


def solve_lp1(graph: Graph, odd_set_cap: int | None = None) -> LPSolution:
    """LP1: max sum w y s.t. vertex capacities and odd-set constraints."""
    m, n = graph.m, graph.n
    if m == 0:
        return LPSolution(0.0, {"y": np.empty(0)})
    inc = np.zeros((n, m))
    inc[graph.src, np.arange(m)] += 1.0
    inc[graph.dst, np.arange(m)] += 1.0
    odd_sets = enumerate_odd_sets(graph.b, max_size_b=odd_set_cap)
    os_rows, os_caps = _odd_set_rows(graph, odd_sets, m)
    A = np.vstack([inc, os_rows]) if len(odd_sets) else inc
    b = np.concatenate([graph.b.astype(float), os_caps])
    res = _linprog(-graph.weight, A, b, [(0, None)] * m)
    return LPSolution(float(-res.fun), {"y": np.asarray(res.x)})


def solve_lp2(graph: Graph, odd_set_cap: int | None = None) -> LPSolution:
    """LP2: min b x + sum floor(.) z s.t. per-edge coverage >= w.

    Variables: ``x`` (n vertex prices) then ``z`` (one per odd set).
    """
    m, n = graph.m, graph.n
    odd_sets = enumerate_odd_sets(graph.b, max_size_b=odd_set_cap)
    k = len(odd_sets)
    if m == 0:
        return LPSolution(0.0, {"x": np.zeros(n), "z": np.zeros(k)})
    # coverage rows: -(x_i + x_j + sum_{U ∋ i,j} z_U) <= -w_ij
    A = np.zeros((m, n + k))
    for e in range(m):
        A[e, graph.src[e]] -= 1.0
        A[e, graph.dst[e]] -= 1.0
    for t, U in enumerate(odd_sets):
        members = np.zeros(n, dtype=bool)
        members[list(U)] = True
        inside = members[graph.src] & members[graph.dst]
        A[inside, n + t] -= 1.0
    b_ub = -graph.weight
    cost = np.concatenate(
        [
            graph.b.astype(float),
            [float(int(graph.b[list(U)].sum()) // 2) for U in odd_sets],
        ]
    )
    res = _linprog(cost, A, b_ub, [(0, None)] * (n + k))
    return LPSolution(
        float(res.fun), {"x": np.asarray(res.x[:n]), "z": np.asarray(res.x[n:])}
    )


def solve_lp3(graph: Graph, odd_set_cap: int | None = None) -> LPSolution:
    """LP3 (unit weights): max sum y - 3 sum mu with penalty slack.

    Constraints: ``sum_j y_ij - 2 mu_i <= b_i`` per vertex and
    ``y(U) - mu(U) <= floor(||U||_b/2)`` per odd set; ``y, mu >= 0``.
    Raises unless all weights are 1 (the paper states LP3 for w = 1).
    """
    if graph.m and not np.allclose(graph.weight, 1.0):
        raise ValueError("LP3 is the unit-weight penalty formulation")
    m, n = graph.m, graph.n
    if m == 0:
        return LPSolution(0.0, {"y": np.empty(0), "mu": np.zeros(n)})
    odd_sets = enumerate_odd_sets(graph.b, max_size_b=odd_set_cap)
    k = len(odd_sets)
    nv = m + n  # y block then mu block
    rows = []
    rhs = []
    inc = np.zeros((n, nv))
    inc[graph.src, np.arange(m)] += 1.0
    inc[graph.dst, np.arange(m)] += 1.0
    inc[np.arange(n), m + np.arange(n)] = -2.0
    rows.append(inc)
    rhs.extend(graph.b.astype(float).tolist())
    for U in odd_sets:
        members = np.zeros(n, dtype=bool)
        members[list(U)] = True
        row = np.zeros(nv)
        row[: m][members[graph.src] & members[graph.dst]] = 1.0
        row[m + np.asarray(list(U))] = -1.0
        rows.append(row[None, :])
        rhs.append(float(int(graph.b[list(U)].sum()) // 2))
    A = np.vstack(rows)
    cost = np.concatenate([-np.ones(m), 3.0 * np.ones(n)])
    res = _linprog(cost, A, np.asarray(rhs), [(0, None)] * nv)
    return LPSolution(
        float(-res.fun),
        {"y": np.asarray(res.x[:m]), "mu": np.asarray(res.x[m:])},
    )


def solve_lp4(graph: Graph, odd_set_cap: int | None = None) -> LPSolution:
    """LP4 (unit weights): the penalty dual with the width-6 box.

    min b x + sum floor(.) z s.t. coverage >= 1 per edge and
    ``2 x_i + sum_{U ∋ i} z_U <= 3`` per vertex.
    """
    if graph.m and not np.allclose(graph.weight, 1.0):
        raise ValueError("LP4 is the unit-weight penalty dual")
    m, n = graph.m, graph.n
    odd_sets = enumerate_odd_sets(graph.b, max_size_b=odd_set_cap)
    k = len(odd_sets)
    if m == 0:
        return LPSolution(0.0, {"x": np.zeros(n), "z": np.zeros(k)})
    nv = n + k
    A_cov = np.zeros((m, nv))
    for e in range(m):
        A_cov[e, graph.src[e]] -= 1.0
        A_cov[e, graph.dst[e]] -= 1.0
    for t, U in enumerate(odd_sets):
        members = np.zeros(n, dtype=bool)
        members[list(U)] = True
        inside = members[graph.src] & members[graph.dst]
        A_cov[inside, n + t] -= 1.0
    b_cov = -np.ones(m)
    # the box: 2 x_i + sum_{U ∋ i} z_U <= 3
    A_box = np.zeros((n, nv))
    A_box[np.arange(n), np.arange(n)] = 2.0
    for t, U in enumerate(odd_sets):
        A_box[np.asarray(list(U)), n + t] = 1.0
    b_box = 3.0 * np.ones(n)
    A = np.vstack([A_cov, A_box])
    b_ub = np.concatenate([b_cov, b_box])
    cost = np.concatenate(
        [
            graph.b.astype(float),
            [float(int(graph.b[list(U)].sum()) // 2) for U in odd_sets],
        ]
    )
    res = _linprog(cost, A, b_ub, [(0, None)] * nv)
    return LPSolution(
        float(res.fun), {"x": np.asarray(res.x[:n]), "z": np.asarray(res.x[n:])}
    )
