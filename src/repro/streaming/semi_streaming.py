"""Semi-streaming drivers: single-pass sparsification and matching.

Wires the stream abstraction to the substrates:

* :func:`streaming_sparsify` -- Algorithm 6 over a single pass.
* :func:`streaming_greedy_matching` -- the classic one-pass greedy
  (1/2-approximation for cardinality; used as a streaming baseline).
* :func:`dynamic_stream_spanning_forest` -- spanning forest of a
  dynamic (insert/delete) stream via linear sketches, the [4] result the
  paper builds on.
"""

from __future__ import annotations

import numpy as np

from repro.sketch.graph_sketch import incidence_update_batch
from repro.sketch.support_find import (
    boruvka_forest_from_tensor,
    boruvka_forest_rounds,
    forest_row_seeds,
    incidence_forest_rows,
)
from repro.sketch.tensor import SketchTensor
from repro.sparsify.cut_sparsifier import EdgeSample, StreamingCutSparsifier
from repro.streaming.stream import DynamicEdgeStream, EdgeStream
from repro.util.graph import Graph
from repro.util.instrumentation import ResourceLedger
from repro.util.rng import make_rng, spawn

__all__ = [
    "streaming_sparsify",
    "streaming_greedy_matching",
    "dynamic_stream_spanning_forest",
    "stream_spanning_forest",
]


def streaming_sparsify(
    stream: EdgeStream,
    xi: float,
    seed: int | np.random.Generator | None = None,
    k: int | None = None,
) -> tuple[EdgeSample, StreamingCutSparsifier]:
    """One pass of Algorithm 6 over the stream; returns the sample.

    Edge ids in the sample refer to *arrival order*; use the returned
    sparsifier object for space introspection.
    """
    sp = StreamingCutSparsifier(stream.n, xi=xi, seed=seed, k=k)
    arrival_to_edge: list[np.ndarray] = []
    for cu, cv, cw, ceid in stream.iter_chunks():
        sp.insert_many(cu, cv, cw)
        arrival_to_edge.append(ceid)
    sample = sp.extract()
    # translate arrival-order ids back to graph edge ids
    if arrival_to_edge:
        arr = np.concatenate(arrival_to_edge)
    else:
        arr = np.empty(0, dtype=np.int64)
    return EdgeSample(edge_ids=arr[sample.edge_ids], weights=sample.weights), sp


def streaming_greedy_matching(stream: EdgeStream) -> list[int]:
    """One-pass greedy matching (b=1): take any edge with both ends free.

    Returns the taken edge ids.  Maximal, hence a 1/2-approximation in
    cardinality and for unweighted graphs.
    """
    free = np.ones(stream.n, dtype=bool)
    taken: list[int] = []
    for u, v, _w, eid in stream:
        if free[u] and free[v]:
            free[u] = False
            free[v] = False
            taken.append(eid)
    return taken


def dynamic_stream_spanning_forest(
    stream: DynamicEdgeStream,
    seed: int | np.random.Generator | None = None,
    ledger: ResourceLedger | None = None,
) -> list[tuple[int, int]]:
    """Spanning forest of the *net* graph of an insert/delete stream.

    Only linear sketches can do this in one pass: every event updates the
    two endpoint sketches by ±1 on the edge coordinate; deletions cancel
    insertions inside the sketch.  Post-processing is sketch-Boruvka.
    """
    rng = make_rng(seed)
    n = stream.n
    row_seeds = forest_row_seeds(rng, n)
    sketches = SketchTensor(n * n, row_seeds, repetitions=8, slots=n)
    events = list(stream)
    if events:
        # the whole event log in one batch: every event updates the two
        # endpoint slots by ±delta on the edge coordinate; deletions
        # cancel insertions inside the sketch (linearity)
        us = np.asarray([ev.u for ev in events], dtype=np.int64)
        vs = np.asarray([ev.v for ev in events], dtype=np.int64)
        ds = np.asarray([ev.delta for ev in events], dtype=np.int64)
        sketches.update_many(*incidence_update_batch(us, vs, n, ds))
    if ledger is not None:
        ledger.tick_sampling_round("dynamic stream pass")
        ledger.charge_stream(len(events))
        ledger.charge_space(sketches.space_words())
    # shared post-processing: the same decode the incrementally
    # maintained DynamicGraphSession uses on its sketch state, so the
    # two are bit-identical by construction (linearity + same decoder)
    return boruvka_forest_from_tensor(sketches, n, ledger=ledger)


def stream_spanning_forest(
    source,
    seed: int | np.random.Generator | None = None,
    ledger: ResourceLedger | None = None,
    repetitions: int = 8,
    rows_per_pass: int | None = None,
) -> list[tuple[int, int]]:
    """Spanning forest of a chunked edge source via linear sketches.

    The out-of-core counterpart of
    :func:`dynamic_stream_spanning_forest`: ``source`` is anything with
    ``.n`` and a replayable ``.iter_chunks()`` -- a
    :class:`~repro.ingest.source.ChunkedEdgeSource` over an on-disk
    ``.edges`` file, or a plain :class:`Graph` (wrapped on the fly), so
    the in-RAM and file-backed paths are the same code.

    ``rows_per_pass`` trades passes for resident sketch memory:

    * ``None`` -- all ``incidence_forest_rows(n)`` rows are built in a
      single pass over the edges; peak sketch memory is the full
      tensor, ``O(n * rows * repetitions * log n)`` words.
    * ``k`` -- the rows are built ``k`` at a time, one pass per block;
      peak sketch memory drops to ``O(n * k * repetitions * log n)``
      while the decoded forest stays **bit-identical** (the row seeds
      are all drawn up front through
      :func:`~repro.sketch.support_find.forest_row_seeds`, rows are
      mutually independent, and Boruvka consumes them in the same
      global order either way).  Blocks past an early Boruvka
      termination are never built, so the worst case is
      ``ceil(rows/k)`` passes and often fewer.

    Each block tensor is charged to (and released from) the ledger, so
    ``ledger.central_space.peak`` certifies the O(chunk + sketch-block)
    residency claim; pass accounting lives on the source itself.
    """
    if isinstance(source, Graph):
        from repro.ingest.source import ChunkedEdgeSource

        source = ChunkedEdgeSource(source, ledger=ledger)
    n = source.n
    rng = make_rng(seed)
    row_seeds = forest_row_seeds(rng, n)
    rows = len(row_seeds)
    block = rows if rows_per_pass is None else max(1, min(rows, int(rows_per_pass)))

    def row_blocks():
        for r0 in range(0, rows, block):
            tensor = SketchTensor(
                n * n, row_seeds[r0 : r0 + block], repetitions=repetitions, slots=n
            )
            words = tensor.space_words()
            if ledger is not None:
                ledger.charge_space(words)
            try:
                for cu, cv, _cw, _ceid in source.iter_chunks():
                    tensor.update_many(*incidence_update_batch(cu, cv, n))
                yield tensor
            finally:
                if ledger is not None:
                    ledger.release_space(words)

    return boruvka_forest_rounds(n, row_blocks(), ledger=ledger)
