"""Semi-streaming execution binding for the dual-primal matching solver.

The headline algorithm is model-agnostic: each outer round needs *one
access to the data* that yields a chain of deferred u-sparsifiers.  In
the semi-streaming model that access is a single pass over the edge
list.  This module provides

* :class:`StreamingDeferredSparsifier` -- Lemma 17 built on Algorithm 6:
  per geometric promise-class :class:`~repro.sparsify.cut_sparsifier.
  StreamingCutSparsifier` structures with the NI-forest count inflated
  by ``ceil(chi^2)`` (the lemma's "multiply p'_e by O(chi^2)"), storing
  ``(edge id, structural sampling probability)`` pairs for deferred
  refinement;
* :class:`StreamingDeferredChain` -- ``t`` such structures filled by
  **one shared pass** (the paper's "computed in parallel in 1 round");
* :class:`SemiStreamingMatchingSolver` -- the dual-primal solver with
  its chain construction rebound to stream passes, so
  ``resources["sampling_rounds"]`` literally counts passes.

The guarantee story is unchanged -- the binding only changes *how* the
samples are collected, not what is collected.
"""

from __future__ import annotations

import numpy as np

from repro.core.matching_solver import DualPrimalMatchingSolver, SolverConfig
from repro.sparsify.cut_sparsifier import StreamingCutSparsifier, default_rho
from repro.streaming.stream import EdgeStream
from repro.util.graph import Graph
from repro.util.instrumentation import ResourceLedger
from repro.util.rng import make_rng, spawn
from repro.util.validation import check_epsilon, require

__all__ = [
    "StreamingDeferredSparsifier",
    "StreamingDeferredChain",
    "SemiStreamingMatchingSolver",
    "streaming_solve_matching",
]


class StreamingDeferredSparsifier:
    """Single-pass deferred u-sparsifier (Definition 4 via Algorithm 6).

    Edges arrive with *promise* values ``ς``; each geometric class
    ``[2^l, 2^{l+1})`` of ς feeds its own level-subsampled NI-forest
    structure.  The per-class forest count ``k`` is inflated by
    ``ceil(chi^2)`` so the structural sampling probability dominates
    what any true weight within the ``chi`` band would need.

    After the pass, :meth:`finalize` computes each stored edge's
    effective sampling probability ``2^{-i'}`` (the level at which its
    endpoints first separate) and exposes the
    ``stored_edge_ids`` / ``stored_probs`` contract of
    :class:`~repro.sparsify.deferred.DeferredSparsifier`.
    """

    def __init__(
        self,
        n: int,
        chi: float,
        xi: float,
        seed: int | np.random.Generator | None = None,
        k: int | None = None,
    ):
        require(chi >= 1.0, "promise slack chi must be >= 1")
        self.n = int(n)
        self.chi = float(chi)
        self.xi = check_epsilon(xi)
        rng = make_rng(seed)
        if k is None:
            # Lemma 17: worst-case rate, inflated by O(chi^2)
            base_k = max(2, int(np.ceil(default_rho(n, xi))))
            self.k = int(np.ceil(base_k * max(1.0, chi) ** 2))
        else:
            # explicit override: the caller-provided forest count *is*
            # the per-level rate (the density/memory escape hatch --
            # no chi^2 inflation, certificates stay valid regardless)
            self.k = max(1, int(k))
        self._rng = rng
        self._classes: dict[int, StreamingCutSparsifier] = {}
        self._finalized: tuple[np.ndarray, np.ndarray] | None = None

    def _class_of(self, promise: float) -> int:
        return int(np.floor(np.log2(max(promise, 1e-300))))

    def _class_sparsifier(self, cls: int) -> StreamingCutSparsifier:
        sp = self._classes.get(cls)
        if sp is None:
            sp = StreamingCutSparsifier(
                self.n, xi=self.xi, seed=self._rng, k=self.k
            )
            self._classes[cls] = sp
        return sp

    def insert(self, u: int, v: int, promise: float, edge_id: int) -> None:
        """Process one stream edge with its promise value."""
        self.insert_many(
            np.asarray([u], dtype=np.int64),
            np.asarray([v], dtype=np.int64),
            np.asarray([promise], dtype=np.float64),
            np.asarray([edge_id], dtype=np.int64),
        )

    def insert_many(
        self,
        u: np.ndarray,
        v: np.ndarray,
        promise: np.ndarray,
        edge_ids: np.ndarray,
    ) -> None:
        """Process a chunk of stream edges with their promise values.

        Equivalent to calling :meth:`insert` per edge: promise classes
        are computed vectorized, each class's edges are forwarded to its
        sparsifier in stream order, and new classes are created in
        first-occurrence order so the RNG consumption (hence every
        structure's seed) matches the per-edge path exactly.  Graph
        edge ids ride along *inside* the class sparsifiers (the ``ids``
        pass-through of :meth:`StreamingCutSparsifier.insert_many`), so
        no O(stream) Python-side id ledger is kept.
        """
        if self._finalized is not None:
            raise RuntimeError("sparsifier already finalized")
        promise = np.asarray(promise, dtype=np.float64)
        u = np.asarray(u, dtype=np.int64)
        v = np.asarray(v, dtype=np.int64)
        edge_ids = np.asarray(edge_ids, dtype=np.int64)
        keep = promise > 0.0  # promised-zero edges are never stored
        if not keep.any():
            return
        u, v, promise, edge_ids = u[keep], v[keep], promise[keep], edge_ids[keep]
        classes = np.floor(np.log2(np.maximum(promise, 1e-300))).astype(np.int64)
        uniq, first = np.unique(classes, return_index=True)
        for cls in uniq[np.argsort(first)].tolist():
            mask = classes == cls
            sp = self._class_sparsifier(cls)
            sp.insert_many(u[mask], v[mask], 1.0, ids=edge_ids[mask])

    def finalize(self) -> None:
        """Close the pass: compute stored probabilities per class."""
        if self._finalized is not None:
            return
        ids_parts: list[np.ndarray] = []
        probs_parts: list[np.ndarray] = []
        for sp in self._classes.values():
            sample = sp.extract()
            if len(sample.edge_ids) == 0:
                continue
            # extract ids are the graph edge ids we passed through;
            # extract weights are 1 * 2^{i'}, the structural sampling
            # probability is the inverse
            ids_parts.append(np.asarray(sample.edge_ids, dtype=np.int64))
            probs_parts.append(1.0 / np.asarray(sample.weights, dtype=np.float64))
        if ids_parts:
            ids = np.concatenate(ids_parts)
            probs = np.concatenate(probs_parts)
        else:
            ids = np.empty(0, dtype=np.int64)
            probs = np.empty(0, dtype=np.float64)
        order = np.argsort(ids, kind="stable")
        self._finalized = (ids[order], probs[order])
        # the class stores (NI forests + kept-edge chunks) are dead
        # weight from here on; record their space charge, then free them
        # so the inner-step phase holds only the finalized arrays
        self._space_words = 2 * len(ids) + sum(
            sp.space_words() for sp in self._classes.values()
        )
        self._classes.clear()

    # -- DeferredSparsifier contract ------------------------------------
    @property
    def stored_edge_ids(self) -> np.ndarray:
        if self._finalized is None:
            raise RuntimeError("call finalize() after the pass")
        return self._finalized[0]

    @property
    def stored_probs(self) -> np.ndarray:
        if self._finalized is None:
            raise RuntimeError("call finalize() after the pass")
        return self._finalized[1]

    def stored_count(self) -> int:
        return len(self.stored_edge_ids)

    def space_words(self) -> int:
        if self._finalized is not None:
            # construction-time charge, captured before the class
            # stores were released in :meth:`finalize`
            return self._space_words
        return 2 * self.stored_count() + sum(
            sp.space_words() for sp in self._classes.values()
        )


class StreamingDeferredChain:
    """``t`` streaming deferred sparsifiers filled by one shared pass.

    Mirrors :class:`~repro.sparsify.deferred.DeferredSparsifierChain`:
    the structures are independent (fresh seeds) but consume the *same*
    pass -- one data access for the whole chain, exactly the "compute
    ς(1)..ς(t) in parallel" step of Figure 1 (right panel).
    """

    def __init__(
        self,
        stream: EdgeStream,
        promise: np.ndarray,
        gamma: float,
        xi: float,
        count: int,
        seed: int | np.random.Generator | None = None,
        ledger: ResourceLedger | None = None,
        sparsifier_k: int | None = None,
    ):
        require(count >= 1, "chain needs at least one sparsifier")
        rng = make_rng(seed)
        children = spawn(rng, count)
        self.gamma = float(gamma)
        self.sparsifiers = [
            StreamingDeferredSparsifier(
                stream.n, chi=self.gamma, xi=xi, seed=children[q], k=sparsifier_k
            )
            for q in range(count)
        ]
        # the single shared pass, consumed in numpy chunks (EdgeStream
        # ticks its own ledger once for the whole pass)
        for cu, cv, _cw, ceid in stream.iter_chunks():
            cp = promise[ceid]
            for sp in self.sparsifiers:
                sp.insert_many(cu, cv, cp, ceid)
        for sp in self.sparsifiers:
            sp.finalize()
        if ledger is not None:
            # the shared pass is one data access: m streamed edges total,
            # regardless of chain length (the solver ticks the sampling
            # round itself, so only the volume is charged here)
            ledger.charge_stream(stream.graph.m)
            ledger.charge_space(sum(sp.space_words() for sp in self.sparsifiers))

    def __len__(self) -> int:
        return len(self.sparsifiers)

    def __getitem__(self, q: int) -> StreamingDeferredSparsifier:
        return self.sparsifiers[q]

    def union_edge_ids(self) -> np.ndarray:
        if not self.sparsifiers:
            return np.empty(0, dtype=np.int64)
        return np.unique(
            np.concatenate([sp.stored_edge_ids for sp in self.sparsifiers])
        )

    def space_words(self) -> int:
        return sum(sp.space_words() for sp in self.sparsifiers)


class _ChunkPromise:
    """Lazy per-chunk promise evaluator (the out-of-core round vector).

    Stands in for the dense O(m) promise array of
    :meth:`DualPrimalMatchingSolver._round_promise` when the graph is an
    unmaterialized :class:`~repro.ingest.filegraph.FileBackedGraph`:
    the chain's shared pass asks for ``promise[edge_ids]`` one stream
    chunk at a time, and each request is answered from the level array
    and the dual alone -- O(chunk) resident, zero extra passes over the
    data (the shift ``rmin`` is the round-start ``lambda_min`` the
    solver already computed).

    Per-edge floats are bit-identical to the dense vector: the cover is
    the same elementwise gather-add, ``rmin`` equals the dense path's
    ``ratios.min()`` exactly (chunked min of mins), and the multiplier
    formula is applied with the same elementwise operations.
    """

    def __init__(self, levels, dual, alpha: float, rmin: float):
        self._levels = levels
        self._dual = dual
        self._alpha = float(alpha)
        self._rmin = float(rmin)
        self._wk = np.asarray(
            levels.level_weight(np.arange(levels.num_levels, dtype=np.int64))
        )

    def __getitem__(self, edge_ids: np.ndarray) -> np.ndarray:
        from repro.core.relaxations import z_cover_add

        lv = self._levels
        g = lv.graph
        ids = np.asarray(edge_ids, dtype=np.int64)
        k = lv.level[ids]
        livemask = k >= 0
        out = np.zeros(len(ids), dtype=np.float64)
        if not livemask.any():
            return out
        idl = ids[livemask]
        kl = k[livemask]
        x = self._dual.x
        cov = (
            x[np.asarray(g.src[idl]), kl] + x[np.asarray(g.dst[idl]), kl]
        )
        if self._dual.z:
            cov = z_cover_add(g, lv, idl, self._dual.z, cov)
        ratios = cov / self._wk[kl]
        shifted = self._alpha * (ratios - self._rmin)
        np.clip(shifted, 0.0, 60.0, out=shifted)
        out[livemask] = np.exp(-shifted) / self._wk[kl]
        return out


class SemiStreamingMatchingSolver(DualPrimalMatchingSolver):
    """The dual-primal solver bound to the semi-streaming model.

    Identical algorithm; the chain of each outer round is built from
    one pass over a replayable :class:`EdgeStream` (``order='input'``
    over the graph the solver is invoked on).  Pass count is audited by
    the stream itself: ``solver.passes`` after a run equals the number
    of data accesses consumed.

    ``chunk_size`` sets the stream's chunk granularity.  Results are
    chunk-size invariant (hash-decided sparsifier membership; pinned by
    the parametrized parity tests) -- the knob only trades per-chunk
    Python overhead against resident chunk words.

    ``sparsifier_k`` overrides the per-class NI forest count of every
    chain sparsifier (default: the Lemma 17 worst-case rate, which at
    moderate ``n`` stores essentially every edge).  Smaller ``k`` trades
    sparsifier density -- hence resident memory -- against union
    quality; certificates remain valid regardless (they are verified
    independently of how the support was sampled).

    For an unmaterialized :class:`~repro.ingest.filegraph.
    FileBackedGraph` the round promise is evaluated lazily per stream
    chunk (:class:`_ChunkPromise`) instead of materialized as an O(m)
    array, so a solve never holds an edge-length vector: the whole
    route is O(n + chunk) resident beyond the sparsifier stores.
    """

    def __init__(
        self,
        config: SolverConfig | None = None,
        *,
        chunk_size: int = 8192,
        sparsifier_k: int | None = None,
        **kwargs,
    ):
        super().__init__(config, **kwargs)
        self.chunk_size = int(chunk_size)
        self.sparsifier_k = None if sparsifier_k is None else int(sparsifier_k)
        self.passes = 0
        self._stream: EdgeStream | None = None

    def solve(self, graph: Graph):
        self._stream = EdgeStream(graph, chunk_size=self.chunk_size)
        self.passes = 0
        result = super().solve(graph)
        self.passes = self._stream.passes
        return result

    def _build_chain(self, graph, promise, gamma, xi, count, rng, ledger):
        assert self._stream is not None and self._stream.graph is graph
        return StreamingDeferredChain(
            self._stream,
            promise,
            gamma=gamma,
            xi=xi,
            count=count,
            seed=rng,
            ledger=ledger,
            sparsifier_k=self.sparsifier_k,
        )

    def _round_promise(self, levels, dual, alpha, lam):
        """Lazy promise for unmaterialized file-backed graphs.

        The dense default would gather every live edge at once -- an
        O(m) float column plus O(m) id array.  When the graph's columns
        are still on disk the chain evaluates promise values chunk by
        chunk *within its own pass* instead, so promise evaluation
        charges no extra data access and no edge-length residency.
        """
        if getattr(levels.graph, "is_materialized", True) is False:
            return _ChunkPromise(levels, dual, alpha, lam)
        return super()._round_promise(levels, dual, alpha, lam)


def streaming_solve_matching(graph: Graph, eps: float = 0.1, **kwargs):
    """One-call semi-streaming (1-eps)-approximate b-matching.

    .. deprecated::
        Thin shim over ``repro.api.run(Problem(graph, config=...),
        backend="semi_streaming")``; results are pinned bit-identical.
    """
    from repro.api import Problem, run
    from repro.util.deprecation import warn_legacy

    warn_legacy(
        "repro.streaming.streaming_solve_matching",
        'repro.api.run(Problem(graph, config=SolverConfig(...)), '
        'backend="semi_streaming")',
    )
    problem = Problem(graph, config=SolverConfig(eps=eps, **kwargs))
    return run(problem, backend="semi_streaming").raw
