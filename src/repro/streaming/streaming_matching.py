"""Semi-streaming execution binding for the dual-primal matching solver.

The headline algorithm is model-agnostic: each outer round needs *one
access to the data* that yields a chain of deferred u-sparsifiers.  In
the semi-streaming model that access is a single pass over the edge
list.  This module provides

* :class:`StreamingDeferredSparsifier` -- Lemma 17 built on Algorithm 6:
  per geometric promise-class :class:`~repro.sparsify.cut_sparsifier.
  StreamingCutSparsifier` structures with the NI-forest count inflated
  by ``ceil(chi^2)`` (the lemma's "multiply p'_e by O(chi^2)"), storing
  ``(edge id, structural sampling probability)`` pairs for deferred
  refinement;
* :class:`StreamingDeferredChain` -- ``t`` such structures filled by
  **one shared pass** (the paper's "computed in parallel in 1 round");
* :class:`SemiStreamingMatchingSolver` -- the dual-primal solver with
  its chain construction rebound to stream passes, so
  ``resources["sampling_rounds"]`` literally counts passes.

The guarantee story is unchanged -- the binding only changes *how* the
samples are collected, not what is collected.
"""

from __future__ import annotations

import numpy as np

from repro.core.matching_solver import DualPrimalMatchingSolver, SolverConfig
from repro.sparsify.cut_sparsifier import StreamingCutSparsifier, default_rho
from repro.streaming.stream import EdgeStream
from repro.util.graph import Graph
from repro.util.instrumentation import ResourceLedger
from repro.util.rng import make_rng, spawn
from repro.util.validation import check_epsilon, require

__all__ = [
    "StreamingDeferredSparsifier",
    "StreamingDeferredChain",
    "SemiStreamingMatchingSolver",
    "streaming_solve_matching",
]


class StreamingDeferredSparsifier:
    """Single-pass deferred u-sparsifier (Definition 4 via Algorithm 6).

    Edges arrive with *promise* values ``ς``; each geometric class
    ``[2^l, 2^{l+1})`` of ς feeds its own level-subsampled NI-forest
    structure.  The per-class forest count ``k`` is inflated by
    ``ceil(chi^2)`` so the structural sampling probability dominates
    what any true weight within the ``chi`` band would need.

    After the pass, :meth:`finalize` computes each stored edge's
    effective sampling probability ``2^{-i'}`` (the level at which its
    endpoints first separate) and exposes the
    ``stored_edge_ids`` / ``stored_probs`` contract of
    :class:`~repro.sparsify.deferred.DeferredSparsifier`.
    """

    def __init__(
        self,
        n: int,
        chi: float,
        xi: float,
        seed: int | np.random.Generator | None = None,
        k: int | None = None,
    ):
        require(chi >= 1.0, "promise slack chi must be >= 1")
        self.n = int(n)
        self.chi = float(chi)
        self.xi = check_epsilon(xi)
        rng = make_rng(seed)
        base_k = max(2, int(np.ceil(default_rho(n, xi)))) if k is None else int(k)
        # Lemma 17: inflate the sampling rate by O(chi^2)
        self.k = int(np.ceil(base_k * max(1.0, chi) ** 2))
        self._rng = rng
        self._classes: dict[int, StreamingCutSparsifier] = {}
        self._class_eids: dict[int, list[int]] = {}
        self._finalized: tuple[np.ndarray, np.ndarray] | None = None

    def _class_of(self, promise: float) -> int:
        return int(np.floor(np.log2(max(promise, 1e-300))))

    def _class_sparsifier(self, cls: int) -> StreamingCutSparsifier:
        sp = self._classes.get(cls)
        if sp is None:
            sp = StreamingCutSparsifier(
                self.n, xi=self.xi, seed=self._rng, k=self.k
            )
            self._classes[cls] = sp
            self._class_eids[cls] = []
        return sp

    def insert(self, u: int, v: int, promise: float, edge_id: int) -> None:
        """Process one stream edge with its promise value."""
        if self._finalized is not None:
            raise RuntimeError("sparsifier already finalized")
        if promise <= 0.0:
            return  # promised-zero edges are never stored (Definition 4)
        cls = self._class_of(promise)
        sp = self._class_sparsifier(cls)
        # record the class-local insertion order -> graph edge id mapping
        # (extract() addresses edges by class-local insertion index)
        self._class_eids[cls].append(int(edge_id))
        sp.insert(u, v, 1.0)

    def insert_many(
        self,
        u: np.ndarray,
        v: np.ndarray,
        promise: np.ndarray,
        edge_ids: np.ndarray,
    ) -> None:
        """Process a chunk of stream edges with their promise values.

        Equivalent to calling :meth:`insert` per edge: promise classes
        are computed vectorized, each class's edges are forwarded to its
        sparsifier in stream order, and new classes are created in
        first-occurrence order so the RNG consumption (hence every
        structure's seed) matches the per-edge path exactly.
        """
        if self._finalized is not None:
            raise RuntimeError("sparsifier already finalized")
        promise = np.asarray(promise, dtype=np.float64)
        u = np.asarray(u, dtype=np.int64)
        v = np.asarray(v, dtype=np.int64)
        edge_ids = np.asarray(edge_ids, dtype=np.int64)
        keep = promise > 0.0  # promised-zero edges are never stored
        if not keep.any():
            return
        u, v, promise, edge_ids = u[keep], v[keep], promise[keep], edge_ids[keep]
        classes = np.floor(np.log2(np.maximum(promise, 1e-300))).astype(np.int64)
        uniq, first = np.unique(classes, return_index=True)
        for cls in uniq[np.argsort(first)].tolist():
            mask = classes == cls
            sp = self._class_sparsifier(cls)
            self._class_eids[cls].extend(edge_ids[mask].tolist())
            sp.insert_many(u[mask], v[mask], 1.0)

    def finalize(self) -> None:
        """Close the pass: compute stored probabilities per class."""
        if self._finalized is not None:
            return
        ids: list[int] = []
        probs: list[float] = []
        for cls, sp in self._classes.items():
            sample = sp.extract()
            eids = np.asarray(self._class_eids[cls], dtype=np.int64)
            if len(sample.edge_ids) == 0:
                continue
            # extract weights are 1 * 2^{i'}; the structural sampling
            # probability is the inverse
            kept = eids[sample.edge_ids]
            ids.extend(kept.tolist())
            probs.extend((1.0 / sample.weights).tolist())
        order = np.argsort(np.asarray(ids, dtype=np.int64), kind="stable")
        self._finalized = (
            np.asarray(ids, dtype=np.int64)[order],
            np.asarray(probs, dtype=np.float64)[order],
        )

    # -- DeferredSparsifier contract ------------------------------------
    @property
    def stored_edge_ids(self) -> np.ndarray:
        if self._finalized is None:
            raise RuntimeError("call finalize() after the pass")
        return self._finalized[0]

    @property
    def stored_probs(self) -> np.ndarray:
        if self._finalized is None:
            raise RuntimeError("call finalize() after the pass")
        return self._finalized[1]

    def stored_count(self) -> int:
        return len(self.stored_edge_ids)

    def space_words(self) -> int:
        return 2 * self.stored_count() + sum(
            sp.space_words() for sp in self._classes.values()
        )


class StreamingDeferredChain:
    """``t`` streaming deferred sparsifiers filled by one shared pass.

    Mirrors :class:`~repro.sparsify.deferred.DeferredSparsifierChain`:
    the structures are independent (fresh seeds) but consume the *same*
    pass -- one data access for the whole chain, exactly the "compute
    ς(1)..ς(t) in parallel" step of Figure 1 (right panel).
    """

    def __init__(
        self,
        stream: EdgeStream,
        promise: np.ndarray,
        gamma: float,
        xi: float,
        count: int,
        seed: int | np.random.Generator | None = None,
        ledger: ResourceLedger | None = None,
    ):
        require(count >= 1, "chain needs at least one sparsifier")
        rng = make_rng(seed)
        children = spawn(rng, count)
        self.gamma = float(gamma)
        self.sparsifiers = [
            StreamingDeferredSparsifier(
                stream.n, chi=self.gamma, xi=xi, seed=children[q]
            )
            for q in range(count)
        ]
        # the single shared pass, consumed in numpy chunks (EdgeStream
        # ticks its own ledger once for the whole pass)
        for cu, cv, _cw, ceid in stream.iter_chunks():
            cp = promise[ceid]
            for sp in self.sparsifiers:
                sp.insert_many(cu, cv, cp, ceid)
        for sp in self.sparsifiers:
            sp.finalize()
        if ledger is not None:
            ledger.charge_space(sum(sp.space_words() for sp in self.sparsifiers))

    def __len__(self) -> int:
        return len(self.sparsifiers)

    def __getitem__(self, q: int) -> StreamingDeferredSparsifier:
        return self.sparsifiers[q]

    def union_edge_ids(self) -> np.ndarray:
        if not self.sparsifiers:
            return np.empty(0, dtype=np.int64)
        return np.unique(
            np.concatenate([sp.stored_edge_ids for sp in self.sparsifiers])
        )

    def space_words(self) -> int:
        return sum(sp.space_words() for sp in self.sparsifiers)


class SemiStreamingMatchingSolver(DualPrimalMatchingSolver):
    """The dual-primal solver bound to the semi-streaming model.

    Identical algorithm; the chain of each outer round is built from
    one pass over a replayable :class:`EdgeStream` (``order='input'``
    over the graph the solver is invoked on).  Pass count is audited by
    the stream itself: ``solver.passes`` after a run equals the number
    of data accesses consumed.

    ``chunk_size`` sets the stream's chunk granularity.  Results are
    chunk-size invariant (hash-decided sparsifier membership; pinned by
    the parametrized parity tests) -- the knob only trades per-chunk
    Python overhead against resident chunk words.
    """

    def __init__(
        self,
        config: SolverConfig | None = None,
        *,
        chunk_size: int = 8192,
        **kwargs,
    ):
        super().__init__(config, **kwargs)
        self.chunk_size = int(chunk_size)
        self.passes = 0
        self._stream: EdgeStream | None = None

    def solve(self, graph: Graph):
        self._stream = EdgeStream(graph, chunk_size=self.chunk_size)
        self.passes = 0
        result = super().solve(graph)
        self.passes = self._stream.passes
        return result

    def _build_chain(self, graph, promise, gamma, xi, count, rng, ledger):
        assert self._stream is not None and self._stream.graph is graph
        return StreamingDeferredChain(
            self._stream,
            promise,
            gamma=gamma,
            xi=xi,
            count=count,
            seed=rng,
            ledger=ledger,
        )


def streaming_solve_matching(graph: Graph, eps: float = 0.1, **kwargs):
    """One-call semi-streaming (1-eps)-approximate b-matching.

    .. deprecated::
        Thin shim over ``repro.api.run(Problem(graph, config=...),
        backend="semi_streaming")``; results are pinned bit-identical.
    """
    from repro.api import Problem, run
    from repro.util.deprecation import warn_legacy

    warn_legacy(
        "repro.streaming.streaming_solve_matching",
        'repro.api.run(Problem(graph, config=SolverConfig(...)), '
        'backend="semi_streaming")',
    )
    problem = Problem(graph, config=SolverConfig(eps=eps, **kwargs))
    return run(problem, backend="semi_streaming").raw
