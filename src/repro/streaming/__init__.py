"""Semi-streaming model: streams, single-pass sparsification, dynamic sketches."""

from repro.streaming.semi_streaming import (
    dynamic_stream_spanning_forest,
    streaming_greedy_matching,
    streaming_sparsify,
)
from repro.streaming.stream import DynamicEdgeStream, EdgeStream, StreamEvent
from repro.streaming.streaming_matching import (
    SemiStreamingMatchingSolver,
    StreamingDeferredChain,
    StreamingDeferredSparsifier,
    streaming_solve_matching,
)

__all__ = [
    "EdgeStream",
    "DynamicEdgeStream",
    "StreamEvent",
    "streaming_sparsify",
    "streaming_greedy_matching",
    "dynamic_stream_spanning_forest",
    "SemiStreamingMatchingSolver",
    "StreamingDeferredChain",
    "StreamingDeferredSparsifier",
    "streaming_solve_matching",
]
