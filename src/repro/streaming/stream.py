"""Edge-stream abstractions for the semi-streaming model.

A *semi-streaming* algorithm reads the edges once (or a constant number
of passes) in adversarial order and keeps ``O(n polylog n)`` state.
:class:`EdgeStream` wraps a graph (or raw arrays) as a replayable stream
with pass accounting; :class:`DynamicEdgeStream` additionally supports
deletions (insert/delete tuples), which is the setting where *linear*
sketches are mandatory.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

import numpy as np

from repro.util.graph import Graph
from repro.util.instrumentation import ResourceLedger
from repro.util.rng import make_rng

__all__ = ["EdgeStream", "DynamicEdgeStream", "StreamEvent"]


@dataclass
class StreamEvent:
    """One dynamic-stream event: edge (u, v, w) with ``delta`` = +1/-1."""

    u: int
    v: int
    w: float
    delta: int


class EdgeStream:
    """Replayable insert-only edge stream over a fixed graph.

    Parameters
    ----------
    order:
        "input" (storage order), "random" (shuffled once with the given
        seed -- the same permutation on every pass), or an explicit
        permutation array.
    chunk_size:
        Default edges per chunk for :meth:`iter_chunks`.  Consumers of
        a chunked pass must be chunk-size invariant (pinned by the
        parametrized parity tests) -- the knob trades per-chunk Python
        overhead against resident chunk words, nothing else.
    """

    def __init__(
        self,
        graph: Graph,
        order: str | np.ndarray = "input",
        seed: int | np.random.Generator | None = None,
        ledger: ResourceLedger | None = None,
        chunk_size: int = 8192,
    ):
        if chunk_size < 1:
            raise ValueError("chunk_size must be positive")
        self.graph = graph
        self.ledger = ledger
        self.chunk_size = int(chunk_size)
        if isinstance(order, str):
            if order == "input":
                # storage order needs no O(m) permutation array: passes
                # slice the columns directly (identical chunks, and the
                # file-backed route keeps its O(chunk) residency)
                self._perm = None
            elif order == "random":
                self._perm = make_rng(seed).permutation(graph.m)
            else:
                raise ValueError(f"unknown order {order!r}")
        else:
            self._perm = np.asarray(order, dtype=np.int64)
        self.passes = 0

    @property
    def n(self) -> int:
        return self.graph.n

    def _tick_pass(self) -> None:
        self.passes += 1
        if self.ledger is not None:
            self.ledger.tick_sampling_round(f"stream pass {self.passes}")
            self.ledger.charge_stream(self.graph.m)

    def __iter__(self) -> Iterator[tuple[int, int, float, int]]:
        """One pass: yields ``(u, v, w, edge_id)``."""
        for cu, cv, cw, ce in self.iter_chunks():
            yield from zip(cu.tolist(), cv.tolist(), cw.tolist(), ce.tolist())

    def iter_chunks(
        self, chunk_size: int | None = None
    ) -> Iterator[tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]]:
        """One pass in numpy chunks: yields ``(src, dst, weight, edge_id)``.

        ``chunk_size`` defaults to the stream's configured
        ``chunk_size``.  Same pass accounting as ``__iter__`` (one tick
        per pass, not per chunk); consumers with an ``insert_many``
        fast path use this to amortize per-edge Python overhead while
        preserving stream order.
        """
        if chunk_size is None:
            chunk_size = self.chunk_size
        if chunk_size < 1:
            raise ValueError("chunk_size must be positive")
        self._tick_pass()
        g = self.graph
        if self._perm is None:
            # storage order: contiguous slices (for a FileBackedGraph
            # these are O(chunk) positioned reads -- no materialization)
            for start in range(0, g.m, chunk_size):
                stop = min(start + chunk_size, g.m)
                yield (
                    g.src[start:stop],
                    g.dst[start:stop],
                    g.weight[start:stop],
                    np.arange(start, stop, dtype=np.int64),
                )
            return
        for start in range(0, len(self._perm), chunk_size):
            sel = self._perm[start : start + chunk_size]
            yield g.src[sel], g.dst[sel], g.weight[sel], sel


@dataclass
class DynamicEdgeStream:
    """Insert/delete edge stream (dynamic graph stream of [4]).

    The net graph after replay is whatever survives all deletions; only
    linear-sketch algorithms can process this model in one pass.
    """

    n: int
    events: list[StreamEvent] = field(default_factory=list)

    def insert(self, u: int, v: int, w: float = 1.0) -> None:
        self.events.append(StreamEvent(u, v, w, +1))

    def delete(self, u: int, v: int, w: float = 1.0) -> None:
        self.events.append(StreamEvent(u, v, w, -1))

    def insert_many(
        self,
        u: np.ndarray,
        v: np.ndarray,
        w: np.ndarray | None = None,
    ) -> None:
        """Append a burst of insertions (``w`` defaults to all-ones)."""
        u = np.asarray(u, dtype=np.int64)
        v = np.asarray(v, dtype=np.int64)
        ww = np.ones(len(u)) if w is None else np.asarray(w, dtype=np.float64)
        for uu, vv, wv in zip(u.tolist(), v.tolist(), ww.tolist()):
            self.events.append(StreamEvent(uu, vv, wv, +1))

    def delete_many(
        self,
        u: np.ndarray,
        v: np.ndarray,
        w: np.ndarray | None = None,
    ) -> None:
        """Append a burst of deletions (negative-frequency updates)."""
        u = np.asarray(u, dtype=np.int64)
        v = np.asarray(v, dtype=np.int64)
        ww = np.ones(len(u)) if w is None else np.asarray(w, dtype=np.float64)
        for uu, vv, wv in zip(u.tolist(), v.tolist(), ww.tolist()):
            self.events.append(StreamEvent(uu, vv, wv, -1))

    def __iter__(self) -> Iterator[StreamEvent]:
        return iter(self.events)

    def net_graph(self) -> Graph:
        """Materialize the surviving edges (for verification only)."""
        counts: dict[tuple[int, int], int] = {}
        weights: dict[tuple[int, int], float] = {}
        for ev in self.events:
            key = (min(ev.u, ev.v), max(ev.u, ev.v))
            counts[key] = counts.get(key, 0) + ev.delta
            weights[key] = ev.w
        live = [(k, weights[k]) for k, c in counts.items() if c > 0]
        if not live:
            return Graph.empty(self.n)
        edges = np.asarray([k for k, _ in live])
        w = np.asarray([wv for _, wv in live])
        return Graph.from_edges(self.n, edges, w)
